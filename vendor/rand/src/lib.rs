//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the thin slice of `rand` it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers `random`,
//! `random_bool` and `random_range`. The generator is xoshiro256++
//! seeded through SplitMix64 — not the upstream ChaCha12, but a
//! high-quality deterministic stream, which is all the Monte-Carlo and
//! property-test call sites require.

#![forbid(unsafe_code)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a uniformly distributed value of a primitive type
    /// (`f64` in `[0, 1)`, integers over their full range).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_uniform(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Uniform sample from a range (`start..end` or `start..=end`).
    fn random_range<R2: SampleRange>(&mut self, range: R2) -> R2::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — used for seeding and for one-off hash-style
/// derivation (e.g. per-worker seeds in parallel Monte-Carlo runs).
#[must_use]
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{split_mix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = split_mix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but keep the guard cheap
            // and explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn uniformly from raw generator output.
pub trait StandardUniform: Sized {
    /// Draw one value.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_uniform(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange for core::ops::Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_uniform(rng);
        self.start + (self.end - self.start) * u
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.random_range(8u8..=28);
            assert!((8..=28).contains(&w));
            let f = r.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_is_respected() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| r.random_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
    }
}
