//! Offline drop-in subset of `serde_json`: `to_string`,
//! `to_string_pretty` and `from_str` over the vendored serde data model.

#![forbid(unsafe_code)]

use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::value::Value as JsonValue;

/// Serialization / parse failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as compact JSON.
///
/// # Errors
/// Infallible for the vendored data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` as human-indented JSON.
///
/// # Errors
/// Infallible for the vendored data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, Some("  "), 0);
    Ok(out)
}

/// Parse JSON text into a `T`.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::deserialize_value(&value).map_err(|e| Error::new(e.to_string()))
}

// ----------------------------------------------------------------- writer

fn write_value(v: &Value, out: &mut String, indent: Option<&str>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` on f64 prints the shortest round-trippable form,
                // but bare integral floats need a `.0` to stay floats.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Seq(items) => {
            write_bracketed(out, indent, level, '[', ']', items.len(), |out, i| {
                write_value(&items[i], out, indent, level + 1);
            })
        }
        Value::Map(entries) => {
            write_bracketed(out, indent, level, '{', '}', entries.len(), |out, i| {
                let (k, val) = &entries[i];
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            });
        }
    }
}

fn write_bracketed(
    out: &mut String,
    indent: Option<&str>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=level {
                out.push_str(pad);
            }
        }
        item(out, i);
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(pad);
        }
    }
    out.push(close);
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.contains(['.', 'e', 'E']) {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b".to_string()).unwrap(), r#""a\"b""#);
        assert_eq!(from_str::<f64>("2.25").unwrap(), 2.25);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn roundtrip_nested() {
        let v: Vec<(f64, f64)> = vec![(0.0, 1.0), (2.0, 3.5)];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[[0.0,1.0],[2.0,3.5]]");
        let back: Vec<(f64, f64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![1i64, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = to_string(&vec![2.0f64]).unwrap();
        assert_eq!(text, "[2.0]");
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, vec![2.0]);
    }
}
