//! Offline drop-in subset of the `loom` concurrency model checker.
//!
//! [`model`] runs a closure many times, exploring the distinct thread
//! interleavings of every operation performed through the shimmed
//! primitives in [`sync`] and [`thread`]. Scheduling is *systematic*:
//! only one model thread runs at a time, every shimmed operation is a
//! scheduling point, and the explorer backtracks depth-first over the
//! scheduling decisions, so an assertion that holds for every explored
//! execution holds for every interleaving within the bound.
//!
//! Exploration is bounded by *preemptions* (forced switches away from a
//! runnable thread), the CHESS-style bound under which the vast
//! majority of real concurrency bugs are known to reproduce:
//!
//! * `LOOM_MAX_PREEMPTIONS` — preemption budget per execution
//!   (default 2; voluntary yields and blocking are free),
//! * `LOOM_MAX_ITERS` — hard cap on explored executions (default
//!   200000; exceeding it reports the truncation on stderr),
//! * `LOOM_LOG=1` — print the execution count after a model run.
//!
//! Differences from real loom, chosen to keep the subset small and the
//! workspace offline-buildable: the memory model is sequential
//! consistency (every `Ordering` is treated as `SeqCst`, which is
//! *stricter* than C11 — an algorithm may pass here yet still have a
//! relaxed-ordering bug on weak hardware), `compare_exchange_weak`
//! never fails spuriously, and `fetch_update` is a single atomic step
//! rather than a CAS loop.

#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Marker payload used to unwind secondary threads after another
/// thread has already panicked; filtered out of the final report.
struct AbortMarker;

/// What a model thread is blocked on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockOn {
    /// Waiting for a mutex (keyed by address) to be released.
    Mutex(usize),
    /// Waiting for a thread to finish.
    Join(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked(BlockOn),
    Finished,
}

/// One recorded scheduling decision with more than one runnable thread.
#[derive(Debug, Clone)]
struct Branch {
    /// Runnable thread ids at the decision, ascending.
    enabled: Vec<usize>,
    /// Index into `enabled` that was taken.
    choice: usize,
    /// Thread that was running when the decision was made.
    prev: usize,
    /// Whether `prev` gave up the CPU voluntarily (yield/block/finish);
    /// switching away from it then costs no preemption.
    voluntary: bool,
}

#[derive(Debug, Default)]
struct SchedState {
    status: Vec<Status>,
    active: usize,
    /// Prescribed choices (indices into each branch's `enabled`).
    script: Vec<usize>,
    /// Decisions recorded this execution.
    branches: Vec<Branch>,
    /// Next script position.
    cursor: usize,
    /// First real panic payload; secondary aborts are filtered.
    panic: Option<Box<dyn std::any::Any + Send>>,
    panicked: bool,
}

impl SchedState {
    fn all_finished(&self) -> bool {
        self.status.iter().all(|&s| s == Status::Finished)
    }

    fn enabled(&self) -> Vec<usize> {
        self.status
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| (s == Status::Runnable).then_some(i))
            .collect()
    }
}

#[derive(Debug)]
struct Scheduler {
    state: StdMutex<SchedState>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// A scheduling point for the current model thread; no-op outside a
/// model run (so shimmed types stay usable in plain unit tests).
fn point() {
    let ctx = CTX.with(|c| c.borrow().clone());
    if let Some((sched, tid)) = ctx {
        sched.switch(tid, false, None);
    }
}

impl Scheduler {
    fn new(script: Vec<usize>) -> Self {
        Self {
            state: StdMutex::new(SchedState {
                script,
                ..SchedState::default()
            }),
            cv: Condvar::new(),
        }
    }

    fn register_thread(&self) -> usize {
        let mut st = self.state.lock().expect("scheduler lock");
        st.status.push(Status::Runnable);
        st.status.len() - 1
    }

    /// Yield the CPU: optionally change this thread's status, pick the
    /// next thread to run (scripted or default), then wait for our turn.
    fn switch(&self, me: usize, voluntary: bool, becoming: Option<Status>) {
        let mut st = self.state.lock().expect("scheduler lock");
        if st.panicked {
            // Abort the execution: every thread marks itself finished
            // (so the driver can observe completion) and unwinds.
            st.status[me] = Status::Finished;
            self.cv.notify_all();
            if becoming == Some(Status::Finished) {
                return;
            }
            drop(st);
            std::panic::panic_any(AbortMarker);
        }
        if let Some(s) = becoming {
            st.status[me] = s;
        }
        let enabled = st.enabled();
        if enabled.is_empty() {
            if st.all_finished() {
                self.cv.notify_all();
                return;
            }
            // Someone is blocked with nobody left to unblock them.
            st.panicked = true;
            self.cv.notify_all();
            drop(st);
            panic!("loom model deadlocked: no runnable thread");
        }
        let next = if enabled.len() == 1 {
            enabled[0]
        } else {
            let cursor = st.cursor;
            let choice = st.script.get(cursor).copied().unwrap_or_else(|| {
                // Default: stay on the current thread when possible —
                // the zero-preemption schedule DFS extends from.
                enabled.iter().position(|&t| t == me).unwrap_or(0)
            });
            let gave_up_cpu = voluntary || st.status[me] != Status::Runnable;
            st.branches.push(Branch {
                enabled: enabled.clone(),
                choice,
                prev: me,
                voluntary: gave_up_cpu,
            });
            st.cursor += 1;
            enabled[choice]
        };
        st.active = next;
        self.cv.notify_all();
        if st.status[me] == Status::Finished {
            return;
        }
        while st.active != me {
            if st.panicked {
                st.status[me] = Status::Finished;
                self.cv.notify_all();
                drop(st);
                std::panic::panic_any(AbortMarker);
            }
            st = self.cv.wait(st).expect("scheduler lock");
        }
    }

    /// Park a freshly spawned thread until it is first scheduled.
    fn wait_first_schedule(&self, me: usize) {
        let mut st = self.state.lock().expect("scheduler lock");
        while st.active != me {
            if st.panicked {
                st.status[me] = Status::Finished;
                self.cv.notify_all();
                drop(st);
                std::panic::panic_any(AbortMarker);
            }
            st = self.cv.wait(st).expect("scheduler lock");
        }
    }

    /// Mark `me` finished, record a panic payload if any, wake joiners.
    fn finish(&self, me: usize, payload: Option<Box<dyn std::any::Any + Send>>) {
        {
            let mut st = self.state.lock().expect("scheduler lock");
            if let Some(p) = payload {
                if !p.is::<AbortMarker>() {
                    st.panicked = true;
                    if st.panic.is_none() {
                        st.panic = Some(p);
                    }
                }
            }
            for i in 0..st.status.len() {
                if st.status[i] == Status::Blocked(BlockOn::Join(me)) {
                    st.status[i] = Status::Runnable;
                }
            }
        }
        self.switch(me, true, Some(Status::Finished));
    }

    /// Wake every thread blocked on the mutex at `addr`.
    fn release_mutex(&self, addr: usize) {
        let mut st = self.state.lock().expect("scheduler lock");
        for i in 0..st.status.len() {
            if st.status[i] == Status::Blocked(BlockOn::Mutex(addr)) {
                st.status[i] = Status::Runnable;
            }
        }
        self.cv.notify_all();
    }

    fn wait_all_finished(&self) {
        let mut st = self.state.lock().expect("scheduler lock");
        while !st.all_finished() {
            st = self.cv.wait(st).expect("scheduler lock");
        }
    }
}

/// Preemption cost of taking `choice` at branch `b`.
fn cost(b: &Branch, choice: usize) -> usize {
    let stays = b.enabled.get(choice) == Some(&b.prev);
    usize::from(!(b.voluntary || stays || !b.enabled.contains(&b.prev)))
}

/// Next depth-first script within the preemption bound, if any.
fn next_script(branches: &[Branch], bound: usize) -> Option<Vec<usize>> {
    for k in (0..branches.len()).rev() {
        let spent: usize = branches[..k].iter().map(|b| cost(b, b.choice)).sum();
        for c in branches[k].choice + 1..branches[k].enabled.len() {
            if spent + cost(&branches[k], c) <= bound {
                let mut script: Vec<usize> = branches[..k].iter().map(|b| b.choice).collect();
                script.push(c);
                return Some(script);
            }
        }
    }
    None
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run_once(f: &Arc<dyn Fn() + Send + Sync>, script: Vec<usize>) -> Vec<Branch> {
    let sched = Arc::new(Scheduler::new(script));
    let tid = sched.register_thread();
    let s2 = Arc::clone(&sched);
    let f2 = Arc::clone(f);
    let body = std::thread::Builder::new()
        .name("loom-model".into())
        .spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&s2), tid)));
            let r = catch_unwind(AssertUnwindSafe(|| f2()));
            s2.finish(tid, r.err());
        })
        .expect("spawn model thread");
    sched.wait_all_finished();
    let _ = body.join();
    let mut st = sched.state.lock().expect("scheduler lock");
    if let Some(p) = st.panic.take() {
        resume_unwind(p);
    }
    std::mem::take(&mut st.branches)
}

/// Exhaustively explore the interleavings of `f` within the preemption
/// bound, re-running it once per distinct schedule.
///
/// # Panics
/// Re-raises the first panic (assertion failure, deadlock) any explored
/// execution produced, on the caller's thread.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let bound = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_iters = env_usize("LOOM_MAX_ITERS", 200_000);
    let mut script = Vec::new();
    let mut iters = 0usize;
    loop {
        iters += 1;
        let branches = run_once(&f, std::mem::take(&mut script));
        match next_script(&branches, bound) {
            Some(s) if iters < max_iters => script = s,
            Some(_) => {
                eprintln!(
                    "loom: exploration truncated at {max_iters} executions (raise LOOM_MAX_ITERS)"
                );
                break;
            }
            None => break,
        }
    }
    if std::env::var("LOOM_LOG").is_ok() {
        eprintln!("loom: explored {iters} executions (preemption bound {bound})");
    }
}

/// Shimmed `std::thread` subset.
pub mod thread {
    use super::{catch_unwind, Arc, AssertUnwindSafe, BlockOn, Scheduler, Status, CTX};

    /// Handle to a model thread; join to retrieve its result.
    #[derive(Debug)]
    pub struct JoinHandle<T> {
        tid: usize,
        result: Arc<std::sync::Mutex<Option<T>>>,
        os: Option<std::thread::JoinHandle<()>>,
        sched: Arc<Scheduler>,
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish and return its result.
        ///
        /// # Errors
        /// Returns the panic payload if the thread panicked.
        pub fn join(mut self) -> std::thread::Result<T> {
            loop {
                let finished = {
                    let st = self.sched.state.lock().expect("scheduler lock");
                    st.status[self.tid] == Status::Finished
                };
                if finished {
                    break;
                }
                let me = CTX
                    .with(|c| c.borrow().as_ref().map(|&(_, t)| t))
                    .expect("join called outside the model");
                self.sched
                    .switch(me, true, Some(Status::Blocked(BlockOn::Join(self.tid))));
            }
            if let Some(os) = self.os.take() {
                let _ = os.join();
            }
            self.result.lock().expect("result lock").take().ok_or_else(
                || -> Box<dyn std::any::Any + Send> { Box::new("model thread panicked") },
            )
        }
    }

    /// Spawn a model thread participating in systematic scheduling.
    ///
    /// # Panics
    /// Panics if called outside [`super::model`].
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (sched, me) = CTX
            .with(|c| c.borrow().clone())
            .expect("loom::thread::spawn called outside loom::model");
        let tid = sched.register_thread();
        let result = Arc::new(std::sync::Mutex::new(None));
        let r2 = Arc::clone(&result);
        let s2 = Arc::clone(&sched);
        let os = std::thread::Builder::new()
            .name(format!("loom-{tid}"))
            .spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&s2), tid)));
                s2.wait_first_schedule(tid);
                let out = catch_unwind(AssertUnwindSafe(f));
                match out {
                    Ok(v) => {
                        *r2.lock().expect("result lock") = Some(v);
                        s2.finish(tid, None);
                    }
                    Err(p) => s2.finish(tid, Some(p)),
                }
            })
            .expect("spawn loom thread");
        // The new thread is schedulable from this point on.
        sched.switch(me, false, None);
        JoinHandle {
            tid,
            result,
            os: Some(os),
            sched,
        }
    }

    /// Voluntarily yield: a free (non-preemptive) scheduling point.
    pub fn yield_now() {
        if let Some((sched, me)) = CTX.with(|c| c.borrow().clone()) {
            sched.switch(me, true, None);
        }
    }
}

/// Shimmed `std::sync` subset.
pub mod sync {
    pub use std::sync::Arc;

    use super::{BlockOn, Status, CTX};

    /// Mutex whose lock acquisition is a scheduling point and whose
    /// contention blocks the model thread (so the explorer can schedule
    /// around it instead of spinning).
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    /// Guard returned by [`Mutex::lock`]; releases (and wakes waiters)
    /// on drop.
    #[derive(Debug)]
    pub struct MutexGuard<'a, T> {
        inner: Option<std::sync::MutexGuard<'a, T>>,
        addr: usize,
    }

    impl<T> Mutex<T> {
        /// New unlocked mutex.
        pub fn new(value: T) -> Self {
            Self {
                inner: std::sync::Mutex::new(value),
            }
        }

        fn addr(&self) -> usize {
            std::ptr::from_ref(self) as usize
        }

        /// Acquire, blocking the model thread on contention.
        ///
        /// # Errors
        /// Mirrors `std`'s poisoning signature; never poisoned in
        /// practice because the explorer aborts on the first panic.
        #[allow(clippy::missing_panics_doc)]
        pub fn lock(&self) -> Result<MutexGuard<'_, T>, std::sync::PoisonError<MutexGuard<'_, T>>> {
            loop {
                super::point();
                match self.inner.try_lock() {
                    Ok(g) => {
                        return Ok(MutexGuard {
                            inner: Some(g),
                            addr: self.addr(),
                        })
                    }
                    Err(std::sync::TryLockError::Poisoned(_)) => {
                        panic!("loom mutex poisoned")
                    }
                    Err(std::sync::TryLockError::WouldBlock) => {
                        if let Some((sched, me)) = CTX.with(|c| c.borrow().clone()) {
                            sched.switch(
                                me,
                                true,
                                Some(Status::Blocked(BlockOn::Mutex(self.addr()))),
                            );
                        }
                        // Re-contend once scheduled again.
                    }
                }
            }
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard holds the lock")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard holds the lock")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            self.inner = None; // release the std lock first
            if let Some((sched, _)) = CTX.with(|c| c.borrow().clone()) {
                sched.release_mutex(self.addr);
            }
        }
    }

    /// Shimmed atomics: every operation is a scheduling point executed
    /// under sequential consistency.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        use std::sync::atomic::Ordering::SeqCst;

        macro_rules! shim_atomic {
            ($name:ident, $std:ty, $prim:ty) => {
                /// Model-checked atomic; see the module docs.
                #[derive(Debug, Default)]
                pub struct $name {
                    v: $std,
                }

                impl $name {
                    /// New atomic holding `v`.
                    #[must_use]
                    pub fn new(v: $prim) -> Self {
                        Self { v: <$std>::new(v) }
                    }

                    /// Atomic load (scheduling point).
                    pub fn load(&self, _order: Ordering) -> $prim {
                        crate::point();
                        self.v.load(SeqCst)
                    }

                    /// Atomic store (scheduling point).
                    pub fn store(&self, val: $prim, _order: Ordering) {
                        crate::point();
                        self.v.store(val, SeqCst);
                    }

                    /// Atomic compare-exchange (scheduling point).
                    ///
                    /// # Errors
                    /// Returns the observed value when it differs from
                    /// `current`.
                    pub fn compare_exchange(
                        &self,
                        current: $prim,
                        new: $prim,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        crate::point();
                        self.v.compare_exchange(current, new, SeqCst, SeqCst)
                    }

                    /// Like [`Self::compare_exchange`]; this subset
                    /// never fails spuriously.
                    ///
                    /// # Errors
                    /// Returns the observed value when it differs from
                    /// `current`.
                    pub fn compare_exchange_weak(
                        &self,
                        current: $prim,
                        new: $prim,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        self.compare_exchange(current, new, success, failure)
                    }

                    /// Atomic add, returning the previous value.
                    pub fn fetch_add(&self, val: $prim, _order: Ordering) -> $prim {
                        crate::point();
                        self.v.fetch_add(val, SeqCst)
                    }

                    /// Atomic subtract, returning the previous value.
                    pub fn fetch_sub(&self, val: $prim, _order: Ordering) -> $prim {
                        crate::point();
                        self.v.fetch_sub(val, SeqCst)
                    }

                    /// Atomic bitwise or, returning the previous value.
                    pub fn fetch_or(&self, val: $prim, _order: Ordering) -> $prim {
                        crate::point();
                        self.v.fetch_or(val, SeqCst)
                    }

                    /// Atomic maximum, returning the previous value.
                    pub fn fetch_max(&self, val: $prim, _order: Ordering) -> $prim {
                        crate::point();
                        self.v.fetch_max(val, SeqCst)
                    }

                    /// Atomic read-modify-write as one step (real loom
                    /// models the underlying CAS loop).
                    ///
                    /// # Errors
                    /// Returns the unchanged value when `f` yields
                    /// `None`.
                    pub fn fetch_update<F>(
                        &self,
                        _set: Ordering,
                        _fetch: Ordering,
                        f: F,
                    ) -> Result<$prim, $prim>
                    where
                        F: FnMut($prim) -> Option<$prim>,
                    {
                        crate::point();
                        self.v.fetch_update(SeqCst, SeqCst, f)
                    }
                }
            };
        }

        shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        shim_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);

        /// Model-checked boolean atomic (no arithmetic ops, so it lives
        /// outside the integer shim macro); see the module docs.
        #[derive(Debug, Default)]
        pub struct AtomicBool {
            v: std::sync::atomic::AtomicBool,
        }

        impl AtomicBool {
            /// New atomic holding `v`.
            #[must_use]
            pub fn new(v: bool) -> Self {
                Self {
                    v: std::sync::atomic::AtomicBool::new(v),
                }
            }

            /// Atomic load (scheduling point).
            pub fn load(&self, _order: Ordering) -> bool {
                crate::point();
                self.v.load(SeqCst)
            }

            /// Atomic store (scheduling point).
            pub fn store(&self, val: bool, _order: Ordering) {
                crate::point();
                self.v.store(val, SeqCst);
            }

            /// Atomic swap, returning the previous value.
            pub fn swap(&self, val: bool, _order: Ordering) -> bool {
                crate::point();
                self.v.swap(val, SeqCst)
            }

            /// Atomic compare-exchange (scheduling point).
            ///
            /// # Errors
            /// Returns the observed value when it differs from
            /// `current`.
            pub fn compare_exchange(
                &self,
                current: bool,
                new: bool,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<bool, bool> {
                crate::point();
                self.v.compare_exchange(current, new, SeqCst, SeqCst)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Mutex};

    /// Two incrementers through a mutex: final count is always 2.
    #[test]
    fn mutex_counter_is_atomic() {
        super::model(|| {
            let n = Arc::new(Mutex::new(0u32));
            let n2 = Arc::clone(&n);
            let t = super::thread::spawn(move || {
                *n2.lock().expect("lock") += 1;
            });
            *n.lock().expect("lock") += 1;
            t.join().expect("join");
            assert_eq!(*n.lock().expect("lock"), 2);
        });
    }

    /// A seeded load/store race (non-atomic read-modify-write) must be
    /// caught: some interleaving loses an increment.
    #[test]
    fn detects_lost_update() {
        let caught = std::panic::catch_unwind(|| {
            super::model(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let n2 = Arc::clone(&n);
                let t = super::thread::spawn(move || {
                    let v = n2.load(Ordering::SeqCst);
                    n2.store(v + 1, Ordering::SeqCst);
                });
                let v = n.load(Ordering::SeqCst);
                n.store(v + 1, Ordering::SeqCst);
                t.join().expect("join");
                assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(caught.is_err(), "model failed to find the lost update");
    }

    /// The same race fixed with fetch_add passes exhaustively.
    #[test]
    fn fetch_add_has_no_lost_update() {
        super::model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = super::thread::spawn(move || {
                n2.fetch_add(1, Ordering::SeqCst);
            });
            n.fetch_add(1, Ordering::SeqCst);
            t.join().expect("join");
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
    }

    /// Self-deadlock (relocking a held mutex) is reported, not hung.
    #[test]
    fn reports_deadlock() {
        let caught = std::panic::catch_unwind(|| {
            super::model(|| {
                let m = Mutex::new(());
                let _g = m.lock().expect("lock");
                let _g2 = m.lock().expect("relock");
            });
        });
        assert!(caught.is_err(), "deadlock not detected");
    }

    /// Exploration visits more than one schedule for a 2-thread race.
    #[test]
    fn explores_multiple_interleavings() {
        use std::sync::atomic::AtomicUsize as StdAtomic;
        use std::sync::atomic::Ordering::Relaxed;
        let runs = std::sync::Arc::new(StdAtomic::new(0));
        let r2 = std::sync::Arc::clone(&runs);
        super::model(move || {
            r2.fetch_add(1, Relaxed);
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = super::thread::spawn(move || {
                n2.fetch_add(1, Ordering::SeqCst);
            });
            n.fetch_add(2, Ordering::SeqCst);
            t.join().expect("join");
        });
        assert!(runs.load(Relaxed) > 1, "only one schedule explored");
    }
}
