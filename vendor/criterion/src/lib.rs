//! Offline drop-in subset of `criterion`.
//!
//! Same authoring API (`criterion_group!`, `benchmark_group`,
//! `bench_with_input`, `Bencher::iter`), much simpler measurement: each
//! benchmark is auto-calibrated to a short batch, sampled a fixed number
//! of times, and the median ns/iter is reported. Results are printed to
//! stdout and written as `BENCH_<target>.json` into the results
//! directory (`$FERROTCAM_RESULTS` or `./results`) so runs can be
//! compared across commits.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::Instant;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full id, `group/param` for grouped benches.
    pub id: String,
    /// Median wall time per iteration, nanoseconds.
    pub ns_per_iter: f64,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Elements (or bytes) processed per iteration, when declared.
    pub throughput: Option<u64>,
}

/// Declared per-iteration work, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

impl Throughput {
    fn count(self) -> u64 {
        match self {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        }
    }
}

/// Identifier of a bench case within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name plus a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Id from the parameter alone (prefixed with the group name).
    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Runs closures under timing; handed to every benchmark body.
pub struct Bencher {
    batch: u64,
    samples: usize,
    measured_ns: f64,
}

impl Bencher {
    /// Time `f`, storing the median ns per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until one batch costs >= 1 ms, so
        // per-call timer overhead is amortized away.
        let mut batch = self.batch.max(1);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed().as_nanos();
            if elapsed >= 1_000_000 || batch >= 1 << 24 {
                break;
            }
            batch = if elapsed == 0 {
                batch * 64
            } else {
                (batch * 2).max(batch + 1)
            };
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    std::hint::black_box(f());
                }
                let total = start.elapsed().as_nanos();
                let per = u64::try_from(total).unwrap_or(u64::MAX);
                let batch_f = if batch == 0 { 1.0 } else { batch as f64 };
                per as f64 / batch_f
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        self.measured_ns = per_iter[per_iter.len() / 2];
        self.batch = batch;
    }
}

/// Top-level benchmark driver; collects results for the final report.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_case(name.to_string(), DEFAULT_SAMPLES, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
            throughput: None,
        }
    }

    fn run_case<F: FnMut(&mut Bencher)>(
        &mut self,
        id: String,
        samples: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let mut b = Bencher {
            batch: 1,
            samples,
            measured_ns: 0.0,
        };
        f(&mut b);
        let result = BenchResult {
            id,
            ns_per_iter: b.measured_ns,
            samples,
            throughput: throughput.map(Throughput::count),
        };
        println!("{:<44} {:>14.1} ns/iter", result.id, result.ns_per_iter);
        self.results.push(result);
    }

    /// Print the report and write the `BENCH_<target>.json` artifact.
    /// Called by `criterion_main!` after all groups have run.
    pub fn final_summary(&self) {
        let target = bench_target_name();
        let path = results_dir().join(format!("BENCH_{target}.json"));
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"target\": \"{target}\",");
        json.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let tp = r
                .throughput
                .map_or_else(|| "null".to_string(), |n| n.to_string());
            let _ = write!(
                json,
                "    {{\"id\": \"{}\", \"ns_per_iter\": {:.3}, \"samples\": {}, \"throughput\": {}}}",
                r.id.replace('"', "\\\""),
                r.ns_per_iter,
                r.samples,
                tp
            );
            json.push_str(if i + 1 < self.results.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        json.push_str("  ]\n}\n");
        if std::fs::create_dir_all(results_dir()).is_ok() {
            match std::fs::write(&path, json) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("could not write {}: {e}", path.display()),
            }
        }
    }
}

const DEFAULT_SAMPLES: usize = 15;

fn results_dir() -> std::path::PathBuf {
    std::env::var_os("FERROTCAM_RESULTS")
        .map_or_else(|| std::path::PathBuf::from("results"), Into::into)
}

/// Best-effort bench target name from argv[0]: strip the directory and
/// the `-<hash>` suffix cargo appends to bench executables.
fn bench_target_name() -> String {
    let argv0 = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&argv0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    match stem.rsplit_once('-') {
        Some((name, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            name.to_string()
        }
        _ => stem.to_string(),
    }
}

/// Scoped view over a [`Criterion`] with shared group settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per case.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    /// Declare per-iteration work for the following cases.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one case of this group against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id.id);
        self.criterion
            .run_case(full_id, self.samples, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (results are recorded as cases run; this exists
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a single group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point: run every group, then print/write the summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

/// Opaque-to-the-optimizer identity, re-exported for compatibility with
/// `criterion::black_box` imports.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}
