//! Offline drop-in subset of `serde`.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors a miniature serde: the [`Serialize`]/[`Deserialize`] traits
//! operate through an owned JSON-shaped data model ([`value::Value`])
//! instead of upstream serde's visitor architecture. The companion
//! `serde_derive` proc-macro generates impls for the struct and enum
//! shapes used in this repository (named structs, tuple/newtype
//! structs, and enums with unit, newtype, tuple and struct variants,
//! externally tagged exactly like upstream serde).

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

/// A type that can be turned into the [`value::Value`] data model.
pub trait Serialize {
    /// Convert `self` into a data-model value.
    fn serialize_value(&self) -> value::Value;
}

/// A type that can be rebuilt from the [`value::Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a data-model value.
    ///
    /// # Errors
    /// Returns [`value::DeError`] when the value's shape does not match.
    fn deserialize_value(v: &value::Value) -> Result<Self, value::DeError>;
}

/// Upstream-compatible alias: our `Deserialize` is always owned.
pub mod de {
    pub use crate::Deserialize as DeserializeOwned;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> value::Value {
                value::Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &value::Value) -> Result<Self, value::DeError> {
                match v {
                    value::Value::Int(i) => Ok(*i as $t),
                    value::Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(value::DeError::mismatch("integer", other)),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> value::Value {
                value::Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &value::Value) -> Result<Self, value::DeError> {
                match v {
                    value::Value::Float(f) => Ok(*f as $t),
                    value::Value::Int(i) => Ok(*i as $t),
                    other => Err(value::DeError::mismatch("number", other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> value::Value {
        value::Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_value(v: &value::Value) -> Result<Self, value::DeError> {
        match v {
            value::Value::Bool(b) => Ok(*b),
            other => Err(value::DeError::mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> value::Value {
        value::Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_value(v: &value::Value) -> Result<Self, value::DeError> {
        match v {
            value::Value::Str(s) => Ok(s.clone()),
            other => Err(value::DeError::mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> value::Value {
        value::Value::Str(self.to_string())
    }
}

// Identity impls let callers work with the dynamic data model directly
// (e.g. validating NDJSON lines whose schema varies by event kind).
impl Serialize for value::Value {
    fn serialize_value(&self) -> value::Value {
        self.clone()
    }
}
impl Deserialize for value::Value {
    fn deserialize_value(v: &value::Value) -> Result<Self, value::DeError> {
        Ok(v.clone())
    }
}

// `&'static str` fields appear in small static context tables
// (e.g. published-design records). Deserializing one leaks the string;
// that is bounded by the size of those tables and lets the derive stay
// lifetime-free.
impl Deserialize for &'static str {
    fn deserialize_value(v: &value::Value) -> Result<Self, value::DeError> {
        match v {
            value::Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(value::DeError::mismatch("string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> value::Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> value::Value {
        match self {
            Some(x) => x.serialize_value(),
            None => value::Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &value::Value) -> Result<Self, value::DeError> {
        match v {
            value::Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> value::Value {
        value::Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &value::Value) -> Result<Self, value::DeError> {
        match v {
            value::Value::Seq(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(value::DeError::mismatch("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> value::Value {
        value::Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> value::Value {
                value::Value::Seq(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &value::Value) -> Result<Self, value::DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    value::Value::Seq(items) if items.len() == LEN => {
                        Ok(($($name::deserialize_value(&items[$idx])?,)+))
                    }
                    other => Err(value::DeError::mismatch("tuple", other)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
