//! The owned data model that serialization passes through.

use std::fmt;

/// A JSON-shaped owned value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` / absent optional.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (also used for unsigned values that fit).
    Int(i64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered key/value map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up `key` in a map value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Borrow the string payload, if this is a string value.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer payload, if this is an integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Human label of the variant, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Error with a free-form message.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// Shape-mismatch error.
    #[must_use]
    pub fn mismatch(expected: &str, got: &Value) -> Self {
        Self::new(format!("expected {expected}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Fetch and deserialize a struct field from a map value. A missing key
/// deserializes as [`Value::Null`], which lets `Option` fields default
/// to `None`.
///
/// # Errors
/// Propagates the field's own deserialization error, or a mismatch when
/// `v` is not a map.
pub fn from_field<T: crate::Deserialize>(v: &Value, key: &str) -> Result<T, DeError> {
    match v {
        Value::Map(_) => match v.get(key) {
            Some(field) => {
                T::deserialize_value(field).map_err(|e| DeError::new(format!("field `{key}`: {e}")))
            }
            None => T::deserialize_value(&Value::Null)
                .map_err(|_| DeError::new(format!("missing field `{key}`"))),
        },
        other => Err(DeError::mismatch("map", other)),
    }
}

/// [`from_field`] for a `#[serde(default)]` field: a missing key (or a
/// key that only deserializes as null) yields `Default::default()`
/// instead of an error, so old snapshots keep reading after the schema
/// grows.
///
/// # Errors
/// Propagates the field's own deserialization error when the key is
/// present, or a mismatch when `v` is not a map.
pub fn from_field_or_default<T: crate::Deserialize + Default>(
    v: &Value,
    key: &str,
) -> Result<T, DeError> {
    match v {
        Value::Map(_) => match v.get(key) {
            Some(field) => {
                T::deserialize_value(field).map_err(|e| DeError::new(format!("field `{key}`: {e}")))
            }
            None => Ok(T::default()),
        },
        other => Err(DeError::mismatch("map", other)),
    }
}
