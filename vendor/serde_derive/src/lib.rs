//! Derive macros for the vendored serde subset.
//!
//! Implemented without `syn`/`quote` (the build environment is
//! offline): a small hand-rolled parser walks the `TokenStream` of the
//! deriving item and emits impls as source text. Supported shapes are
//! exactly what this workspace uses — non-generic named structs, tuple
//! structs (newtypes serialize transparently), unit structs, and enums
//! with unit / newtype / tuple / struct variants (externally tagged,
//! like upstream serde's default).
//!
//! One field attribute is honoured: `#[serde(default)]` on a named
//! field makes a missing key deserialize as `Default::default()`
//! (upstream semantics), which is how snapshots stay readable across
//! schema growth. All other `serde` attributes are ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// A named field plus whether `#[serde(default)]` was on it.
struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    match parse_item(&tokens) {
        Ok((name, shape)) => {
            let src = match mode {
                Mode::Serialize => gen_serialize(&name, &shape),
                Mode::Deserialize => gen_deserialize(&name, &shape),
            };
            src.parse().expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

// ---------------------------------------------------------------- parsing

struct Cursor<'a> {
    toks: &'a [TokenTree],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a TokenTree> {
        let t = self.toks.get(self.pos);
        self.pos += t.is_some() as usize;
        t
    }

    fn skip_attributes(&mut self) {
        let _ = self.take_attributes();
    }

    /// Skip attributes, reporting whether any was `#[serde(default)]`
    /// (possibly among a comma list, `#[serde(default, rename = ..)]`).
    fn take_attributes(&mut self) -> bool {
        let mut has_default = false;
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Bracket {
                    has_default |= attr_is_serde_default(&g.stream());
                    self.next();
                }
            }
        }
        has_default
    }

    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Consume tokens until a top-level comma (angle-bracket depth 0);
    /// the comma itself is consumed too.
    fn skip_until_comma(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => return,
                    _ => {}
                }
            }
        }
    }
}

fn parse_item(tokens: &[TokenTree]) -> Result<(String, Shape), String> {
    let mut c = Cursor {
        toks: tokens,
        pos: 0,
    };
    c.skip_attributes();
    c.skip_visibility();
    let keyword = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected the type name".into()),
    };
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive (vendored): generic type `{name}` is unsupported"
        ));
    }
    match keyword.as_str() {
        "struct" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok((name, Shape::NamedStruct(parse_named_fields(&fields))))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok((name, Shape::TupleStruct(count_tuple_fields(&fields))))
            }
            _ => Ok((name, Shape::UnitStruct)),
        },
        "enum" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok((name, Shape::Enum(parse_variants(&body)?)))
            }
            _ => Err(format!("malformed enum `{name}`")),
        },
        other => Err(format!("cannot derive serde impls for `{other}` items")),
    }
}

/// Whether a single attribute body (the tokens inside `#[...]`) is
/// `serde(...)` with `default` at the top level of the list.
fn attr_is_serde_default(body: &TokenStream) -> bool {
    let toks: Vec<TokenTree> = body.clone().into_iter().collect();
    match toks.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)]
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "default"))
        }
        _ => false,
    }
}

fn parse_named_fields(tokens: &[TokenTree]) -> Vec<Field> {
    let mut c = Cursor {
        toks: tokens,
        pos: 0,
    };
    let mut fields = Vec::new();
    loop {
        let default = c.take_attributes();
        c.skip_visibility();
        match c.next() {
            Some(TokenTree::Ident(i)) => fields.push(Field {
                name: i.to_string(),
                default,
            }),
            _ => break,
        }
        // `: Type` up to the next top-level comma.
        c.skip_until_comma();
    }
    fields
}

fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut in_segment = false;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += in_segment as usize;
                    in_segment = false;
                    continue;
                }
                _ => {}
            }
        }
        in_segment = true;
    }
    count + in_segment as usize
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut c = Cursor {
        toks: tokens,
        pos: 0,
    };
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => return Err(format!("unexpected token `{other}` in enum body")),
            None => break,
        };
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                c.next();
                VariantKind::Tuple(count_tuple_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                c.next();
                VariantKind::Struct(parse_named_fields(&inner))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Optional discriminant, then the separating comma.
        c.skip_until_comma();
    }
    Ok(variants)
}

// ------------------------------------------------------------- generation

const V: &str = "::serde::value::Value";

/// Which `serde::value` accessor a field deserializes through.
fn field_helper(f: &Field) -> &'static str {
    if f.default {
        "from_field_or_default"
    } else {
        "from_field"
    }
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let mut entries = String::new();
            for f in fields {
                let f = &f.name;
                let _ = write!(
                    entries,
                    "(::std::string::String::from({f:?}), \
                     ::serde::Serialize::serialize_value(&self.{f})),"
                );
            }
            format!("{V}::Map(::std::vec![{entries}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let mut items = String::new();
            for i in 0..*n {
                let _ = write!(items, "::serde::Serialize::serialize_value(&self.{i}),");
            }
            format!("{V}::Seq(::std::vec![{items}])")
        }
        Shape::UnitStruct => format!("{V}::Null"),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vn} => {V}::Str(::std::string::String::from({vn:?})),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "{name}::{vn}(__f0) => {V}::Map(::std::vec![\
                             (::std::string::String::from({vn:?}), \
                              ::serde::Serialize::serialize_value(__f0))]),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut items = String::new();
                        for b in &binds {
                            let _ = write!(items, "::serde::Serialize::serialize_value({b}),");
                        }
                        let _ = write!(
                            arms,
                            "{name}::{vn}({}) => {V}::Map(::std::vec![\
                             (::std::string::String::from({vn:?}), \
                              {V}::Seq(::std::vec![{items}]))]),",
                            binds.join(",")
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let mut entries = String::new();
                        for f in fields {
                            let f = &f.name;
                            let _ = write!(
                                entries,
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::serialize_value({f})),"
                            );
                        }
                        let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let _ = write!(
                            arms,
                            "{name}::{vn} {{ {} }} => {V}::Map(::std::vec![\
                             (::std::string::String::from({vn:?}), \
                              {V}::Map(::std::vec![{entries}]))]),",
                            names.join(",")
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> {V} {{ {body} }}\n\
         }}\n"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let err = "::serde::value::DeError";
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let (f, helper) = (&f.name, field_helper(f));
                let _ = write!(inits, "{f}: ::serde::value::{helper}(__v, {f:?})?,");
            }
            format!("::core::result::Result::Ok({name} {{ {inits} }})")
        }
        Shape::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(__v)?))"
        ),
        Shape::TupleStruct(n) => {
            let mut items = String::new();
            for i in 0..*n {
                let _ = write!(
                    items,
                    "::serde::Deserialize::deserialize_value(&__items[{i}])?,"
                );
            }
            format!(
                "match __v {{\n\
                   {V}::Seq(__items) if __items.len() == {n} => \
                     ::core::result::Result::Ok({name}({items})),\n\
                   __other => ::core::result::Result::Err({err}::mismatch(\
                     \"sequence of length {n}\", __other)),\n\
                 }}"
            )
        }
        Shape::UnitStruct => format!("::core::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            unit_arms,
                            "{vn:?} => ::core::result::Result::Ok({name}::{vn}),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            data_arms,
                            "{vn:?} => ::core::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize_value(__inner)?)),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let mut items = String::new();
                        for i in 0..*n {
                            let _ = write!(
                                items,
                                "::serde::Deserialize::deserialize_value(&__items[{i}])?,"
                            );
                        }
                        let _ = write!(
                            data_arms,
                            "{vn:?} => match __inner {{\n\
                               {V}::Seq(__items) if __items.len() == {n} => \
                                 ::core::result::Result::Ok({name}::{vn}({items})),\n\
                               __other => ::core::result::Result::Err({err}::mismatch(\
                                 \"sequence of length {n}\", __other)),\n\
                             }},"
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let (f, helper) = (&f.name, field_helper(f));
                            let _ =
                                write!(inits, "{f}: ::serde::value::{helper}(__inner, {f:?})?,");
                        }
                        let _ = write!(
                            data_arms,
                            "{vn:?} => ::core::result::Result::Ok(\
                             {name}::{vn} {{ {inits} }}),"
                        );
                    }
                }
            }
            format!(
                "match __v {{\n\
                   {V}::Str(__s) => match __s.as_str() {{\n\
                     {unit_arms}\n\
                     __other => ::core::result::Result::Err({err}::new(\
                       ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                   }},\n\
                   {V}::Map(__entries) if __entries.len() == 1 => {{\n\
                     let (__k, __inner) = &__entries[0];\n\
                     let _ = __inner;\n\
                     match __k.as_str() {{\n\
                       {data_arms}\n\
                       __other => ::core::result::Result::Err({err}::new(\
                         ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }}\n\
                   }},\n\
                   __other => ::core::result::Result::Err({err}::mismatch(\
                     \"externally tagged variant of {name}\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic, unused_variables)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(__v: &{V}) -> ::core::result::Result<Self, {err}> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}
