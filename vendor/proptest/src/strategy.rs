//! Strategy trait and combinators.

use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies. Deterministic per test name.
pub type TestRng = rand::rngs::StdRng;

/// Deterministic RNG for a named property test.
#[must_use]
pub fn rng_for_test(name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// Type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }
}

/// Weighted choice between strategies of a common value type.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms. Panics if the total
    /// weight is zero.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Self { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.random_range(0..self.total);
        for (weight, strat) in &self.arms {
            if pick < *weight {
                return strat.sample(rng);
            }
            pick -= *weight;
        }
        unreachable!("weighted pick exceeded total")
    }
}

/// Values drawn uniformly from the whole domain of `Self`.
pub trait Arbitrary {
    /// Draw one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for any value of an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

/// `any::<T>()` — uniform over `T`'s whole domain.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several decades.
        let mag: f64 = rng.random();
        let exp: i32 = rng.random_range(-12..13);
        let sign = if rng.random_bool(0.5) { 1.0 } else { -1.0 };
        sign * mag * 10f64.powi(exp)
    }
}

impl Arbitrary for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

// Ranges sample uniformly via rand's `SampleRange`.
impl<T> Strategy for Range<T>
where
    Range<T>: rand::SampleRange<Output = T> + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: rand::SampleRange<Output = T> + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection;

    #[test]
    fn deterministic_per_name() {
        let mut a = rng_for_test("t");
        let mut b = rng_for_test("t");
        let strat = (0u32..100, 0.0f64..1.0);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }

    #[test]
    fn vec_respects_size_bounds() {
        let mut rng = rng_for_test("sizes");
        let strat = collection::vec(0u8..=255, 3..7);
        for _ in 0..50 {
            let v = strat.sample(&mut rng);
            assert!((3..=6).contains(&v.len()));
        }
        let fixed = collection::vec(Just(1u8), 4usize);
        assert_eq!(fixed.sample(&mut rng).len(), 4);
    }

    #[test]
    fn union_honors_weights() {
        let mut rng = rng_for_test("union");
        let strat = Union::new(vec![(9, Just(0u8).boxed()), (1, Just(1u8).boxed())]);
        let ones: usize = (0..2000).map(|_| usize::from(strat.sample(&mut rng))).sum();
        assert!(ones > 100 && ones < 350, "ones = {ones}");
    }

    #[test]
    fn flat_map_dependent_lengths() {
        let mut rng = rng_for_test("flat");
        let strat = (1usize..=8).prop_flat_map(|n| (Just(n), collection::vec(0u8..10, n)));
        for _ in 0..50 {
            let (n, v) = strat.sample(&mut rng);
            assert_eq!(v.len(), n);
        }
    }
}
