//! Offline drop-in subset of `proptest`.
//!
//! Provides the strategy combinators and macros this workspace uses:
//! `proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_oneof!`,
//! `any`, `Just`, `prop_map`, `prop_flat_map`, `collection::vec`,
//! `Union`/`BoxedStrategy`, and `ProptestConfig`. No shrinking: a
//! failing case panics with the regular assertion message. Sampling is
//! deterministic per test (the RNG is seeded from the test name), so
//! failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod test_runner {
    /// Runner configuration. Only `cases` is consulted; the other
    /// fields exist so upstream-style struct-update literals compile.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }
}

pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end.saturating_sub(1),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with `size` drawn uniformly from the given bounds
    /// (a plain `usize` pins the length exactly).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Run the property body for each generated case.
///
/// Supported forms mirror upstream: an optional leading
/// `#![proptest_config(expr)]`, then one or more
/// `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr;
     $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::strategy::rng_for_test(stringify!($name));
                for _case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Weighted or unweighted union of strategies over a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
