//! Workspace root crate: re-exports the ferroTCAM stack for the examples
//! and integration tests. Library users should depend on the individual
//! crates (`ferrotcam`, `ferrotcam-device`, ...) directly.

pub use ferrotcam as core;
pub use ferrotcam_arch as arch;
pub use ferrotcam_device as device;
pub use ferrotcam_eval as eval;
pub use ferrotcam_spice as spice;
