//! The mutation corpus: every concurrency-defect class the analyzer
//! claims to catch is seeded here as a minimal mutant of a clean
//! baseline, and the test asserts the *exact* rule id comes back (and
//! nothing for the baseline). This is the analyzer's own audit — a
//! pass that silently stops firing fails this suite, not production.
//!
//! The final test is the self-clean gate: the real workspace must
//! analyze clean, so any of these defect classes introduced into
//! `crates/serve` fails CI's `ferrotcam analyze --deny`.

use ferrotcam_analysis::registry::Registry;
use ferrotcam_analysis::{analyze_sources, Report, Rule};

const REGISTRY: &str = "\
[orderings]
seq-acquire = pairs with the release store publishing the slot
stat-relaxed = independent counters, racy snapshot by contract

[hot]
hot.rs::submit

[blocking]
sleep
recv
join
";

/// A clean two-file baseline exercising every pass: a façade-style
/// sync module boundary, tagged ordering sites, ordered locks, and a
/// hot function with a waived expect and a hoisted buffer.
const SYNC_RS: &str = "\
pub(crate) use std::sync::atomic::{AtomicU64, Ordering};
pub(crate) use std::sync::Mutex;
";

const HOT_RS: &str = "\
use crate::sync::{AtomicU64, Mutex, Ordering};
use std::sync::mpsc;

struct S {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
    count: AtomicU64,
}

impl S {
    fn submit(&self, xs: &[u64], out: &mut Vec<u64>) {
        self.count.fetch_add(1, Ordering::Relaxed); // ordering: stat-relaxed
        // ordering: seq-acquire
        let seen = self.count.load(Ordering::Acquire);
        for x in xs {
            out.push(x + seen);
        }
        // hot-ok: the channel end lives for the whole service.
        self.tail().expect(\"tail\");
    }

    fn ordered(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop((a, b));
    }

    fn ordered_again(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop((a, b));
    }

    fn tail(&self) -> Option<u64> {
        None
    }
}
";

fn registry() -> Registry {
    Registry::parse(REGISTRY).unwrap()
}

fn analyze(hot_rs: &str, reg: &Registry) -> Report {
    analyze_sources(
        &[
            ("crates/x/src/sync.rs", SYNC_RS),
            ("crates/x/src/hot.rs", hot_rs),
        ],
        reg,
        "analysis.registry",
    )
}

/// The single rule the mutant must trip, and no other.
fn assert_only(report: &Report, rule: Rule) {
    assert!(
        report.has_rule(rule),
        "expected {} in: {}",
        rule.id(),
        report.render_human()
    );
    for d in report.diagnostics() {
        assert_eq!(d.rule, rule, "unexpected extra finding: {d}");
    }
}

#[test]
fn baseline_is_clean() {
    let r = analyze(HOT_RS, &registry());
    assert!(
        r.is_clean(),
        "baseline must be clean:\n{}",
        r.render_human()
    );
}

#[test]
fn mutation_facade_bypass_import() {
    // Class 1: a std::sync primitive imported outside the façade.
    let mutant = HOT_RS.replace(
        "use std::sync::mpsc;",
        "use std::sync::mpsc;\nuse std::sync::RwLock;",
    );
    assert_only(&analyze(&mutant, &registry()), Rule::FacadeBypass);
}

#[test]
fn mutation_facade_bypass_loom_path() {
    // Class 1b: reaching the loom shim directly instead of crate::sync.
    let mutant = HOT_RS.replace(
        "use std::sync::mpsc;",
        "use std::sync::mpsc;\n#[cfg(loom)]\nuse loom::sync::Mutex as M2;",
    );
    assert_only(&analyze(&mutant, &registry()), Rule::FacadeBypass);
}

#[test]
fn mutation_unregistered_ordering_site() {
    // Class 2: a new ordering site lands without any tag.
    let mutant = HOT_RS.replace(
        "fn tail(&self) -> Option<u64> {",
        "fn peek(&self) -> u64 {\n        self.count.load(Ordering::Relaxed)\n    }\n\n    fn tail(&self) -> Option<u64> {",
    );
    assert_only(&analyze(&mutant, &registry()), Rule::UnregisteredOrdering);
}

#[test]
fn mutation_stale_ordering_tag() {
    // Class 3: a site is retagged without registering the tag.
    let mutant = HOT_RS.replace("// ordering: stat-relaxed", "// ordering: made-up-tag");
    let r = analyze(&mutant, &registry());
    // The registry's now-unused tag also drifts: both sides of the
    // contract fire, which is exactly the point of a bidirectional
    // registry. Stale must be among them.
    assert!(r.has_rule(Rule::StaleOrderingTag), "{}", r.render_human());
    assert!(
        r.diagnostics()
            .iter()
            .all(|d| matches!(d.rule, Rule::StaleOrderingTag | Rule::RegistryDrift)),
        "{}",
        r.render_human()
    );
}

#[test]
fn mutation_registry_drift_dead_tag() {
    // Class 4: the last site of a registered tag is deleted.
    let mutant = HOT_RS.replace(
        "self.count.fetch_add(1, Ordering::Relaxed); // ordering: stat-relaxed",
        "",
    );
    assert_only(&analyze(&mutant, &registry()), Rule::RegistryDrift);
}

#[test]
fn mutation_registry_drift_dangling_hot_fn() {
    // Class 4b: the hot function is renamed, the registry is not.
    let mutant = HOT_RS.replace("fn submit(", "fn submit_fast(");
    assert_only(&analyze(&mutant, &registry()), Rule::RegistryDrift);
}

#[test]
fn mutation_lock_inversion() {
    // Class 5: one code path takes beta before alpha.
    let mutant = HOT_RS.replace(
        "fn ordered_again(&self) {\n        let a = self.alpha.lock();\n        let b = self.beta.lock();",
        "fn ordered_again(&self) {\n        let b = self.beta.lock();\n        let a = self.alpha.lock();",
    );
    assert_ne!(mutant, HOT_RS, "replacement must apply");
    assert_only(&analyze(&mutant, &registry()), Rule::LockOrderCycle);
}

#[test]
fn mutation_lock_inversion_through_helper() {
    // Class 5b: the inversion hides one call deep.
    let mutant = HOT_RS.replace(
        "fn ordered_again(&self) {\n        let a = self.alpha.lock();\n        let b = self.beta.lock();\n        drop((a, b));\n    }",
        "fn ordered_again(&self) {\n        let b = self.beta.lock();\n        self.grab_alpha();\n        drop(b);\n    }\n\n    fn grab_alpha(&self) {\n        let a = self.alpha.lock();\n        drop(a);\n    }",
    );
    assert_ne!(mutant, HOT_RS, "replacement must apply");
    assert_only(&analyze(&mutant, &registry()), Rule::LockOrderCycle);
}

#[test]
fn mutation_lock_across_blocking() {
    // Class 6: a guard held over a blocking call.
    let mutant = HOT_RS.replace(
        "fn ordered(&self) {\n        let a = self.alpha.lock();",
        "fn ordered(&self) {\n        let a = self.alpha.lock();\n        std::thread::sleep(core::time::Duration::from_millis(1));",
    );
    assert_ne!(mutant, HOT_RS, "replacement must apply");
    assert_only(&analyze(&mutant, &registry()), Rule::LockAcrossBlocking);
}

#[test]
fn mutation_hot_path_unwrap() {
    // Class 7: the waiver comment is dropped from the hot expect.
    let mutant = HOT_RS.replace(
        "// hot-ok: the channel end lives for the whole service.\n        ",
        "",
    );
    assert_ne!(mutant, HOT_RS, "replacement must apply");
    assert_only(&analyze(&mutant, &registry()), Rule::HotPathUnwrap);
}

#[test]
fn mutation_hot_path_alloc() {
    // Class 8: a per-iteration allocation creeps into the hot loop.
    let mutant = HOT_RS.replace(
        "out.push(x + seen);",
        "let tmp: Vec<u64> = xs.iter().map(|v| v + seen).collect();\n            out.push(tmp[0] + x);",
    );
    assert_ne!(mutant, HOT_RS, "replacement must apply");
    assert_only(&analyze(&mutant, &registry()), Rule::HotPathAlloc);
}

#[test]
fn workspace_self_clean_gate() {
    // The real serve tree must stay clean under its own registry —
    // this is what CI's `ferrotcam analyze --deny` enforces.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let report = ferrotcam_analysis::analyze_workspace(&root).expect("workspace analyzes");
    assert!(
        report.is_clean(),
        "crates/serve must analyze clean:\n{}",
        report.render_human()
    );
}
