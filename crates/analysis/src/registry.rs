//! The checked-in concurrency registry (`analysis.registry`).
//!
//! An INI-like file with three sections:
//!
//! ```text
//! [orderings]
//! tag-name = one-line justification
//! [hot]
//! file.rs::function
//! [blocking]
//! method_name
//! ```
//!
//! `#`-prefixed lines are comments. The registry is the reviewed
//! source of truth the passes cross-check the code against: ordering
//! tags must exist here, hot functions are audited for unwraps and
//! per-iteration allocation, and the blocking names feed the
//! lock-across-blocking rule.

use std::collections::{BTreeMap, BTreeSet};

/// One `[orderings]` entry.
#[derive(Debug, Clone)]
pub struct OrderingEntry {
    /// The reviewed one-line justification.
    pub justification: String,
    /// 1-based registry line, for drift diagnostics.
    pub line: usize,
}

/// One `[hot]` entry: `file.rs::function`.
#[derive(Debug, Clone)]
pub struct HotFn {
    /// Bare file name inside the audited source tree.
    pub file: String,
    /// Function name inside that file.
    pub func: String,
    /// 1-based registry line, for drift diagnostics.
    pub line: usize,
}

/// Parsed registry.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// Registered ordering tags (tag → justification + line).
    pub orderings: BTreeMap<String, OrderingEntry>,
    /// Hot-path functions, in file order.
    pub hot: Vec<HotFn>,
    /// Method/function names treated as blocking.
    pub blocking: BTreeSet<String>,
}

impl Registry {
    /// Parse registry `text`.
    ///
    /// # Errors
    /// A message naming the offending line on malformed input
    /// (unknown section, entry outside a section, bad `[hot]` shape,
    /// duplicate ordering tag).
    pub fn parse(text: &str) -> Result<Self, String> {
        enum Section {
            Orderings,
            Hot,
            Blocking,
        }
        let mut reg = Registry::default();
        let mut section: Option<Section> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = Some(match name {
                    "orderings" => Section::Orderings,
                    "hot" => Section::Hot,
                    "blocking" => Section::Blocking,
                    other => {
                        return Err(format!("registry line {lineno}: unknown section [{other}]"))
                    }
                });
                continue;
            }
            match section {
                Some(Section::Orderings) => {
                    let Some((tag, just)) = line.split_once('=') else {
                        return Err(format!(
                            "registry line {lineno}: expected `tag = justification`"
                        ));
                    };
                    let tag = tag.trim().to_string();
                    if reg
                        .orderings
                        .insert(
                            tag.clone(),
                            OrderingEntry {
                                justification: just.trim().to_string(),
                                line: lineno,
                            },
                        )
                        .is_some()
                    {
                        return Err(format!("registry line {lineno}: duplicate tag `{tag}`"));
                    }
                }
                Some(Section::Hot) => {
                    let Some((file, func)) = line.split_once("::") else {
                        return Err(format!(
                            "registry line {lineno}: expected `file.rs::function`"
                        ));
                    };
                    reg.hot.push(HotFn {
                        file: file.trim().to_string(),
                        func: func.trim().to_string(),
                        line: lineno,
                    });
                }
                Some(Section::Blocking) => {
                    reg.blocking.insert(line.to_string());
                }
                None => {
                    return Err(format!(
                        "registry line {lineno}: entry before any [section]"
                    ));
                }
            }
        }
        Ok(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# comment
[orderings]
a-tag = why it is safe
b-tag = another reason

[hot]
queue.rs::push
service.rs::enqueue

[blocking]
sleep
recv
";

    #[test]
    fn parses_all_sections() {
        let r = Registry::parse(SAMPLE).unwrap();
        assert_eq!(r.orderings.len(), 2);
        assert_eq!(r.orderings["a-tag"].justification, "why it is safe");
        assert_eq!(r.hot.len(), 2);
        assert_eq!(r.hot[1].file, "service.rs");
        assert_eq!(r.hot[1].func, "enqueue");
        assert!(r.blocking.contains("sleep"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Registry::parse("stray").is_err());
        assert!(Registry::parse("[nope]\n").is_err());
        assert!(Registry::parse("[orderings]\nno-equals\n").is_err());
        assert!(Registry::parse("[hot]\nmissing-sep\n").is_err());
        assert!(Registry::parse("[orderings]\nt = a\nt = b\n").is_err());
    }
}
