//! Sync-façade enforcement (`facade-bypass`).
//!
//! Every atomic, lock, or loom primitive used by ferrotcam-serve must
//! flow through `src/sync.rs`, the one file that selects between
//! `std::sync` and the loom shim and wraps `Mutex` in the lock-order
//! shadow. A direct `std::sync` primitive anywhere else would compile
//! and pass tests on std, then silently escape both loom model
//! checking and the runtime lock-order tracker — exactly the kind of
//! hole that only shows up as a production deadlock. This pass denies
//! it at lint time.
//!
//! Message-passing and ownership types that carry no ambient
//! synchronisation protocol of their own (`Arc`, `Weak`, `mpsc`, the
//! poison/lock result types) stay allowed: loom does not model them
//! as schedules the serve models care about, and routing them through
//! the façade would add noise without adding checking.

use crate::lexer::{self, Stripped};
use crate::{Diagnostic, Rule};

/// `std::sync` heads that may be used directly.
const ALLOWED: &[&str] = &[
    "mpsc",
    "Arc",
    "Weak",
    "PoisonError",
    "TryLockError",
    "LockResult",
];

/// Whether this file is the façade itself (the only file allowed to
/// name `std::sync` primitives and `loom`).
fn is_facade(path: &str) -> bool {
    path.ends_with("sync.rs")
}

/// Run the pass over `(path, stripped)` pairs.
pub fn check(files: &[(String, Stripped)], out: &mut Vec<Diagnostic>) {
    for (path, s) in files {
        if is_facade(path) {
            continue;
        }
        check_std_sync(path, s, out);
        check_loom(path, s, out);
    }
}

/// Flag `std::sync::<denied-head>` paths, including inside `use`
/// groups (`use std::sync::{mpsc, Mutex}` flags `Mutex` only).
fn check_std_sync(path: &str, s: &Stripped, out: &mut Vec<Diagnostic>) {
    const NEEDLE: &str = "std::sync::";
    let code = &s.code;
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(rel) = code[from..].find(NEEDLE) {
        let at = from + rel;
        from = at + NEEDLE.len();
        // Require a path boundary on the left so `xstd::sync` or
        // `my::std::sync` aliases do not match.
        if at > 0 && (lexer::is_ident_byte(b[at - 1]) || b[at - 1] == b':') {
            continue;
        }
        let after = at + NEEDLE.len();
        match lexer::next_nonspace(code, after, code.len()) {
            Some((open, b'{')) => {
                let Some(close) = match_group(code, open) else {
                    continue;
                };
                for (item_at, head) in group_heads(code, open + 1, close) {
                    if !ALLOWED.contains(&head) {
                        deny_head(path, s, item_at, head, out);
                    }
                }
            }
            Some((i, c)) if lexer::is_ident_byte(c) => {
                let head_end = code[i..]
                    .bytes()
                    .position(|c| !lexer::is_ident_byte(c))
                    .map_or(code.len(), |off| i + off);
                let head = &code[i..head_end];
                if !ALLOWED.contains(&head) {
                    deny_head(path, s, at, head, out);
                }
            }
            _ => {}
        }
    }
}

/// Flag any `loom` path outside the façade: even under `cfg(loom)`,
/// model-checked code must reach the shim through `crate::sync`.
fn check_loom(path: &str, s: &Stripped, out: &mut Vec<Diagnostic>) {
    for (at, ident) in lexer::idents(&s.code, 0..s.code.len()) {
        if ident != "loom" {
            continue;
        }
        // `loom` as a path head only: `loom::…` or `use loom`. A bare
        // `cfg(loom)` / `not(loom)` attribute or cfg test is fine.
        let after = at + ident.len();
        let next = lexer::next_nonspace(&s.code, after, s.code.len());
        if matches!(next, Some((_, b':'))) {
            out.push(Diagnostic::new(
                Rule::FacadeBypass,
                path,
                s.line_of(at),
                "`loom::` path outside the sync façade; model-checked \
                 code must use `crate::sync` so std builds stay in lockstep"
                    .to_string(),
            ));
        }
    }
}

fn deny_head(path: &str, s: &Stripped, at: usize, head: &str, out: &mut Vec<Diagnostic>) {
    out.push(Diagnostic::new(
        Rule::FacadeBypass,
        path,
        s.line_of(at),
        format!(
            "direct `std::sync::{head}` outside the sync façade; import it \
             from `crate::sync` so loom model checking and the lock-order \
             shadow see it"
        ),
    ));
}

/// Matching `}` for a `use`-group `{` (groups never nest braces more
/// than one level in practice, but handle nesting anyway).
fn match_group(code: &str, open: usize) -> Option<usize> {
    lexer::match_brace(code, open)
}

/// First path segment of each top-level item in a use group, as
/// `(offset, head)`.
fn group_heads(code: &str, start: usize, end: usize) -> Vec<(usize, &str)> {
    let b = code.as_bytes();
    let mut heads = Vec::new();
    let mut depth = 0usize;
    let mut item_start = start;
    let mut items = Vec::new();
    for (i, &c) in b.iter().enumerate().take(end).skip(start) {
        match c {
            b'{' => depth += 1,
            b'}' => depth = depth.saturating_sub(1),
            b',' if depth == 0 => {
                items.push(item_start..i);
                item_start = i + 1;
            }
            _ => {}
        }
    }
    items.push(item_start..end);
    for r in items {
        if let Some(&(at, head)) = lexer::idents(code, r).first() {
            // `self` re-imports the parent module itself — that is
            // `std::sync`, which is never a primitive.
            if head != "self" {
                heads.push((at, head));
            }
        }
    }
    heads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::strip;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check(&[(path.to_string(), strip(src))], &mut out);
        out
    }

    #[test]
    fn denies_primitives_allows_channels() {
        let d = run("a.rs", "use std::sync::{mpsc, Arc, Mutex};\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Mutex"));
        assert!(run("a.rs", "use std::sync::{mpsc, Arc};\n").is_empty());
    }

    #[test]
    fn denies_qualified_paths_and_atomics() {
        let d = run("a.rs", "let x = std::sync::atomic::AtomicU64::new(0);\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("atomic"));
    }

    #[test]
    fn facade_file_is_exempt() {
        assert!(run(
            "src/sync.rs",
            "use std::sync::Mutex;\nuse loom::sync::Mutex;\n"
        )
        .is_empty());
    }

    #[test]
    fn loom_paths_denied_but_cfg_loom_allowed() {
        let d = run("a.rs", "#[cfg(loom)]\nuse loom::sync::Mutex;\n");
        assert_eq!(d.len(), 1, "cfg(loom) fine, loom:: path denied");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn comments_and_strings_do_not_trip() {
        assert!(run(
            "a.rs",
            "// std::sync::Mutex in prose\nlet s = \"std::sync::Mutex\";\n"
        )
        .is_empty());
    }
}
