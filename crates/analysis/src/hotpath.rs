//! Hot-path hygiene (`hot-path-unwrap`, `hot-path-alloc`,
//! `registry-drift` for dangling `[hot]` entries).
//!
//! Functions listed in the registry's `[hot]` section sit on the
//! submit or dispatch hot path: they run once per request (or once
//! per dispatcher iteration) under load. Inside them the pass denies:
//!
//! * `.unwrap()` / `.expect(…)` — a panic here poisons the façade
//!   mutexes and takes the whole dispatcher down; hot code must
//!   handle its errors as values. Sites whose invariant genuinely
//!   cannot fail (e.g. the Vyukov claimed-slot read) carry a
//!   `// hot-ok: <reason>` waiver, which is itself reviewable text.
//! * heap allocation **inside a loop body** — `vec!`, `format!`,
//!   `Vec::new`, `Box::new`, `String::from`, `.to_string()`,
//!   `.to_vec()`, `.to_owned()`, `.collect()`, `with_capacity` — the
//!   per-iteration allocations that turn a steady-state dispatcher
//!   into an allocator benchmark. One-time setup allocation before
//!   the loop is fine and is the idiom the rule pushes code toward.

use crate::lexer::{self, FnItem, Stripped};
use crate::registry::Registry;
use crate::{Diagnostic, Rule};
use std::ops::Range;

/// Method names that are panic sites.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
/// Method names that allocate.
const ALLOC_METHODS: &[&str] = &[
    "to_string",
    "to_vec",
    "to_owned",
    "collect",
    "with_capacity",
];
/// `Type::ctor` pairs that allocate.
const ALLOC_CTORS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("Box", "new"),
    ("HashMap", "new"),
    ("BTreeMap", "new"),
    ("VecDeque", "new"),
];
/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Run the pass. `fns` is the per-file function index built by the
/// driver (same order as `files`).
pub fn check(
    files: &[(String, Stripped)],
    fns: &[Vec<FnItem>],
    registry: &Registry,
    registry_path: &str,
    out: &mut Vec<Diagnostic>,
) {
    for hot in &registry.hot {
        let Some(file_idx) = files
            .iter()
            .position(|(path, _)| path.ends_with(&format!("/{}", hot.file)))
        else {
            out.push(Diagnostic::new(
                Rule::RegistryDrift,
                registry_path,
                hot.line,
                format!(
                    "[hot] entry names `{}`, which is not in the audited tree",
                    hot.file
                ),
            ));
            continue;
        };
        let (path, s) = &files[file_idx];
        let matching: Vec<&FnItem> = fns[file_idx]
            .iter()
            .filter(|f| f.name == hot.func)
            .collect();
        if matching.is_empty() {
            out.push(Diagnostic::new(
                Rule::RegistryDrift,
                registry_path,
                hot.line,
                format!(
                    "[hot] entry `{}::{}` matches no function; update the \
                     registry alongside the rename",
                    hot.file, hot.func
                ),
            ));
            continue;
        }
        for f in matching {
            check_fn(path, s, f, &hot.func, out);
        }
    }
}

fn check_fn(path: &str, s: &Stripped, f: &FnItem, func: &str, out: &mut Vec<Diagnostic>) {
    let code = &s.code;
    let loops = loop_regions(code, f.body.clone());
    for (at, ident) in lexer::idents(code, f.body.clone()) {
        let line = s.line_of(at);
        if PANIC_METHODS.contains(&ident)
            && is_method_call(code, at, ident)
            && s.tag_above_or_on(line, "hot-ok:").is_none()
        {
            out.push(Diagnostic::new(
                Rule::HotPathUnwrap,
                path,
                line,
                format!(
                    "`.{ident}(…)` in hot function `{func}`: a panic here \
                     poisons the serve locks; handle the error or add a \
                     reviewed `// hot-ok:` waiver"
                ),
            ));
        }
        if !loops.iter().any(|r| r.contains(&at)) {
            continue;
        }
        let allocates = (ALLOC_METHODS.contains(&ident) && is_method_call(code, at, ident))
            || (ALLOC_MACROS.contains(&ident) && is_macro_bang(code, at, ident))
            || is_alloc_ctor(code, at, ident);
        if allocates && s.tag_above_or_on(line, "hot-ok:").is_none() {
            out.push(Diagnostic::new(
                Rule::HotPathAlloc,
                path,
                line,
                format!(
                    "per-iteration allocation (`{ident}`) inside a loop in \
                     hot function `{func}`; hoist the buffer out of the loop \
                     and reuse it, or add a reviewed `// hot-ok:` waiver"
                ),
            ));
        }
    }
}

/// `ident` at `at` is invoked as `.ident(` (whitespace-tolerant on
/// both sides, so chained multi-line calls match).
fn is_method_call(code: &str, at: usize, ident: &str) -> bool {
    let called = matches!(
        lexer::next_nonspace(code, at + ident.len(), code.len()),
        Some((_, b'(' | b':')) // `(args…)` or turbofish `::<T>(…)`
    );
    called && matches!(lexer::prev_nonspace(code, at), Some((_, b'.')))
}

/// `ident` at `at` is `ident!`.
fn is_macro_bang(code: &str, at: usize, ident: &str) -> bool {
    code.as_bytes().get(at + ident.len()) == Some(&b'!')
}

/// `ident` at `at` is the ctor in a registered `Type::ctor(` pair.
fn is_alloc_ctor(code: &str, at: usize, ident: &str) -> bool {
    if !ALLOC_CTORS.iter().any(|&(_, ctor)| ctor == ident) {
        return false;
    }
    if !matches!(
        lexer::next_nonspace(code, at + ident.len(), code.len()),
        Some((_, b'('))
    ) {
        return false;
    }
    // Expect `Type ::` immediately before the ctor.
    let Some((colon2, b':')) = lexer::prev_nonspace(code, at) else {
        return false;
    };
    if colon2 == 0 || code.as_bytes()[colon2 - 1] != b':' {
        return false;
    }
    let Some((ty_end, _)) = lexer::prev_nonspace(code, colon2 - 1) else {
        return false;
    };
    let b = code.as_bytes();
    let mut ty_start = ty_end;
    while ty_start > 0 && lexer::is_ident_byte(b[ty_start - 1]) {
        ty_start -= 1;
    }
    let ty = &code[ty_start..=ty_end];
    ALLOC_CTORS.iter().any(|&(t, c)| t == ty && c == ident)
}

/// Byte ranges of `loop`/`while`/`for` bodies (including nested ones)
/// within `body`.
fn loop_regions(code: &str, body: Range<usize>) -> Vec<Range<usize>> {
    let mut regions = Vec::new();
    for (at, ident) in lexer::idents(code, body.clone()) {
        if !matches!(ident, "loop" | "while" | "for") {
            continue;
        }
        // The loop body is the next `{` at or after the keyword; the
        // headers in this codebase carry no braces of their own.
        let Some(open_rel) = code[at..body.end].find('{') else {
            continue;
        };
        let open = at + open_rel;
        if let Some(close) = lexer::match_brace(code, open) {
            regions.push(open + 1..close.min(body.end));
        }
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{scan_fns, strip};

    fn run(src: &str, hot: &str) -> Vec<Diagnostic> {
        let s = strip(src);
        let fns = scan_fns(&s.code);
        let reg = Registry::parse(&format!("[hot]\n{hot}\n")).unwrap();
        let mut out = Vec::new();
        check(
            &[("crates/x/src/a.rs".to_string(), s)],
            &[fns],
            &reg,
            "analysis.registry",
            &mut out,
        );
        out
    }

    #[test]
    fn unwrap_in_hot_fn_flagged_waiver_respected() {
        let src = "fn hot(x: Option<u8>) {\n    let _ = x.unwrap();\n}\n\
                   fn cold(x: Option<u8>) {\n    let _ = x.unwrap();\n}\n";
        let d = run(src, "a.rs::hot");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::HotPathUnwrap);
        assert_eq!(d[0].line, 2);

        let waived =
            "fn hot(x: Option<u8>) {\n    // hot-ok: proven present\n    let _ = x.unwrap();\n}\n";
        assert!(run(waived, "a.rs::hot").is_empty());
    }

    #[test]
    fn expect_chained_across_lines_flagged() {
        let src = "fn hot(x: Option<u8>) {\n    let _ = x\n        .expect(\"msg\");\n}\n";
        let d = run(src, "a.rs::hot");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn hot(x: Option<u8>) {\n    let _ = x.unwrap_or(3);\n    let _ = x.unwrap_or_default();\n}\n";
        assert!(run(src, "a.rs::hot").is_empty());
    }

    #[test]
    fn alloc_in_loop_flagged_but_not_outside() {
        let src = "fn hot(n: usize) {\n    let mut buf: Vec<u8> = Vec::with_capacity(n);\n    loop {\n        let v = vec![0u8; n];\n        buf.extend(v);\n    }\n}\n";
        let d = run(src, "a.rs::hot");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::HotPathAlloc);
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn collect_and_ctor_in_for_loop_flagged() {
        let src = "fn hot(xs: &[u8]) {\n    for x in xs {\n        let s = String::from(\"a\");\n        let v: Vec<u8> = xs.iter().copied().collect();\n        drop((s, v, x));\n    }\n}\n";
        let d = run(src, "a.rs::hot");
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.rule == Rule::HotPathAlloc));
    }

    #[test]
    fn struct_literal_and_push_are_not_allocation() {
        let src = "fn hot(xs: &[u8], out: &mut Vec<u8>) {\n    for x in xs {\n        out.push(*x);\n        let s = Sample { v: *x };\n        drop(s);\n    }\n}\n";
        assert!(run(src, "a.rs::hot").is_empty());
    }

    #[test]
    fn dangling_hot_entry_is_drift() {
        let d = run("fn real() {}\n", "a.rs::gone");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::RegistryDrift);
        let d2 = run("fn real() {}\n", "other.rs::real");
        assert_eq!(d2.len(), 1);
        assert_eq!(d2[0].rule, Rule::RegistryDrift);
    }
}
