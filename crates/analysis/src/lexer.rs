//! A minimal Rust lexer for the concurrency passes.
//!
//! This is deliberately *not* a parser: the passes only need
//! comment-and-literal-free source text, per-line comment text (for
//! `// ordering:` and `// hot-ok:` tags), function-item extents, and
//! brace depths. [`strip`] produces a byte-length-preserving view of
//! the source with every comment and every string/char-literal payload
//! blanked to spaces, so byte offsets and line numbers in the stripped
//! text map 1:1 onto the original file.
//!
//! Handled: `//` line comments, nested `/* */` block comments, normal
//! strings with escapes, raw strings (`r"…"`, `r#"…"#`, …), byte
//! strings, char literals, and the char-literal/lifetime ambiguity
//! (`'a'` vs `'a`). Exotic forms absent from this workspace (e.g.
//! `br##"…"##`) degrade gracefully rather than panicking.

/// A stripped view of one source file: code with comments and literal
/// payloads blanked (same byte length as the original) plus the
/// comment text collected per line.
#[derive(Debug)]
pub struct Stripped {
    /// Source with comments and string/char payloads replaced by
    /// spaces; newlines preserved. Same byte length as the input.
    pub code: String,
    /// Concatenated comment text of each (1-based) line; empty when
    /// the line has no comment.
    comments: Vec<String>,
    /// Byte offset at which each (1-based) line starts.
    line_starts: Vec<usize>,
}

impl Stripped {
    /// Number of lines in the file.
    #[must_use]
    pub fn num_lines(&self) -> usize {
        self.line_starts.len()
    }

    /// 1-based line containing byte `offset`.
    #[must_use]
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// The stripped code of a 1-based line.
    #[must_use]
    pub fn code_line(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.code.len(), |&next| next);
        self.code[start..end].trim_end_matches('\n')
    }

    /// The comment text of a 1-based line (empty when none).
    #[must_use]
    pub fn comment_line(&self, line: usize) -> &str {
        &self.comments[line - 1]
    }

    /// Whether a line holds only comment text (no code tokens).
    #[must_use]
    pub fn is_comment_only(&self, line: usize) -> bool {
        self.code_line(line).trim().is_empty() && !self.comment_line(line).trim().is_empty()
    }

    /// Look for `prefix` (e.g. `"ordering:"`) in the comment on `line`
    /// or in the contiguous run of comment-only lines immediately
    /// above it (nearest line first), returning the kebab-case token
    /// that follows it.
    #[must_use]
    pub fn tag_above_or_on(&self, line: usize, prefix: &str) -> Option<String> {
        if let Some(tag) = extract_tag(self.comment_line(line), prefix) {
            return Some(tag);
        }
        let mut l = line;
        while l > 1 && self.is_comment_only(l - 1) {
            l -= 1;
            if let Some(tag) = extract_tag(self.comment_line(l), prefix) {
                return Some(tag);
            }
        }
        None
    }
}

/// The token after `prefix` in `comment`: letters, digits, `-`, `_`.
fn extract_tag(comment: &str, prefix: &str) -> Option<String> {
    let at = comment.find(prefix)?;
    let rest = comment[at + prefix.len()..].trim_start();
    let tag: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
        .collect();
    (!tag.is_empty()).then_some(tag)
}

/// Whether `b` can appear in an identifier.
#[must_use]
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Blank comments and literal payloads out of `src` (see module docs).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn strip(src: &str) -> Stripped {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = vec![b' '; n];
    let mut line_starts = vec![0usize];
    let mut comments: Vec<String> = vec![String::new()];

    // Record a newline in the output and the line tables.
    macro_rules! newline {
        ($i:expr) => {
            out[$i] = b'\n';
            line_starts.push($i + 1);
            comments.push(String::new());
        };
    }
    // Append src[$r] to the current line's comment text.
    macro_rules! comment_push {
        ($r:expr) => {
            let last = comments.len() - 1;
            comments[last].push_str(&src[$r]);
        };
    }

    let mut i = 0;
    while i < n {
        let c = b[i];
        if c == b'\n' {
            newline!(i);
            i += 1;
        } else if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            // Line comment: capture text up to (not including) newline.
            let start = i;
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            comment_push!(start..i);
        } else if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            // Block comment, nesting per Rust rules.
            let mut depth = 1;
            let mut seg = i; // start of the current line's segment
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'\n' {
                    comment_push!(seg..i);
                    newline!(i);
                    i += 1;
                    seg = i;
                } else if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            comment_push!(seg..i.min(n));
        } else if c == b'"' {
            // String literal (quotes blanked too; escapes honoured).
            i += 1;
            while i < n {
                match b[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\n' => {
                        newline!(i);
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
        } else if c == b'r' && (i == 0 || !is_ident_byte(b[i - 1])) && {
            let mut j = i + 1;
            while j < n && b[j] == b'#' {
                j += 1;
            }
            j < n && b[j] == b'"' && (j == i + 1 || b[i + 1] == b'#')
        } {
            // Raw string r"…" / r#"…"# / r##"…"## …
            let mut hashes = 0;
            let mut j = i + 1;
            while j < n && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            i = j + 1; // past the opening quote
            'raw: while i < n {
                if b[i] == b'\n' {
                    newline!(i);
                    i += 1;
                } else if b[i] == b'"' {
                    let mut k = i + 1;
                    let mut seen = 0;
                    while k < n && seen < hashes && b[k] == b'#' {
                        seen += 1;
                        k += 1;
                    }
                    i = k;
                    if seen == hashes {
                        break 'raw;
                    }
                } else {
                    i += 1;
                }
            }
        } else if c == b'\'' {
            // Char literal or lifetime.
            if i + 1 < n && b[i + 1] == b'\\' {
                // Escaped char literal: consume to the closing quote.
                i += 2;
                while i < n && b[i] != b'\'' {
                    i += 1;
                }
                i += 1;
            } else if i + 2 < n && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                // Plain ASCII char literal 'x'.
                i += 3;
            } else {
                // Lifetime: the quote and its identifier are code.
                out[i] = b'\'';
                i += 1;
            }
        } else {
            out[i] = c;
            i += 1;
        }
    }

    Stripped {
        code: String::from_utf8(out).expect("blanked source stays UTF-8"),
        comments,
        line_starts,
    }
}

/// One `fn` item found in a stripped file.
#[derive(Debug)]
pub struct FnItem {
    /// The function's bare name (no path, no generics).
    pub name: String,
    /// Byte offset of the `fn` keyword.
    pub header_offset: usize,
    /// Byte range of the body, inside the braces.
    pub body: std::ops::Range<usize>,
}

/// Every `fn` item (free functions, methods, nested fns) in stripped
/// code, in source order. Bodyless trait signatures are skipped.
#[must_use]
pub fn scan_fns(code: &str) -> Vec<FnItem> {
    let b = code.as_bytes();
    let mut items = Vec::new();
    for (kw_at, ident) in idents(code, 0..code.len()) {
        if ident != "fn" {
            continue;
        }
        // Name: next identifier after `fn`.
        let mut i = kw_at + 2;
        while i < b.len() && !is_ident_byte(b[i]) {
            i += 1;
        }
        let name_start = i;
        while i < b.len() && is_ident_byte(b[i]) {
            i += 1;
        }
        if name_start == i {
            continue;
        }
        let name = code[name_start..i].to_string();
        // Body: first `{` before any `;` (a `;` first means a bodyless
        // trait signature).
        let mut open = None;
        while i < b.len() {
            match b[i] {
                b'{' => {
                    open = Some(i);
                    break;
                }
                b';' => break,
                _ => i += 1,
            }
        }
        let Some(open) = open else { continue };
        let Some(close) = match_brace(code, open) else {
            continue;
        };
        items.push(FnItem {
            name,
            header_offset: kw_at,
            body: open + 1..close,
        });
    }
    items
}

/// Offset of the `}` matching the `{` at `open`, if balanced.
#[must_use]
pub fn match_brace(code: &str, open: usize) -> Option<usize> {
    let b = code.as_bytes();
    debug_assert_eq!(b[open], b'{');
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// All identifiers in `code[range]` as `(offset, text)`, in order.
#[must_use]
pub fn idents(code: &str, range: std::ops::Range<usize>) -> Vec<(usize, &str)> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut i = range.start;
    while i < range.end {
        if is_ident_byte(b[i]) && (i == 0 || !is_ident_byte(b[i - 1])) {
            let start = i;
            while i < range.end && is_ident_byte(b[i]) {
                i += 1;
            }
            // A leading digit means a numeric literal, not an ident.
            if !b[start].is_ascii_digit() {
                out.push((start, &code[start..i]));
            }
        } else {
            i += 1;
        }
    }
    out
}

/// First non-space byte at or after `i`, staying within `range`.
#[must_use]
pub fn next_nonspace(code: &str, mut i: usize, end: usize) -> Option<(usize, u8)> {
    let b = code.as_bytes();
    while i < end {
        if !b[i].is_ascii_whitespace() {
            return Some((i, b[i]));
        }
        i += 1;
    }
    None
}

/// Last non-space byte strictly before `i`.
#[must_use]
pub fn prev_nonspace(code: &str, i: usize) -> Option<(usize, u8)> {
    let b = code.as_bytes();
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !b[j].is_ascii_whitespace() {
            return Some((j, b[j]));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_preserves_length_and_lines() {
        let src = "let a = \"x\\\"y\"; // tail\n/* b\nlock() */ let c = 'x';\n";
        let s = strip(src);
        assert_eq!(s.code.len(), src.len());
        assert_eq!(s.num_lines(), src.lines().count() + 1);
        assert!(!s.code.contains('"'));
        assert!(!s.code.contains("tail"));
        assert!(!s.code.contains("lock"), "block comments blanked");
        assert!(s.comment_line(1).contains("tail"));
        assert!(s.comment_line(2).contains('b'));
    }

    #[test]
    fn strip_keeps_lifetimes_but_not_char_literals() {
        let s = strip("fn f<'a>(x: &'a u8) { let c = 'z'; }");
        assert!(s.code.contains("'a"), "lifetime survives");
        assert!(!s.code.contains('z'), "char payload blanked");
    }

    #[test]
    fn strip_raw_strings() {
        let s = strip("let p = r#\"he \"quoted\" llo\"#; let q = 1;");
        assert!(!s.code.contains("he"));
        assert!(s.code.contains("let q = 1;"));
    }

    #[test]
    fn fn_scanner_finds_methods_and_nested() {
        let src = "impl X { fn outer(&self) -> usize { fn inner() {} 3 } }\ntrait T { fn sig(); }";
        let s = strip(src);
        let fns = scan_fns(&s.code);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"], "bodyless sig skipped");
        let outer = &fns[0];
        assert!(src[outer.body.clone()].contains("inner"));
    }

    #[test]
    fn tag_lookup_walks_contiguous_comments() {
        let src = "// hot-ok: the protocol\n// guarantees a value.\nx.expect(1);\n\ny.expect(2); // hot-ok: same-line\nz.expect(3);\n";
        let s = strip(src);
        assert_eq!(s.tag_above_or_on(3, "hot-ok:").as_deref(), Some("the"));
        assert_eq!(
            s.tag_above_or_on(5, "hot-ok:").as_deref(),
            Some("same-line")
        );
        assert_eq!(
            s.tag_above_or_on(6, "hot-ok:"),
            None,
            "blank line breaks the run"
        );
    }

    #[test]
    fn idents_skip_numbers_and_respect_boundaries() {
        let toks = idents("ab1 2cd for_x 0x3f", 0..18);
        let names: Vec<&str> = toks.iter().map(|t| t.1).collect();
        assert_eq!(names, ["ab1", "for_x"], "numeric-led tokens are not idents");
    }
}
