//! Atomic-ordering registry enforcement (`unregistered-ordering`,
//! `stale-ordering-tag`, `registry-drift`).
//!
//! Every `Ordering::{Relaxed, Acquire, Release, AcqRel, SeqCst}` site
//! in the audited tree must carry an `// ordering: <tag>` comment on
//! the same line or in the contiguous comment block directly above,
//! and the tag must exist in the checked-in registry with a reviewed
//! justification. The registry is bidirectional: a tag used in code
//! but missing from the registry is stale, and a registered tag with
//! no remaining site is drift — deleting the last site of a tag
//! forces the registry (and its justification) to be revisited in the
//! same change.
//!
//! The unit of tagging is the *line*: a line holding several
//! `Ordering::` tokens (a `compare_exchange` failure ordering, a
//! `fetch_update` pair) is one decision and needs one tag.

use crate::lexer::{self, Stripped};
use crate::registry::Registry;
use crate::{Diagnostic, Rule};
use std::collections::BTreeMap;

/// The five ordering variants the pass recognises.
const VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Run the pass; `registry_path` names the registry file in drift
/// diagnostics.
pub fn check(
    files: &[(String, Stripped)],
    registry: &Registry,
    registry_path: &str,
    out: &mut Vec<Diagnostic>,
) {
    let mut used: BTreeMap<&str, usize> =
        registry.orderings.keys().map(|k| (k.as_str(), 0)).collect();
    for (path, s) in files {
        for line in site_lines(s) {
            match s.tag_above_or_on(line, "ordering:") {
                None => out.push(Diagnostic::new(
                    Rule::UnregisteredOrdering,
                    path,
                    line,
                    "atomic ordering site without an `// ordering: <tag>` \
                     comment; tag it and register the tag in analysis.registry"
                        .to_string(),
                )),
                Some(tag) => match used.get_mut(tag.as_str()) {
                    Some(count) => *count += 1,
                    None => out.push(Diagnostic::new(
                        Rule::StaleOrderingTag,
                        path,
                        line,
                        format!(
                            "ordering tag `{tag}` is not registered in \
                             analysis.registry; add it with a justification \
                             or retag the site"
                        ),
                    )),
                },
            }
        }
    }
    for (tag, count) in used {
        if count == 0 {
            let entry = &registry.orderings[tag];
            out.push(Diagnostic::new(
                Rule::RegistryDrift,
                registry_path,
                entry.line,
                format!(
                    "registered ordering tag `{tag}` has no remaining site \
                     in the audited sources; delete the entry or restore the tag"
                ),
            ));
        }
    }
}

/// 1-based lines containing at least one `Ordering::<variant>` token.
fn site_lines(s: &Stripped) -> Vec<usize> {
    let code = &s.code;
    let mut lines = Vec::new();
    for (at, ident) in lexer::idents(code, 0..code.len()) {
        if ident != "Ordering" {
            continue;
        }
        let after = at + ident.len();
        if !code[after..].starts_with("::") {
            continue;
        }
        let vstart = after + 2;
        let vend = code[vstart..]
            .bytes()
            .position(|c| !lexer::is_ident_byte(c))
            .map_or(code.len(), |off| vstart + off);
        if VARIANTS.contains(&&code[vstart..vend]) {
            let line = s.line_of(at);
            if lines.last() != Some(&line) {
                lines.push(line);
            }
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::strip;

    fn registry() -> Registry {
        Registry::parse("[orderings]\ngood-tag = fine\nunused-tag = also fine\n").unwrap()
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check(
            &[("a.rs".to_string(), strip(src))],
            &registry(),
            "analysis.registry",
            &mut out,
        );
        out
    }

    #[test]
    fn tagged_site_counts_and_unused_tag_drifts() {
        let d = run("x.load(Ordering::Acquire); // ordering: good-tag\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::RegistryDrift);
        assert!(d[0].message.contains("unused-tag"));
        assert_eq!(d[0].file, "analysis.registry");
    }

    #[test]
    fn untagged_site_flagged() {
        let d = run(
            "x.load(Ordering::Acquire); // ordering: good-tag\ny.load(Ordering::Relaxed); // ordering: unused-tag\nz.store(1, Ordering::Release);\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::UnregisteredOrdering);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn unknown_tag_is_stale() {
        let d = run(
            "x.load(Ordering::Acquire); // ordering: good-tag\ny.load(Ordering::Relaxed); // ordering: unused-tag\nz.load(Ordering::SeqCst); // ordering: mystery\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::StaleOrderingTag);
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("mystery"));
    }

    #[test]
    fn preceding_comment_block_tags_the_site() {
        let d = run(
            "// ordering: good-tag\nx.fetch_update(Ordering::AcqRel, Ordering::Acquire, f);\ny.load(Ordering::Relaxed); // ordering: unused-tag\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn one_line_two_variants_is_one_site() {
        let d = run("x.compare_exchange(a, b, Ordering::SeqCst, Ordering::SeqCst);\n");
        assert_eq!(
            d.iter()
                .filter(|d| d.rule == Rule::UnregisteredOrdering)
                .count(),
            1
        );
    }

    #[test]
    fn non_atomic_ordering_enum_ignored() {
        let d = run("let o = std::cmp::Ordering::Less;\n");
        assert!(d.iter().all(|d| d.rule != Rule::UnregisteredOrdering));
    }
}
