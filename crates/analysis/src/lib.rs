//! Source-level concurrency lint for the serve layer.
//!
//! `ferrotcam analyze` runs four passes over `crates/serve/src`
//! against the checked-in registry (`crates/serve/analysis.registry`),
//! mirroring the netlist ERC in `ferrotcam-spice::erc`: typed rules
//! with stable kebab-case ids, a sorted deterministic report, JSON and
//! human renderings, and a deny gate for CI.
//!
//! * **facade** — every atomic/lock primitive must flow through
//!   `serve::sync`, the one file that swaps in the loom shim and the
//!   runtime lock-order shadow ([`Rule::FacadeBypass`]);
//! * **ordering** — every `Ordering::…` site carries a registered
//!   `// ordering:` tag, and the registry carries no dead tags
//!   ([`Rule::UnregisteredOrdering`], [`Rule::StaleOrderingTag`],
//!   [`Rule::RegistryDrift`]);
//! * **locks** — the acquisition-order graph built from an
//!   approximate intra-crate call graph must be acyclic, and no lock
//!   may be held across a blocking call ([`Rule::LockOrderCycle`],
//!   [`Rule::LockAcrossBlocking`]);
//! * **hotpath** — registry-tagged hot functions contain no unwaived
//!   panic sites and no per-iteration allocation
//!   ([`Rule::HotPathUnwrap`], [`Rule::HotPathAlloc`]).
//!
//! The analyzer is lexical, not syntactic: a hand-rolled
//! comment/literal stripper and function scanner ([`lexer`]) rather
//! than a full parser. That keeps the crate dependency-free (it can
//! never be broken by the code it audits), makes the passes fast
//! enough to run on every CI job, and is precise enough for the
//! disciplined subset of Rust the serve layer uses — the passes are
//! tested against a mutation corpus in `tests/` that seeds each
//! defect class and expects the exact rule id back.

mod facade;
pub mod lexer;
mod locks;
mod ordering;
pub mod registry;

mod hotpath;

use lexer::Stripped;
use registry::Registry;
use std::fmt;
use std::path::Path;

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but tolerated; never fails the deny gate.
    Warning,
    /// A concurrency-discipline violation; fails `analyze --deny`.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Deny => write!(f, "deny"),
        }
    }
}

/// The rule catalogue. Each rule has a stable kebab-case id used in
/// JSON output, CI logs, and the mutation-corpus tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Rule {
    /// A `std::sync` primitive or `loom` path outside the sync façade.
    FacadeBypass,
    /// An atomic-ordering site without an `// ordering:` tag.
    UnregisteredOrdering,
    /// An `// ordering:` tag that is not in the registry.
    StaleOrderingTag,
    /// A registry entry with no remaining code site (dead tag or
    /// dangling `[hot]` function).
    RegistryDrift,
    /// The lock acquisition-order graph has a cycle.
    LockOrderCycle,
    /// A lock held across a blocking call.
    LockAcrossBlocking,
    /// `.unwrap()`/`.expect()` in a hot function without a waiver.
    HotPathUnwrap,
    /// Per-iteration allocation in a hot function's loop.
    HotPathAlloc,
}

impl Rule {
    /// Stable kebab-case identifier.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::FacadeBypass => "facade-bypass",
            Rule::UnregisteredOrdering => "unregistered-ordering",
            Rule::StaleOrderingTag => "stale-ordering-tag",
            Rule::RegistryDrift => "registry-drift",
            Rule::LockOrderCycle => "lock-order-cycle",
            Rule::LockAcrossBlocking => "lock-across-blocking",
            Rule::HotPathUnwrap => "hot-path-unwrap",
            Rule::HotPathAlloc => "hot-path-alloc",
        }
    }

    /// Severity class of the rule. Every current rule denies: each one
    /// flags a discipline the serve layer's correctness argument
    /// leans on, not a style preference.
    #[must_use]
    pub fn severity(self) -> Severity {
        Severity::Deny
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding: the violated rule plus where and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Violated rule.
    pub rule: Rule,
    /// Severity (derived from the rule).
    pub severity: Severity,
    /// File the finding is in (workspace-relative when produced by
    /// [`analyze_workspace`]).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    fn new(rule: Rule, file: &str, line: usize, message: String) -> Self {
        Self {
            rule,
            severity: rule.severity(),
            file: file.to_string(),
            line,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}:{}: {}",
            self.severity, self.rule, self.file, self.line, self.message
        )
    }
}

/// Result of running every pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// All diagnostics, deny-severity first, then by file and line.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of deny-severity diagnostics.
    #[must_use]
    pub fn num_deny(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Whether the report is entirely empty.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any diagnostic matches `rule`.
    #[must_use]
    pub fn has_rule(&self, rule: Rule) -> bool {
        self.diagnostics.iter().any(|d| d.rule == rule)
    }

    /// Multi-line human-readable rendering with a summary line.
    #[must_use]
    pub fn render_human(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(s, "{d}");
        }
        let _ = writeln!(
            s,
            "analyze: {} finding(s), {} deny",
            self.diagnostics.len(),
            self.num_deny()
        );
        s
    }

    /// JSON rendering (object with `diagnostics`, `deny`, `findings`).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"rule\":{},\"severity\":{},\"file\":{},\"line\":{},\"message\":{}}}",
                json_str(d.rule.id()),
                json_str(&d.severity.to_string()),
                json_str(&d.file),
                d.line,
                json_str(&d.message),
            );
        }
        let _ = write!(
            s,
            "],\"findings\":{},\"deny\":{}}}",
            self.diagnostics.len(),
            self.num_deny()
        );
        s
    }

    fn finish(mut self) -> Self {
        // Deny first, then file/line/rule: deterministic for tests and
        // diffing. Overlapping loop regions can double-report a site;
        // dedup after sorting.
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.file.cmp(&b.file))
                .then_with(|| a.line.cmp(&b.line))
                .then_with(|| a.rule.id().cmp(b.rule.id()))
                .then_with(|| a.message.cmp(&b.message))
        });
        self.diagnostics.dedup();
        self
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Run every pass over in-memory `(path, source)` pairs — the API the
/// mutation-corpus tests drive. `registry_path` names the registry in
/// drift diagnostics.
#[must_use]
pub fn analyze_sources(sources: &[(&str, &str)], reg: &Registry, registry_path: &str) -> Report {
    let files: Vec<(String, Stripped)> = sources
        .iter()
        .map(|(path, text)| ((*path).to_string(), lexer::strip(text)))
        .collect();
    let fns: Vec<Vec<lexer::FnItem>> = files
        .iter()
        .map(|(_, s)| lexer::scan_fns(&s.code))
        .collect();
    let mut out = Vec::new();
    facade::check(&files, &mut out);
    ordering::check(&files, reg, registry_path, &mut out);
    locks::check(&files, &fns, reg, &mut out);
    hotpath::check(&files, &fns, reg, registry_path, &mut out);
    Report { diagnostics: out }.finish()
}

/// The audited source tree and registry, relative to a workspace root.
const AUDITED_SRC: &str = "crates/serve/src";
/// The registry location, relative to a workspace root.
pub const REGISTRY_PATH: &str = "crates/serve/analysis.registry";

/// Run every pass over the workspace at `root` (the directory holding
/// `Cargo.toml`): reads `crates/serve/analysis.registry` and every
/// `.rs` file under `crates/serve/src`.
///
/// # Errors
/// An explanatory message when the registry or source tree cannot be
/// read or the registry is malformed.
pub fn analyze_workspace(root: &Path) -> Result<Report, String> {
    let reg_path = root.join(REGISTRY_PATH);
    let reg_text = std::fs::read_to_string(&reg_path)
        .map_err(|e| format!("cannot read {}: {e}", reg_path.display()))?;
    let reg = Registry::parse(&reg_text)?;

    let src_dir = root.join(AUDITED_SRC);
    let mut paths: Vec<std::path::PathBuf> = Vec::new();
    collect_rs(&src_dir, &mut paths)?;
    paths.sort();
    let mut sources: Vec<(String, String)> = Vec::with_capacity(paths.len());
    for p in paths {
        let text =
            std::fs::read_to_string(&p).map_err(|e| format!("cannot read {}: {e}", p.display()))?;
        let rel = p
            .strip_prefix(root)
            .map_or_else(|_| p.display().to_string(), |r| r.display().to_string());
        sources.push((rel, text));
    }
    let borrowed: Vec<(&str, &str)> = sources
        .iter()
        .map(|(p, t)| (p.as_str(), t.as_str()))
        .collect();
    Ok(analyze_sources(&borrowed, &reg, REGISTRY_PATH))
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_sorts_denies_first_and_renders() {
        let mut r = Report::default();
        r.diagnostics.push(Diagnostic::new(
            Rule::HotPathUnwrap,
            "b.rs",
            9,
            "second".to_string(),
        ));
        r.diagnostics.push(Diagnostic::new(
            Rule::FacadeBypass,
            "a.rs",
            3,
            "first".to_string(),
        ));
        let r = r.finish();
        assert_eq!(r.diagnostics()[0].file, "a.rs");
        assert_eq!(r.num_deny(), 2);
        assert!(!r.is_clean());
        assert!(r.has_rule(Rule::FacadeBypass));
        let human = r.render_human();
        assert!(human.contains("deny[facade-bypass]: a.rs:3: first"));
        assert!(human.contains("2 deny"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut r = Report::default();
        r.diagnostics.push(Diagnostic::new(
            Rule::StaleOrderingTag,
            "a.rs",
            1,
            "quote \" and \\ back".to_string(),
        ));
        let json = r.finish().to_json();
        assert!(json.contains("\"rule\":\"stale-ordering-tag\""));
        assert!(json.contains("quote \\\" and \\\\ back"));
        assert!(json.contains("\"deny\":1"));
    }

    #[test]
    fn every_rule_id_is_kebab_and_unique() {
        let all = [
            Rule::FacadeBypass,
            Rule::UnregisteredOrdering,
            Rule::StaleOrderingTag,
            Rule::RegistryDrift,
            Rule::LockOrderCycle,
            Rule::LockAcrossBlocking,
            Rule::HotPathUnwrap,
            Rule::HotPathAlloc,
        ];
        let mut ids: Vec<&str> = all.iter().map(|r| r.id()).collect();
        for id in &ids {
            assert!(
                id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{id}"
            );
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
    }
}
