//! Lock discipline (`lock-order-cycle`, `lock-across-blocking`).
//!
//! A conservative, purely lexical model of the crate's lock behaviour:
//!
//! * a **lock site** is a `.lock()` call; its identity is the
//!   *receiver field name* (`self.buckets.lock()` → `buckets`), which
//!   matches how the runtime shadow in `serve::sync` names mutexes —
//!   every instance of one field is one lock class;
//! * a **held region** over-approximates guard lifetime: a `let`-bound
//!   guard is held to the end of its enclosing block, a temporary
//!   guard to the end of its statement;
//! * the **call graph** is name-matched within the audited tree, and
//!   `fn_locks`/`fn_blocks` are closed over it by fixpoint, so a lock
//!   acquired (or a blocking call made) three calls deep still counts.
//!
//! While lock `A` is held, acquiring lock `B` (directly or
//! transitively) adds the edge `A → B` to the acquisition-order
//! graph; a cycle in that graph is a deadlock-in-waiting
//! (`lock-order-cycle`) even if no execution has hit it yet. A
//! blocking call (the registry's `[blocking]` names) inside a held
//! region is `lock-across-blocking`: the dispatcher sleeping or a
//! channel `recv` while holding a serve mutex stalls every submitter.
//!
//! The façade file itself (`sync.rs`) is excluded: it *implements*
//! the lock primitive, and is audited by its own runtime shadow and
//! loom models instead.

use crate::lexer::{self, FnItem, Stripped};
use crate::registry::Registry;
use crate::{Diagnostic, Rule};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// One `.lock()` acquisition and its held region.
#[derive(Debug)]
struct LockSite {
    /// Lock class: the receiver field name.
    lock: String,
    /// Byte offset of the `lock` identifier.
    at: usize,
    /// Over-approximated held region.
    region: Range<usize>,
}

/// Per-function facts for the fixpoint.
#[derive(Debug)]
struct FnFacts {
    file_idx: usize,
    name: String,
    sites: Vec<LockSite>,
    /// `(callee name, call offset)` pairs in the body.
    calls: Vec<(String, usize)>,
    /// Locks acquired directly or transitively.
    locks: BTreeSet<String>,
    /// Whether the function blocks, directly or transitively.
    blocks: bool,
}

/// Run the pass over `(path, stripped)` pairs with the per-file
/// function index `fns` (same order).
pub fn check(
    files: &[(String, Stripped)],
    fns: &[Vec<FnItem>],
    registry: &Registry,
    out: &mut Vec<Diagnostic>,
) {
    let mut facts: Vec<FnFacts> = Vec::new();
    for (file_idx, (path, s)) in files.iter().enumerate() {
        if path.ends_with("sync.rs") {
            continue;
        }
        let depth = brace_depths(&s.code);
        for f in &fns[file_idx] {
            facts.push(analyze_fn(s, f, file_idx, &depth, registry));
        }
    }
    // Name → indices of crate functions with that name. `lock` itself
    // is the acquisition primitive, never a callee.
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, f) in facts.iter().enumerate() {
        if f.name != "lock" {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
    }
    fixpoint(&mut facts, &by_name);

    // Edges of the acquisition-order graph, with one witness site per
    // edge: lock A held → lock B acquired at (file, line).
    let mut edges: BTreeMap<String, BTreeMap<String, (usize, usize)>> = BTreeMap::new();
    for f in &facts {
        let (path_idx, s) = (f.file_idx, &files[f.file_idx].1);
        for site in &f.sites {
            // Direct nested acquisition.
            for other in &f.sites {
                if other.at != site.at && site.region.contains(&other.at) && other.lock != site.lock
                {
                    edges
                        .entry(site.lock.clone())
                        .or_default()
                        .entry(other.lock.clone())
                        .or_insert((path_idx, s.line_of(other.at)));
                }
            }
            for (callee, call_at) in &f.calls {
                if !site.region.contains(call_at) {
                    continue;
                }
                // Transitive acquisition through the call graph.
                if let Some(callee_idxs) = by_name.get(callee.as_str()) {
                    for &ci in callee_idxs {
                        for l in &facts[ci].locks {
                            if *l != site.lock {
                                edges
                                    .entry(site.lock.clone())
                                    .or_default()
                                    .entry(l.clone())
                                    .or_insert((path_idx, s.line_of(*call_at)));
                            }
                        }
                    }
                }
                // Blocking while held, direct or transitive.
                let blocks_directly = registry.blocking.contains(callee.as_str());
                let blocks_transitively = by_name
                    .get(callee.as_str())
                    .is_some_and(|idxs| idxs.iter().any(|&ci| facts[ci].blocks));
                if blocks_directly || blocks_transitively {
                    out.push(Diagnostic::new(
                        Rule::LockAcrossBlocking,
                        &files[path_idx].0,
                        s.line_of(*call_at),
                        format!(
                            "lock `{}` is held across blocking call `{callee}` \
                             in `{}`; drop the guard before blocking",
                            site.lock, f.name
                        ),
                    ));
                }
            }
        }
    }
    report_cycles(files, &edges, out);
}

/// Extract lock sites and calls from one function body.
fn analyze_fn(
    s: &Stripped,
    f: &FnItem,
    file_idx: usize,
    depth: &[u32],
    registry: &Registry,
) -> FnFacts {
    let code = &s.code;
    let b = code.as_bytes();
    let mut sites = Vec::new();
    let mut calls = Vec::new();
    let mut locks = BTreeSet::new();
    let mut blocks = false;
    for (at, ident) in lexer::idents(code, f.body.clone()) {
        let is_call = matches!(
            lexer::next_nonspace(code, at + ident.len(), code.len()),
            Some((_, b'(' | b'!'))
        );
        if !is_call {
            continue;
        }
        let is_method = matches!(lexer::prev_nonspace(code, at), Some((_, b'.')));
        if ident == "lock" && is_method && b.get(at + ident.len()) == Some(&b'(') {
            if let Some(lock) = receiver_field(code, at) {
                let region = held_region(code, at, &f.body, depth);
                locks.insert(lock.clone());
                sites.push(LockSite { lock, at, region });
            }
        } else if !is_keyword(ident) {
            if registry.blocking.contains(ident) {
                blocks = true;
            }
            calls.push((ident.to_string(), at));
        }
    }
    FnFacts {
        file_idx,
        name: f.name.clone(),
        sites,
        calls,
        locks,
        blocks,
    }
}

/// Close `locks` and `blocks` over the name-matched call graph.
fn fixpoint(facts: &mut [FnFacts], by_name: &BTreeMap<String, Vec<usize>>) {
    // Indices are stable; iterate until no set grows. Bounded by the
    // total number of (fn, lock) pairs, tiny in practice.
    loop {
        let mut changed = false;
        for i in 0..facts.len() {
            let mut add: BTreeSet<String> = BTreeSet::new();
            let mut blocks = facts[i].blocks;
            for (callee, _) in &facts[i].calls {
                if let Some(idxs) = by_name.get(callee.as_str()) {
                    for &ci in idxs {
                        add.extend(facts[ci].locks.iter().cloned());
                        blocks |= facts[ci].blocks;
                    }
                }
            }
            let before = facts[i].locks.len();
            facts[i].locks.extend(add);
            if facts[i].locks.len() != before || blocks != facts[i].blocks {
                facts[i].blocks = blocks;
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

/// The receiver field name of a `.lock()` at `at`: the identifier
/// immediately left of the dot (`self.buckets.lock()` → `buckets`,
/// `slot.value.lock()` → `value`). `None` when the receiver is an
/// expression the lexical model cannot name.
fn receiver_field(code: &str, lock_at: usize) -> Option<String> {
    let b = code.as_bytes();
    let (dot, c) = lexer::prev_nonspace(code, lock_at)?;
    if c != b'.' {
        return None;
    }
    let (end, c) = lexer::prev_nonspace(code, dot)?;
    if !lexer::is_ident_byte(c) {
        return None;
    }
    let mut start = end;
    while start > 0 && lexer::is_ident_byte(b[start - 1]) {
        start -= 1;
    }
    let name = &code[start..=end];
    (name != "self").then(|| name.to_string())
}

/// Over-approximate how long the guard from the `.lock()` at `at`
/// lives: to the end of the enclosing block for a `let`-bound guard,
/// to the end of the statement for a temporary.
fn held_region(code: &str, at: usize, body: &Range<usize>, depth: &[u32]) -> Range<usize> {
    let b = code.as_bytes();
    // Statement start: after the nearest `;`, `{` or `}` before `at`.
    let mut stmt = body.start;
    let mut i = at;
    while i > body.start {
        i -= 1;
        if matches!(b[i], b';' | b'{' | b'}') {
            stmt = i + 1;
            break;
        }
    }
    let is_let = lexer::idents(code, stmt..at).first().map(|t| t.1) == Some("let");
    if is_let {
        // Guard lives to the end of the enclosing block: walk right
        // for the first `}` shallower than the statement's depth.
        let d = depth[at];
        for j in at..body.end {
            if b[j] == b'}' && depth[j] < d {
                return at..j;
            }
        }
        at..body.end
    } else {
        // Temporary: dropped at the end of the statement — the next
        // `;` at the acquisition's brace depth (skipping closures).
        let d = depth[at];
        for j in at..body.end {
            if b[j] == b';' && depth[j] == d {
                return at..j + 1;
            }
        }
        at..body.end
    }
}

/// Brace depth at each byte (the depth of the region the byte is in;
/// an opening `{` already counts itself, its `}` does not).
fn brace_depths(code: &str) -> Vec<u32> {
    let mut depth = 0u32;
    code.bytes()
        .map(|c| {
            match c {
                b'{' => depth += 1,
                b'}' => depth = depth.saturating_sub(1),
                _ => {}
            }
            depth
        })
        .collect()
}

fn is_keyword(ident: &str) -> bool {
    matches!(
        ident,
        "if" | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "in"
            | "as"
            | "move"
            | "else"
            | "let"
            | "mut"
            | "ref"
            | "fn"
            | "impl"
            | "pub"
            | "use"
            | "mod"
            | "where"
            | "dyn"
    )
}

/// DFS over the order graph; every cycle is reported once with its
/// edge witnesses.
fn report_cycles(
    files: &[(String, Stripped)],
    edges: &BTreeMap<String, BTreeMap<String, (usize, usize)>>,
    out: &mut Vec<Diagnostic>,
) {
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in edges.keys() {
        let mut stack: Vec<&str> = vec![start];
        dfs(start, edges, &mut stack, &mut seen_cycles, files, out);
    }
}

fn dfs<'a>(
    node: &str,
    edges: &'a BTreeMap<String, BTreeMap<String, (usize, usize)>>,
    stack: &mut Vec<&'a str>,
    seen: &mut BTreeSet<Vec<String>>,
    files: &[(String, Stripped)],
    out: &mut Vec<Diagnostic>,
) {
    // Bounded: each path visits a lock at most once, and the graph is
    // a handful of named locks.
    let Some(next) = edges.get(node) else { return };
    for (to, &(file_idx, line)) in next {
        if let Some(pos) = stack.iter().position(|n| n == to) {
            // Normalise the cycle (rotate to the smallest lock name)
            // so each is reported exactly once.
            let cycle: Vec<String> = stack[pos..].iter().map(|s| (*s).to_string()).collect();
            let rot = cycle
                .iter()
                .enumerate()
                .min_by_key(|(_, n)| n.as_str())
                .map_or(0, |(i, _)| i);
            let mut norm = cycle[rot..].to_vec();
            norm.extend_from_slice(&cycle[..rot]);
            if seen.insert(norm.clone()) {
                let chain = {
                    let mut c = norm.clone();
                    c.push(norm[0].clone());
                    c.join(" -> ")
                };
                out.push(Diagnostic::new(
                    Rule::LockOrderCycle,
                    &files[file_idx].0,
                    line,
                    format!(
                        "lock acquisition order forms a cycle ({chain}); two \
                         threads taking these locks in opposite order deadlock"
                    ),
                ));
            }
            continue;
        }
        stack.push(to);
        dfs(to, edges, stack, seen, files, out);
        stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{scan_fns, strip};

    fn run(src: &str) -> Vec<Diagnostic> {
        run_reg(src, "[blocking]\nsleep\nrecv\njoin\nwait\npark\n")
    }

    fn run_reg(src: &str, reg: &str) -> Vec<Diagnostic> {
        let s = strip(src);
        let fns = scan_fns(&s.code);
        let registry = Registry::parse(reg).unwrap();
        let mut out = Vec::new();
        check(
            &[("crates/x/src/a.rs".to_string(), s)],
            &[fns],
            &registry,
            &mut out,
        );
        out
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "\
fn ab(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n    drop((a, b));\n}\n\
fn ab2(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n    drop((a, b));\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn inverted_order_is_a_cycle() {
        let src = "\
fn ab(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n    drop((a, b));\n}\n\
fn ba(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n    drop((a, b));\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::LockOrderCycle);
        assert!(d[0].message.contains("alpha -> beta -> alpha"));
    }

    #[test]
    fn transitive_cycle_through_calls() {
        let src = "\
fn outer(&self) {\n    let a = self.alpha.lock();\n    self.helper();\n    drop(a);\n}\n\
fn helper(&self) {\n    let b = self.beta.lock();\n    drop(b);\n}\n\
fn other(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n    drop((a, b));\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::LockOrderCycle);
    }

    #[test]
    fn blocking_while_held_flagged() {
        let src = "\
fn bad(&self) {\n    let g = self.state.lock();\n    std::thread::sleep(d);\n    drop(g);\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::LockAcrossBlocking);
        assert!(d[0].message.contains("state"));
        assert!(d[0].message.contains("sleep"));
    }

    #[test]
    fn blocking_after_temporary_guard_is_fine() {
        let src = "\
fn ok(&self) {\n    *self.state.lock() = 3;\n    std::thread::sleep(d);\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn transitive_blocking_through_helper() {
        let src = "\
fn bad(&self) {\n    let g = self.state.lock();\n    self.pause();\n    drop(g);\n}\n\
fn pause(&self) {\n    std::thread::sleep(d);\n}\n";
        let d = run(src);
        assert!(
            d.iter().any(|d| d.rule == Rule::LockAcrossBlocking),
            "{d:?}"
        );
    }

    #[test]
    fn same_field_pool_has_no_self_edge() {
        let src = "\
fn pool(&self, other: &Slot) {\n    let a = self.value.lock();\n    let b = other.value.lock();\n    drop((a, b));\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn guard_scoped_to_inner_block_releases() {
        let src = "\
fn ok(&self) {\n    {\n        let g = self.state.lock();\n        drop(g);\n    }\n    std::thread::sleep(d);\n}\n";
        assert!(run(src).is_empty());
    }
}
