//! # ferrotcam-spice
//!
//! A compact, dependency-light analog circuit simulator built as the
//! substrate for the ferroTCAM reproduction of the DAC 2023 paper
//! *"Compact and High-Performance TCAM Based on Scaled Double-Gate
//! FeFETs"*. It provides:
//!
//! * modified nodal analysis (MNA) with sparse LU (Gilbert–Peierls) and a
//!   dense reference solver,
//! * nonlinear DC operating point (damped Newton–Raphson with gmin and
//!   source stepping),
//! * transient analysis (backward Euler / trapezoidal, charge
//!   formulation, adaptive stepping with source breakpoints),
//! * linear elements (R, C, V/I sources with DC/pulse/PWL/sine waveforms,
//!   VCCS) and a trait for user nonlinear devices,
//! * waveform probing: threshold crossings, integrals, per-source energy.
//!
//! ## Quick example: RC low-pass step response
//!
//! ```
//! use ferrotcam_spice::prelude::*;
//!
//! # fn main() -> ferrotcam_spice::Result<()> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.vsource("V1", vin, Circuit::gnd(),
//!     Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0));
//! ckt.resistor("R1", vin, out, 1e3)?;
//! ckt.capacitor("C1", out, Circuit::gnd(), 1e-12)?;
//!
//! let trace = transient(&mut ckt, &TranOpts::to_time(10e-9))?;
//! let v_end = trace.value_at("v(out)", 10e-9)?;
//! assert!(v_end > 0.99);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod erc;
pub mod error;
pub mod matrix;
pub mod netlist;
pub mod nonlinear;
pub mod parallel;
pub mod probe;
pub mod trace;
pub mod units;
pub mod waveform;

pub use engine::ac::{ac_analysis, logspace, AcResult, Phasor};
pub use engine::dc::{operating_point, DcOpts, Solution};
pub use engine::sweep::{dc_sweep, dc_sweep_par, linspace, transfer_curve, SweepResult};
pub use engine::transient::{transient, Integrator, TranOpts};
pub use engine::{NewtonOpts, SimStats};
pub use erc::{ErcDiagnostic, ErcMode, ErcParam, ErcReport, ParamKind, Rule, Severity};
pub use error::{ConvergenceForensics, Error, Result};
pub use matrix::{CachedSolver, Ordering, SolverStats};
pub use netlist::{Circuit, Element, NodeId};
pub use nonlinear::{BypassPolicy, DeviceStamps, EvalCtx, NonlinearDevice};
pub use parallel::{default_jobs, par_map};
pub use probe::{Edge, Trace};
pub use trace::{Histogram, TraceLevel, TraceSummary};
pub use waveform::Waveform;

/// Glob-import convenience: `use ferrotcam_spice::prelude::*`.
pub mod prelude {
    pub use crate::engine::ac::{ac_analysis, logspace, AcResult, Phasor};
    pub use crate::engine::dc::{operating_point, DcOpts, Solution};
    pub use crate::engine::sweep::{dc_sweep, dc_sweep_par, linspace, transfer_curve, SweepResult};
    pub use crate::engine::transient::{transient, Integrator, TranOpts};
    pub use crate::engine::{NewtonOpts, SimStats};
    pub use crate::erc::{ErcMode, ErcReport, Rule, Severity};
    pub use crate::error::{Error, Result};
    pub use crate::matrix::Ordering;
    pub use crate::netlist::{Circuit, NodeId};
    pub use crate::nonlinear::{BypassPolicy, DeviceStamps, EvalCtx, NonlinearDevice};
    pub use crate::parallel::{default_jobs, par_map};
    pub use crate::probe::{Edge, Trace};
    pub use crate::waveform::Waveform;
}
