//! DC operating-point analysis with gmin and source stepping fallbacks.

use super::{NewtonOpts, NewtonWorkspace, SimStats, System};
use crate::erc::{self, ErcMode};
use crate::error::{Error, Result};
use crate::netlist::{Circuit, NodeId};

/// Options for [`operating_point`].
#[derive(Debug, Clone, Default)]
pub struct DcOpts {
    /// Newton parameters.
    pub newton: NewtonOpts,
    /// Evaluate sources at this time (default 0).
    pub time: f64,
    /// ERC pre-flight behaviour; `None` resolves from the
    /// `FERROTCAM_ERC` environment variable (default: warn).
    pub erc: Option<ErcMode>,
}

/// A solved operating point.
#[derive(Debug, Clone)]
pub struct Solution {
    x: Vec<f64>,
    num_nodes: usize,
    stats: SimStats,
}

impl Solution {
    pub(crate) fn new(x: Vec<f64>, num_nodes: usize) -> Self {
        Self {
            x,
            num_nodes,
            stats: SimStats::default(),
        }
    }

    pub(crate) fn with_stats(mut self, stats: SimStats) -> Self {
        self.stats = stats;
        self
    }

    /// Solver work counters for this solve (iterations, factorisations).
    #[must_use]
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Node voltage (0 for ground).
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> f64 {
        let i = node.index();
        if i == 0 {
            0.0
        } else {
            self.x[i - 1]
        }
    }

    /// Branch current of voltage source `branch` (the value returned by
    /// [`Circuit::vsource`]), flowing `p → n` through the source.
    #[must_use]
    pub fn branch_current(&self, branch: usize) -> f64 {
        self.x[(self.num_nodes - 1) + branch]
    }

    /// The raw solution vector (node voltages then branch currents).
    #[must_use]
    pub fn as_vec(&self) -> &[f64] {
        &self.x
    }
}

/// Gmin stepping ladder: progressively relax the shunt, reconverging from
/// the previous rung.
const GMIN_LADDER: [f64; 6] = [1e-3, 1e-5, 1e-7, 1e-9, 1e-11, 1e-12];

/// Source stepping ramp.
const SRC_STEPS: usize = 10;

/// Compute the DC operating point of `ckt`.
///
/// Capacitors are open; each independent source is evaluated at
/// `opts.time`. Tries plain Newton first, then gmin stepping, then source
/// stepping.
///
/// # Errors
/// [`Error::NonConvergence`] if every strategy fails,
/// [`Error::SingularMatrix`] for a structurally defective circuit, or
/// the typed ERC/validation errors of [`erc::preflight`].
pub fn operating_point(ckt: &Circuit, opts: &DcOpts) -> Result<Solution> {
    let _span = crate::trace::span("dc");
    erc::preflight(ckt, opts.erc)?;
    let sys = System::new(ckt);
    // One workspace for the whole ladder: the gmin/source-stepping rungs
    // all share the matrix pattern, so only the first solve pays for
    // symbolic analysis.
    let mut ws = NewtonWorkspace::with_ordering(&sys, opts.newton.ordering);
    let x0 = vec![0.0; sys.nvars];

    // 1. Plain Newton from zero.
    match sys.newton(
        &x0,
        opts.time,
        1.0,
        &opts.newton,
        opts.newton.gmin,
        None,
        &mut ws,
        None,
        "dc",
    ) {
        Ok((x, _)) => return Ok(Solution::new(x, sys.num_nodes).with_stats(ws.stats())),
        Err(Error::SingularMatrix { .. }) => {
            // Structural problem — stepping will not fix a floating
            // subcircuit; retry once with a heavy shunt before giving up.
        }
        Err(_) => {}
    }

    // 2. Gmin stepping.
    crate::trace::note("dc.fallback", "plain newton failed; gmin stepping");
    let mut x = x0.clone();
    let mut ok = true;
    for &gmin in &GMIN_LADDER {
        let gmin = gmin.max(opts.newton.gmin);
        match sys.newton(
            &x,
            opts.time,
            1.0,
            &opts.newton,
            gmin,
            None,
            &mut ws,
            None,
            "dc",
        ) {
            Ok((xn, _)) => x = xn,
            Err(_) => {
                ok = false;
                break;
            }
        }
    }
    if ok {
        return Ok(Solution::new(x, sys.num_nodes).with_stats(ws.stats()));
    }

    // 3. Source stepping.
    crate::trace::note("dc.fallback", "gmin stepping failed; source stepping");
    let mut x = x0;
    for step in 1..=SRC_STEPS {
        let scale = step as f64 / SRC_STEPS as f64;
        let (xn, _) = sys.newton(
            &x,
            opts.time,
            scale,
            &opts.newton,
            opts.newton.gmin.max(1e-9),
            None,
            &mut ws,
            None,
            "dc",
        )?;
        x = xn;
    }
    // Final polish at full sources and user gmin.
    let (x, _) = sys.newton(
        &x,
        opts.time,
        1.0,
        &opts.newton,
        opts.newton.gmin,
        None,
        &mut ws,
        None,
        "dc",
    )?;
    Ok(Solution::new(x, sys.num_nodes).with_stats(ws.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    #[test]
    fn ladder_network() {
        // Three-rung R ladder driven by 3 V: analytically solvable.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let c = ckt.node("c");
        ckt.vsource("V1", a, Circuit::gnd(), Waveform::dc(3.0));
        ckt.resistor("R1", a, b, 1e3).unwrap();
        ckt.resistor("R2", b, c, 1e3).unwrap();
        ckt.resistor("R3", c, Circuit::gnd(), 1e3).unwrap();
        let sol = operating_point(&ckt, &DcOpts::default()).unwrap();
        assert!((sol.voltage(a) - 3.0).abs() < 1e-6);
        assert!((sol.voltage(b) - 2.0).abs() < 1e-4);
        assert!((sol.voltage(c) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn capacitor_is_open_in_dc() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::gnd(), Waveform::dc(1.0));
        ckt.resistor("R1", a, b, 1e3).unwrap();
        ckt.capacitor("C1", b, Circuit::gnd(), 1e-12).unwrap();
        let sol = operating_point(&ckt, &DcOpts::default()).unwrap();
        // No DC path to ground through C: b floats to a's potential
        // (through R1, held by gmin at ~1 V).
        assert!((sol.voltage(b) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn source_time_is_respected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(
            "V1",
            a,
            Circuit::gnd(),
            Waveform::pwl(vec![(0.0, 0.0), (1e-9, 2.0)]),
        );
        ckt.resistor("R1", a, Circuit::gnd(), 1e3).unwrap();
        let sol = operating_point(
            &ckt,
            &DcOpts {
                time: 1e-9,
                ..DcOpts::default()
            },
        )
        .unwrap();
        assert!((sol.voltage(a) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn isource_into_resistor() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        // 1 mA pulled from ground into a (p=gnd flows to n=a ⇒ enters a).
        ckt.isource("I1", Circuit::gnd(), a, Waveform::dc(1e-3));
        ckt.resistor("R1", a, Circuit::gnd(), 1e3).unwrap();
        let sol = operating_point(&ckt, &DcOpts::default()).unwrap();
        assert!(
            (sol.voltage(a) - 1.0).abs() < 1e-4,
            "v = {}",
            sol.voltage(a)
        );
    }
}
