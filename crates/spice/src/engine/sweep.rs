//! DC sweep analysis: step one source through a list of values, solving
//! the operating point at each step with warm-started Newton.
//!
//! This is the workhorse behind transfer curves — Id–Vg of a device in
//! its circuit context, or the SL_bar divider characteristics of
//! Fig. 5(b)/(c).

use super::dc::{DcOpts, Solution};
use super::{NewtonOpts, NewtonWorkspace, SimStats, System};
use crate::erc;
use crate::error::{Error, Result};
use crate::netlist::{Circuit, Element, NodeId};

/// Result of a DC sweep: the swept values and one solution per point.
#[derive(Debug, Clone)]
pub struct SweepResult {
    values: Vec<f64>,
    solutions: Vec<Solution>,
    stats: SimStats,
}

impl SweepResult {
    /// The swept source values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Solutions, parallel to [`SweepResult::values`].
    #[must_use]
    pub fn solutions(&self) -> &[Solution] {
        &self.solutions
    }

    /// Number of sweep points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the sweep is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Voltage of `node` as a function of the swept value:
    /// `(value, v(node))` pairs.
    #[must_use]
    pub fn voltage_curve(&self, node: NodeId) -> Vec<(f64, f64)> {
        self.values
            .iter()
            .zip(&self.solutions)
            .map(|(&v, s)| (v, s.voltage(node)))
            .collect()
    }

    /// Branch current of voltage source `branch` vs the swept value.
    #[must_use]
    pub fn current_curve(&self, branch: usize) -> Vec<(f64, f64)> {
        self.values
            .iter()
            .zip(&self.solutions)
            .map(|(&v, s)| (v, s.branch_current(branch)))
            .collect()
    }

    /// Solver work counters accumulated over every sweep point.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        self.stats
    }
}

/// Sweep the voltage source named `source` through `values`, solving the
/// DC operating point at each step (capacitors open). Newton warm-starts
/// from the previous point, which is what lets strongly nonlinear curves
/// trace through without gmin stepping at every point.
///
/// # Errors
/// * [`Error::UnknownSignal`] when no voltage source has that name;
/// * DC convergence errors from any sweep point.
pub fn dc_sweep(
    ckt: &Circuit,
    source: &str,
    values: &[f64],
    opts: &NewtonOpts,
) -> Result<SweepResult> {
    let _span = crate::trace::span("sweep");
    erc::preflight(ckt, None)?;
    // Locate the source's branch so we can override its value.
    let branch = ckt
        .elements()
        .iter()
        .find_map(|e| match e {
            Element::VSource { name, branch, .. } if name == source => Some(*branch),
            _ => None,
        })
        .ok_or_else(|| Error::UnknownSignal {
            name: source.to_string(),
        })?;

    let sys = System::new(ckt);
    // One workspace for the whole sweep: every point shares the matrix
    // pattern, so points 2..N only refactor numerically.
    let mut ws = NewtonWorkspace::with_ordering(&sys, opts.ordering);

    let mut solutions = Vec::with_capacity(values.len());
    let mut x = vec![0.0; sys.nvars];
    let mut warm = false;
    for &v in values {
        let ov = SourceOverride { branch, value: v };
        let solved = solve_newton_override(&sys, ckt, &x, opts, &ov, &mut ws);
        let xs = match solved {
            Ok(xs) => xs,
            Err(_) if warm => {
                // A hard corner: retry cold from zero.
                let x0 = vec![0.0; sys.nvars];
                solve_newton_override(&sys, ckt, &x0, opts, &ov, &mut ws)?
            }
            Err(e) => return Err(e),
        };
        x = xs.clone();
        warm = true;
        solutions.push(Solution::new(xs, sys.num_nodes));
    }
    Ok(SweepResult {
        values: values.to_vec(),
        solutions,
        stats: ws.stats(),
    })
}

/// [`dc_sweep`] fanned out over a worker pool: the value list is split
/// into `jobs` contiguous chunks, each swept independently (cold-started
/// at its first point, warm-started within the chunk), and the solutions
/// are reassembled in input order.
///
/// Point ordering and result layout are identical to the serial sweep.
/// Individual solutions can differ from the serial run only through the
/// warm-start trajectory at chunk boundaries — both paths converge to
/// the same operating points within Newton tolerance. `jobs <= 1`
/// delegates to the serial [`dc_sweep`] outright.
///
/// # Errors
/// Same conditions as [`dc_sweep`]; the first failing chunk's error is
/// returned.
pub fn dc_sweep_par(
    ckt: &Circuit,
    source: &str,
    values: &[f64],
    opts: &NewtonOpts,
    jobs: usize,
) -> Result<SweepResult> {
    let jobs = jobs.max(1).min(values.len().max(1));
    if jobs <= 1 {
        return dc_sweep(ckt, source, values, opts);
    }
    let chunk_len = values.len().div_ceil(jobs);
    let chunks: Vec<&[f64]> = values.chunks(chunk_len).collect();
    let results =
        crate::parallel::par_map(&chunks, jobs, |_, chunk| dc_sweep(ckt, source, chunk, opts));
    let mut out = SweepResult {
        values: values.to_vec(),
        solutions: Vec::with_capacity(values.len()),
        stats: SimStats::default(),
    };
    for r in results {
        let r = r?;
        out.stats.merge(r.stats);
        out.solutions.extend(r.solutions);
    }
    Ok(out)
}

struct SourceOverride {
    branch: usize,
    value: f64,
}

/// One Newton solve with the overridden source value: delegates to
/// [`System::newton`] with an RHS patch on the source's branch row
/// (`override − nominal`, replacing rather than adding to the stamped
/// t = 0 value). The shared Newton loop brings the bypass cache and
/// incremental-assembly fast paths to sweeps for free.
fn solve_newton_override(
    sys: &System<'_>,
    ckt: &Circuit,
    x0: &[f64],
    opts: &NewtonOpts,
    ov: &SourceOverride,
    ws: &mut NewtonWorkspace,
) -> Result<Vec<f64>> {
    let bv = sys.branch_var(ov.branch);
    // Find the nominal (t = 0) value of the overridden source so we can
    // replace it rather than add to it.
    let nominal = ckt
        .elements()
        .iter()
        .find_map(|e| match e {
            Element::VSource { branch, wave, .. } if *branch == ov.branch => Some(wave.value(0.0)),
            _ => None,
        })
        .unwrap_or(0.0);
    let patch = Some((bv, ov.value - nominal));
    sys.newton(x0, 0.0, 1.0, opts, opts.gmin, None, ws, patch, "dc-sweep")
        .map(|(x, _iters)| x)
}

/// Linearly spaced sweep values, inclusive of both ends.
#[must_use]
pub fn linspace(start: f64, stop: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2, "need at least two points");
    (0..points)
        .map(|i| start + (stop - start) * i as f64 / (points - 1) as f64)
        .collect()
}

/// Convenience: sweep and return `(value, v(node))` directly.
///
/// # Errors
/// Propagates [`dc_sweep`] errors.
pub fn transfer_curve(
    ckt: &Circuit,
    source: &str,
    values: &[f64],
    node: NodeId,
) -> Result<Vec<(f64, f64)>> {
    Ok(dc_sweep(ckt, source, values, &NewtonOpts::default())?.voltage_curve(node))
}

/// Re-export for the sweep's `DcOpts` compatibility (sweeps use raw
/// Newton options; the gmin/source stepping ladders live in
/// [`super::dc::operating_point`]).
pub type SweepOpts = DcOpts;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform as W;

    #[test]
    fn linspace_endpoints() {
        let v = linspace(-1.0, 1.0, 5);
        assert_eq!(v, vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
    }

    #[test]
    fn divider_transfer_is_linear() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("VIN", a, Circuit::gnd(), W::dc(0.0));
        ckt.resistor("R1", a, b, 2e3).unwrap();
        ckt.resistor("R2", b, Circuit::gnd(), 1e3).unwrap();
        let vals = linspace(0.0, 3.0, 7);
        let curve = transfer_curve(&ckt, "VIN", &vals, b).unwrap();
        for (vin, vout) in curve {
            assert!((vout - vin / 3.0).abs() < 1e-4, "{vin} -> {vout}");
        }
    }

    #[test]
    fn unknown_source_is_an_error() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R1", a, Circuit::gnd(), 1e3).unwrap();
        let r = dc_sweep(&ckt, "VX", &[0.0], &NewtonOpts::default());
        assert!(matches!(r, Err(Error::UnknownSignal { .. })));
    }

    #[test]
    fn current_curve_follows_ohm() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let br = ckt.vsource("VIN", a, Circuit::gnd(), W::dc(0.0));
        ckt.resistor("R1", a, Circuit::gnd(), 1e3).unwrap();
        let res = dc_sweep(&ckt, "VIN", &linspace(0.0, 1.0, 3), &NewtonOpts::default()).unwrap();
        for (v, i) in res.current_curve(br) {
            // Source current flows p→n internally: −v/R.
            assert!((i + v / 1e3).abs() < 1e-7, "{v} -> {i}");
        }
    }

    #[test]
    fn parallel_sweep_matches_serial_layout() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("VIN", a, Circuit::gnd(), W::dc(0.0));
        ckt.resistor("R1", a, b, 2e3).unwrap();
        ckt.resistor("R2", b, Circuit::gnd(), 1e3).unwrap();
        let vals = linspace(0.0, 3.0, 13);
        let serial = dc_sweep(&ckt, "VIN", &vals, &NewtonOpts::default()).unwrap();
        for jobs in [1, 2, 4, 32] {
            let par = dc_sweep_par(&ckt, "VIN", &vals, &NewtonOpts::default(), jobs).unwrap();
            assert_eq!(par.values(), serial.values());
            assert_eq!(par.len(), serial.len());
            for (s, p) in serial.solutions().iter().zip(par.solutions()) {
                assert!(
                    (s.voltage(b) - p.voltage(b)).abs() < 1e-9,
                    "jobs={jobs}: {} vs {}",
                    s.voltage(b),
                    p.voltage(b)
                );
            }
            assert!(par.stats().newton_iters > 0);
        }
    }

    #[test]
    fn sweep_reuses_factorisation_across_points() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("VIN", a, Circuit::gnd(), W::dc(0.0));
        ckt.resistor("R1", a, Circuit::gnd(), 1e3).unwrap();
        let res = dc_sweep(&ckt, "VIN", &linspace(0.0, 1.0, 9), &NewtonOpts::default()).unwrap();
        let s = res.stats();
        assert_eq!(s.full_factors, 1, "only the first solve should factor");
        assert!(s.refactors >= 8, "later points must refactor: {s:?}");
        assert_eq!(s.pattern_rebuilds, 1);
    }

    #[test]
    fn waveform_sources_sweep_from_their_t0_value() {
        // The override replaces the nominal (t=0) value, not adds.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("VIN", a, Circuit::gnd(), W::dc(5.0));
        ckt.resistor("R1", a, Circuit::gnd(), 1e3).unwrap();
        let res = dc_sweep(&ckt, "VIN", &[1.0], &NewtonOpts::default()).unwrap();
        assert!((res.solutions()[0].voltage(a) - 1.0).abs() < 1e-6);
    }
}
