//! Transient analysis with adaptive stepping and source breakpoints.

use super::dc::{operating_point, DcOpts};
use super::{NewtonOpts, NewtonWorkspace, SimStats, System};
use crate::erc::{self, ErcMode};
use crate::error::{Error, Result};
use crate::netlist::{Circuit, Element};
use crate::nonlinear::EvalCtx;
use crate::probe::Trace;

/// Time-integration method for charge storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// First-order, L-stable. The robust default for strongly nonlinear
    /// switching circuits.
    #[default]
    BackwardEuler,
    /// Second-order, A-stable; more accurate on smooth waveforms but can
    /// ring on hard discontinuities.
    Trapezoidal,
}

/// Options for [`transient`].
#[derive(Debug, Clone)]
pub struct TranOpts {
    /// End time (s).
    pub t_stop: f64,
    /// Initial step (s).
    pub dt_init: f64,
    /// Largest allowed step (s).
    pub dt_max: f64,
    /// Smallest allowed step before declaring failure (s).
    pub dt_min: f64,
    /// Integration method.
    pub integrator: Integrator,
    /// Newton parameters.
    pub newton: NewtonOpts,
    /// Skip the initial DC operating point and start from the node
    /// initial conditions declared on the circuit (SPICE `uic`).
    pub uic: bool,
    /// Device internal states to record, as `(device_name, state_key)`;
    /// recorded as signal `"<device>.<key>"`.
    pub record_states: Vec<(String, String)>,
    /// ERC pre-flight behaviour; `None` resolves from the
    /// `FERROTCAM_ERC` environment variable (default: warn).
    pub erc: Option<ErcMode>,
}

impl TranOpts {
    /// Reasonable defaults for a run to `t_stop`: `dt_init = t_stop/1e4`,
    /// `dt_max = t_stop/200`, backward Euler.
    #[must_use]
    pub fn to_time(t_stop: f64) -> Self {
        Self {
            t_stop,
            dt_init: t_stop / 1e4,
            dt_max: t_stop / 200.0,
            dt_min: t_stop / 1e12,
            integrator: Integrator::default(),
            newton: NewtonOpts::default(),
            uic: false,
            record_states: Vec::new(),
            erc: None,
        }
    }
}

/// Relative slack when deciding whether a step lands on a breakpoint.
const BP_SNAP: f64 = 1e-12;

/// Merge tolerance for adjacent breakpoints, relative to the breakpoint's
/// own magnitude (not to `t_stop`).
const BP_MERGE_REL: f64 = 1e-9;

/// Collect, sort and dedup the source-waveform breakpoints for a run to
/// `t_stop`; `t_stop` itself is always included (and is the final entry).
///
/// Near-duplicate edges are merged with a tolerance relative to the
/// breakpoint's own value rather than to `t_stop`: on a long run (a
/// write–verify sequence, say) two distinct nanosecond-spaced edges must
/// both survive, while the float noise from identical edges computed two
/// ways still collapses.
#[must_use]
pub fn collect_breakpoints(ckt: &Circuit, t_stop: f64) -> Vec<f64> {
    let mut bps: Vec<f64> = ckt
        .elements()
        .iter()
        .flat_map(|e| match e {
            Element::VSource { wave, .. } | Element::ISource { wave, .. } => {
                wave.breakpoints(t_stop)
            }
            _ => Vec::new(),
        })
        .collect();
    bps.push(t_stop);
    bps.sort_by(f64::total_cmp);
    bps.dedup_by(|a, b| (*a - *b).abs() <= BP_MERGE_REL * b.abs().max(f64::MIN_POSITIVE));
    bps
}

/// Run a transient analysis on `ckt` (mutable: history-dependent devices
/// advance their internal state as time moves forward).
///
/// Recorded signals: `v(<node>)` for every non-ground node, `i(<vsrc>)`
/// and `e(<vsrc>)` (cumulative energy **delivered by** the source) for
/// every voltage source, plus any requested device states.
///
/// # Errors
/// * [`Error::NonConvergence`] / [`Error::TimeStepTooSmall`] when Newton
///   cannot be rescued by step shrinking;
/// * [`Error::SingularMatrix`] for structurally defective circuits.
pub fn transient(ckt: &mut Circuit, opts: &TranOpts) -> Result<Trace> {
    let _span = crate::trace::span("transient");
    erc::preflight(ckt, opts.erc)?;
    let mut stats = SimStats::default();
    // --- Initial solution ------------------------------------------------
    let mut x: Vec<f64> = if opts.uic {
        let sysdim = {
            let sys = System::new(ckt);
            sys.nvars
        };
        let mut x0 = vec![0.0; sysdim];
        for &(node, v) in ckt.initial_conditions() {
            if node.index() > 0 {
                x0[node.index() - 1] = v;
            }
        }
        x0
    } else {
        let dc = DcOpts {
            newton: opts.newton.clone(),
            time: 0.0,
            // The transient entry already ran its own pre-flight.
            erc: Some(ErcMode::Off),
        };
        let sol = operating_point(ckt, &dc)?;
        stats.merge(sol.stats());
        sol.as_vec().to_vec()
    };

    // --- Static bookkeeping ----------------------------------------------
    let vsrc: Vec<(
        String,
        usize,
        crate::netlist::NodeId,
        crate::netlist::NodeId,
    )> = ckt
        .elements()
        .iter()
        .filter_map(|e| match e {
            Element::VSource {
                name, p, n, branch, ..
            } => Some((name.clone(), *branch, *p, *n)),
            _ => None,
        })
        .collect();
    let node_names: Vec<String> = ckt
        .signal_nodes()
        .iter()
        .map(|s| (*s).to_string())
        .collect();

    let mut signal_names: Vec<String> = node_names.iter().map(|n| format!("v({n})")).collect();
    for (name, ..) in &vsrc {
        signal_names.push(format!("i({name})"));
        signal_names.push(format!("e({name})"));
    }
    let state_probe: Vec<(usize, String, String)> = opts
        .record_states
        .iter()
        .filter_map(|(dev_name, key)| {
            ckt.devices()
                .iter()
                .position(|d| d.name() == dev_name)
                .map(|di| (di, dev_name.clone(), key.clone()))
        })
        .collect();
    for (_, dev, key) in &state_probe {
        signal_names.push(format!("{dev}.{key}"));
    }
    let mut trace = Trace::with_signals(signal_names);

    // Breakpoints from every source waveform.
    let bps = collect_breakpoints(ckt, opts.t_stop);

    // --- Companion state ---------------------------------------------------
    // The workspace lives outside the time loop so the scatter plan and
    // LU pattern cached on the first step carry across every later step
    // (the System view is rebuilt per step because devices need `&mut
    // ckt` on accept, but the matrix pattern is a property of the fixed
    // topology).
    let trapezoidal = opts.integrator == Integrator::Trapezoidal;
    let (mut comp, mut ws) = {
        let sys = System::new(ckt);
        let comp = sys.new_companion(0.0, trapezoidal);
        let ws = NewtonWorkspace::with_ordering(&sys, opts.newton.ordering);
        (comp, ws)
    };
    let ctx0 = EvalCtx {
        temp: opts.newton.temp,
        gmin: opts.newton.gmin,
        time: 0.0,
    };
    seed_charges(ckt, &x, &ctx0, &mut comp, &mut ws);

    // Per-source cumulative delivered energy and last power sample.
    let mut energy = vec![0.0f64; vsrc.len()];
    let mut power_prev = vec![0.0f64; vsrc.len()];
    record_point(
        ckt,
        &x,
        0.0,
        &vsrc,
        &mut energy,
        &mut power_prev,
        true,
        &state_probe,
        &mut trace,
    );

    // --- Time march --------------------------------------------------------
    let mut t = 0.0f64;
    let mut dt = opts.dt_init.min(opts.dt_max);
    let mut bp_iter = bps.iter().copied().peekable();

    while t < opts.t_stop * (1.0 - BP_SNAP) {
        // Next breakpoint strictly after t.
        while let Some(&bp) = bp_iter.peek() {
            if bp <= t * (1.0 + BP_SNAP) + f64::MIN_POSITIVE {
                bp_iter.next();
            } else {
                break;
            }
        }
        let next_bp = bp_iter.peek().copied().unwrap_or(opts.t_stop);

        let mut dt_eff = dt.min(opts.dt_max).min(opts.t_stop - t);
        if t + dt_eff >= next_bp - opts.t_stop * BP_SNAP {
            dt_eff = next_bp - t;
        }

        let t_new = t + dt_eff;
        comp.coeff = if trapezoidal {
            2.0 / dt_eff
        } else {
            1.0 / dt_eff
        };

        let (hits0, misses0) = (ws.bypass_hits, ws.bypass_misses);
        let attempt = {
            let sys = System::new(ckt);
            sys.newton(
                &x,
                t_new,
                1.0,
                &opts.newton,
                opts.newton.gmin,
                Some(&comp),
                &mut ws,
                None,
                "transient",
            )
        };
        match attempt {
            Ok((x_new, iters)) => {
                // Accept: advance companion state and device history.
                let ctx = EvalCtx {
                    temp: opts.newton.temp,
                    gmin: opts.newton.gmin,
                    time: t_new,
                };
                advance_state(ckt, &x_new, &ctx, &mut comp, &mut ws);
                x = x_new;
                t = t_new;
                stats.accepted_steps += 1;
                crate::trace::step_accepted(
                    "transient",
                    t,
                    dt_eff,
                    iters,
                    ws.bypass_hits - hits0,
                    ws.bypass_misses - misses0,
                );
                record_point(
                    ckt,
                    &x,
                    t,
                    &vsrc,
                    &mut energy,
                    &mut power_prev,
                    false,
                    &state_probe,
                    &mut trace,
                );
                if iters <= 10 {
                    dt = (dt * 1.4).min(opts.dt_max);
                } else if iters > 25 {
                    dt *= 0.7;
                }
            }
            Err(e @ Error::SingularMatrix { .. }) if dt_eff <= opts.dt_min * 4.0 => {
                // Step shrinking cannot rescue a structural singularity:
                // propagate the original error (its pivot index is real)
                // and map the index back to an MNA variable name.
                if let Error::SingularMatrix { index } = &e {
                    crate::trace::singular_pivot(
                        "transient",
                        t_new,
                        *index,
                        crate::trace::mna_var_name(ckt, *index),
                    );
                }
                return Err(e);
            }
            Err(e) => {
                stats.rejected_steps += 1;
                crate::trace::step_rejected("transient", t, dt_eff, &e);
                // A rejected step leaves device caches pointing at the
                // abandoned trajectory; the retry must re-evaluate.
                ws.invalidate_bypass();
                // Cut the *pre-clamp* dt, not dt_eff: dt_eff may already
                // be clamped to a tiny breakpoint gap, and quartering
                // that would collapse the step size for the rest of the
                // run after one rejection at a source edge.
                dt *= 0.25;
                if dt < opts.dt_min {
                    return Err(Error::TimeStepTooSmall { time: t, dt });
                }
            }
        }
    }
    stats.merge(ws.stats());
    trace.set_stats(stats);
    Ok(trace)
}

/// Evaluate charge state at `x` and store it as the companion history
/// (used once at t = 0; charge currents start at zero).
///
/// Uses the workspace voltage scratch instead of per-device allocations
/// and leaves `ws.stamps`/`ws.vt_cache` holding a fresh evaluation at
/// `x`, so an aggressive bypass policy may reuse it on the next step.
fn seed_charges(
    ckt: &Circuit,
    x: &[f64],
    ctx: &EvalCtx,
    comp: &mut super::Companion,
    ws: &mut NewtonWorkspace,
) {
    let sys = System::new(ckt);
    let mut cap_pos = 0usize;
    for elem in ckt.elements() {
        if let Element::Capacitor { p, n, farads, .. } = elem {
            comp.cap_q_prev[cap_pos] = farads * (sys.voltage(x, *p) - sys.voltage(x, *n));
            comp.cap_i_prev[cap_pos] = 0.0;
            cap_pos += 1;
        }
    }
    for (di, dev) in ckt.devices().iter().enumerate() {
        let terms = dev.terminals();
        let voff = ws.vt_offsets[di];
        for (k, &nd) in terms.iter().enumerate() {
            ws.vt[voff + k] = sys.voltage(x, nd);
        }
        let vt = &ws.vt[voff..voff + terms.len()];
        let st = &mut ws.stamps[di];
        st.clear();
        dev.eval(vt, st, ctx);
        ws.vt_cache[voff..voff + terms.len()].copy_from_slice(vt);
        ws.cache_valid[di] = true;
        let off = comp.dev_offsets[di];
        for a in 0..terms.len() {
            comp.dev_q_prev[off + a] = st.q[a];
            comp.dev_i_prev[off + a] = 0.0;
        }
    }
}

/// After an accepted step: update charge/current history and let devices
/// commit internal state (ferroelectric polarisation etc.).
fn advance_state(
    ckt: &mut Circuit,
    x: &[f64],
    ctx: &EvalCtx,
    comp: &mut super::Companion,
    ws: &mut NewtonWorkspace,
) {
    let coeff = comp.coeff;
    let trap = comp.trapezoidal;
    {
        let sys = System::new(ckt);
        let mut cap_pos = 0usize;
        for elem in ckt.elements() {
            if let Element::Capacitor { p, n, farads, .. } = elem {
                let q_new = farads * (sys.voltage(x, *p) - sys.voltage(x, *n));
                let mut i_new = coeff * (q_new - comp.cap_q_prev[cap_pos]);
                if trap {
                    i_new -= comp.cap_i_prev[cap_pos];
                }
                comp.cap_q_prev[cap_pos] = q_new;
                comp.cap_i_prev[cap_pos] = i_new;
                cap_pos += 1;
            }
        }
        for (di, dev) in ckt.devices().iter().enumerate() {
            let terms = dev.terminals();
            let voff = ws.vt_offsets[di];
            for (k, &nd) in terms.iter().enumerate() {
                ws.vt[voff + k] = sys.voltage(x, nd);
            }
            let vt = &ws.vt[voff..voff + terms.len()];
            let st = &mut ws.stamps[di];
            st.clear();
            dev.eval(vt, st, ctx);
            ws.vt_cache[voff..voff + terms.len()].copy_from_slice(vt);
            ws.cache_valid[di] = true;
            let off = comp.dev_offsets[di];
            for a in 0..terms.len() {
                let q_new = st.q[a];
                let mut i_new = coeff * (q_new - comp.dev_q_prev[off + a]);
                if trap {
                    i_new -= comp.dev_i_prev[off + a];
                }
                comp.dev_q_prev[off + a] = q_new;
                comp.dev_i_prev[off + a] = i_new;
            }
        }
    }
    // Device state commit needs &mut on the circuit; the terminal
    // voltages were already gathered into the workspace scratch above.
    for (di, dev) in ckt.devices_mut().iter_mut().enumerate() {
        let voff = ws.vt_offsets[di];
        let end = ws.vt_offsets[di + 1];
        dev.commit(&ws.vt[voff..end], ctx);
        // Committing can advance hysteretic state, which changes what a
        // fresh eval would return at the *same* voltages — drop the
        // cache for such devices so aggressive bypass never stamps a
        // stale pre-commit linearisation.
        if dev.has_history() {
            ws.cache_valid[di] = false;
        }
    }
}

/// Append one record to the trace, integrating per-source energy.
#[allow(clippy::too_many_arguments)]
fn record_point(
    ckt: &Circuit,
    x: &[f64],
    t: f64,
    vsrc: &[(
        String,
        usize,
        crate::netlist::NodeId,
        crate::netlist::NodeId,
    )],
    energy: &mut [f64],
    power_prev: &mut [f64],
    first: bool,
    state_probe: &[(usize, String, String)],
    trace: &mut Trace,
) {
    let sys = System::new(ckt);
    let mut row: Vec<f64> = Vec::with_capacity(sys.nvars + vsrc.len() + state_probe.len());
    row.extend_from_slice(&x[..sys.num_nodes - 1]);
    let dt = if first || trace.is_empty() {
        0.0
    } else {
        t - *trace.time().last().expect("non-empty trace")
    };
    for (k, (_, branch, p, n)) in vsrc.iter().enumerate() {
        let i = x[sys.branch_var(*branch)];
        let v = sys.voltage(x, *p) - sys.voltage(x, *n);
        // i flows p→n *through* the source, so power delivered = −v·i.
        let p_del = -v * i;
        if !first {
            energy[k] += 0.5 * (p_del + power_prev[k]) * dt;
        }
        power_prev[k] = p_del;
        row.push(i);
        row.push(energy[k]);
    }
    for (di, _, key) in state_probe {
        row.push(ckt.devices()[*di].state(key).unwrap_or(0.0));
    }
    trace.push(t, &row);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Circuit;
    use crate::probe::Edge;
    use crate::waveform::Waveform;

    /// RC charging: v(t) = V·(1 − e^(−t/RC)).
    #[test]
    fn rc_step_response_backward_euler() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let r = 1e3;
        let c = 1e-9; // tau = 1 us
        ckt.vsource(
            "V1",
            a,
            Circuit::gnd(),
            Waveform::pulse(0.0, 1.0, 1e-7, 1e-9, 1e-9, 1.0),
        );
        ckt.resistor("R1", a, b, r).unwrap();
        ckt.capacitor("C1", b, Circuit::gnd(), c).unwrap();
        let mut opts = TranOpts::to_time(5e-6);
        opts.dt_max = 5e-9;
        let tr = transient(&mut ckt, &opts).unwrap();
        // After 1 tau (t = delay + 1us): v = 1 − 1/e ≈ 0.632.
        let v = tr.value_at("v(b)", 1e-7 + 1e-6).unwrap();
        assert!((v - 0.6321).abs() < 0.01, "v = {v}");
        // After 5 tau: fully charged.
        let v5 = tr.value_at("v(b)", 1e-7 + 4.8e-6).unwrap();
        assert!(v5 > 0.99, "v5 = {v5}");
    }

    #[test]
    fn rc_trapezoidal_matches_analytic_closely() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(
            "V1",
            a,
            Circuit::gnd(),
            Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0),
        );
        ckt.resistor("R1", a, b, 1e3).unwrap();
        ckt.capacitor("C1", b, Circuit::gnd(), 1e-9).unwrap();
        let mut opts = TranOpts::to_time(3e-6);
        opts.integrator = Integrator::Trapezoidal;
        opts.dt_max = 10e-9;
        let tr = transient(&mut ckt, &opts).unwrap();
        for frac in [0.5, 1.0, 2.0] {
            let t = frac * 1e-6;
            let v = tr.value_at("v(b)", t).unwrap();
            let expect = 1.0 - (-frac).exp();
            assert!((v - expect).abs() < 5e-3, "t={t}: {v} vs {expect}");
        }
    }

    #[test]
    fn source_energy_matches_cv2_for_full_charge() {
        // Charging C through R from an ideal source costs E = C·V² total
        // from the source (half stored, half burned in R).
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(
            "V1",
            a,
            Circuit::gnd(),
            Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0),
        );
        ckt.resistor("R1", a, b, 1e3).unwrap();
        ckt.capacitor("C1", b, Circuit::gnd(), 1e-12).unwrap();
        let mut opts = TranOpts::to_time(20e-9); // 20 tau
        opts.dt_max = 2e-11;
        let tr = transient(&mut ckt, &opts).unwrap();
        let e = tr.source_energy("V1").unwrap();
        let cv2 = 1e-12 * 1.0 * 1.0;
        assert!((e - cv2).abs() < 0.05 * cv2, "E = {e}, CV² = {cv2}");
    }

    #[test]
    fn uic_starts_from_initial_conditions() {
        // Precharged cap discharging through R.
        let mut ckt = Circuit::new();
        let b = ckt.node("b");
        ckt.resistor("R1", b, Circuit::gnd(), 1e3).unwrap();
        ckt.capacitor("C1", b, Circuit::gnd(), 1e-9).unwrap();
        ckt.initial_condition(b, 1.0);
        let mut opts = TranOpts::to_time(3e-6);
        opts.uic = true;
        opts.dt_max = 10e-9;
        let tr = transient(&mut ckt, &opts).unwrap();
        let v0 = tr.value_at("v(b)", 0.0).unwrap();
        assert!((v0 - 1.0).abs() < 1e-9);
        let v1 = tr.value_at("v(b)", 1e-6).unwrap();
        assert!((v1 - (-1.0f64).exp()).abs() < 0.01, "v(tau) = {v1}");
    }

    #[test]
    fn pulse_edge_timing_via_cross() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(
            "V1",
            a,
            Circuit::gnd(),
            Waveform::pulse(0.0, 1.0, 1e-9, 0.2e-9, 0.2e-9, 1e-9),
        );
        ckt.resistor("R1", a, Circuit::gnd(), 1e3).unwrap();
        let tr = transient(&mut ckt, &TranOpts::to_time(4e-9)).unwrap();
        let t_rise = tr.cross("v(a)", 0.5, Edge::Rising, 1).unwrap().unwrap();
        assert!((t_rise - 1.1e-9).abs() < 0.05e-9, "t_rise = {t_rise}");
        let t_fall = tr.cross("v(a)", 0.5, Edge::Falling, 1).unwrap().unwrap();
        assert!((t_fall - 2.3e-9).abs() < 0.05e-9, "t_fall = {t_fall}");
    }
}
