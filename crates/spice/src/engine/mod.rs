//! Simulation engine: MNA assembly and the damped Newton–Raphson core
//! shared by DC and transient analyses.

pub mod ac;
pub mod dc;
pub mod sweep;
pub mod transient;

use crate::error::{ConvergenceForensics, Error, Result};
use crate::matrix::cached::{CachedSolver, Ordering};
use crate::matrix::sparse::{Stamper, Triplets};
use crate::netlist::{Circuit, Element, NodeId};
use crate::nonlinear::{BypassPolicy, DeviceStamps, EvalCtx};

/// Absolute node-voltage convergence tolerance (V).
const VNTOL: f64 = 1e-6;
/// Absolute branch-current convergence tolerance (A).
const ABSTOL: f64 = 1e-12;
/// Relative convergence tolerance.
const RELTOL: f64 = 1e-4;

/// Newton damping and iteration limits shared by both analyses.
#[derive(Debug, Clone)]
pub struct NewtonOpts {
    /// Maximum Newton iterations per solve attempt.
    pub max_iters: usize,
    /// Maximum per-iteration node-voltage change (V); larger updates are
    /// scaled down (damped Newton). Keeps exponential device models from
    /// overflowing.
    pub vlimit: f64,
    /// Shunt conductance from every node to ground (S).
    pub gmin: f64,
    /// Simulation temperature (K).
    pub temp: f64,
    /// Device-evaluation bypass policy. Defaults from `FERROTCAM_BYPASS`
    /// (off when unset).
    pub bypass: BypassPolicy,
    /// Relative part of the bypass voltage-movement tolerance. A decade
    /// tighter than the Newton `RELTOL` so bypassed solutions stay well
    /// inside the convergence band (≤ 1e-6 V waveform deviation).
    pub bypass_reltol: f64,
    /// Absolute part (V) of the bypass tolerance; a decade under the
    /// Newton `VNTOL` for the same reason.
    pub bypass_vntol: f64,
    /// Fill-reducing pre-ordering for the linear solver. Defaults from
    /// `FERROTCAM_ORDERING` (AMD when unset).
    pub ordering: Ordering,
}

impl Default for NewtonOpts {
    fn default() -> Self {
        Self {
            max_iters: 100,
            vlimit: 0.4,
            gmin: 1e-12,
            temp: crate::units::TEMP_NOMINAL,
            bypass: BypassPolicy::from_env(),
            bypass_reltol: RELTOL * 0.1,
            bypass_vntol: VNTOL * 0.1,
            ordering: Ordering::from_env(),
        }
    }
}

/// Solver work counters for one analysis run.
///
/// Exposed on every engine result ([`super::engine::dc::Solution`],
/// [`crate::probe::Trace`], [`super::engine::sweep::SweepResult`]) so
/// callers can see how often the pattern-cached fast path
/// ([`crate::matrix::CachedSolver`]) was hit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Newton iterations run (each is one assemble + one linear solve).
    pub newton_iters: u64,
    /// Full LU factorisations (symbolic + numeric).
    pub full_factors: u64,
    /// Numeric-only refactorisations on a reused pattern.
    pub refactors: u64,
    /// Scatter-plan rebuilds caused by a changed assembly pattern.
    pub pattern_rebuilds: u64,
    /// Accepted transient timesteps (zero for DC analyses).
    pub accepted_steps: u64,
    /// Rejected (re-tried with a smaller dt) transient timesteps.
    pub rejected_steps: u64,
    /// Device evaluations skipped via the operating-point bypass cache
    /// (see [`crate::nonlinear::BypassPolicy`]). Zero when bypass is off.
    pub bypass_hits: u64,
    /// Device evaluations actually performed.
    pub bypass_misses: u64,
}

impl SimStats {
    /// Accumulate another run's counters into this one.
    pub fn merge(&mut self, other: SimStats) {
        self.newton_iters += other.newton_iters;
        self.full_factors += other.full_factors;
        self.refactors += other.refactors;
        self.pattern_rebuilds += other.pattern_rebuilds;
        self.accepted_steps += other.accepted_steps;
        self.rejected_steps += other.rejected_steps;
        self.bypass_hits += other.bypass_hits;
        self.bypass_misses += other.bypass_misses;
    }
}

/// Reusable Newton scratch: assembly buffers, per-device stamp buffers
/// and the pattern-cached linear solver.
///
/// One workspace lives for a whole analysis (all Newton solves of a DC
/// ladder, every timestep of a transient, every point of a sweep), so
/// iteration 2 onwards reuses the scatter plan and LU pattern instead of
/// re-sorting and re-pivoting from scratch.
#[derive(Debug)]
pub(crate) struct NewtonWorkspace {
    pub tri: Triplets,
    pub rhs: Vec<f64>,
    pub solver: CachedSolver,
    /// Per-device stamp buffers. Doubles as the bypass cache: a device
    /// whose `cache_valid` flag is set still holds the stamps from its
    /// last evaluation (at the voltages in `vt_cache`).
    pub stamps: Vec<DeviceStamps>,
    /// Newton iterations run through this workspace.
    pub newton_iters: u64,
    /// Flat terminal-voltage scratch, one slot per device terminal
    /// (hoists the former per-iteration `Vec` allocation in assembly).
    vt: Vec<f64>,
    /// Terminal voltages each device's `stamps` were last evaluated at —
    /// the linearisation point bypass restamps against.
    vt_cache: Vec<f64>,
    /// Start of each device's slice in `vt`/`vt_cache` (len = ndev + 1).
    vt_offsets: Vec<usize>,
    /// Whether `stamps[di]`/`vt_cache` hold a valid evaluation.
    cache_valid: Vec<bool>,
    /// Triplet entry range holding each device's matrix stamps; valid
    /// for in-place restamping only while `ranges_valid` (one Newton
    /// solve — the static prefix may change between solves).
    dev_ranges: Vec<(usize, usize)>,
    ranges_valid: bool,
    /// `(gmin, source_scale)` the aggressive-mode cache was built under.
    bypass_key: Option<(f64, f64)>,
    /// Device evaluations skipped thanks to the bypass cache.
    pub bypass_hits: u64,
    /// Device evaluations performed.
    pub bypass_misses: u64,
}

impl NewtonWorkspace {
    /// Workspace with the default pre-ordering. Engines pass their
    /// resolved options through [`Self::with_ordering`] instead.
    #[cfg(test)]
    pub fn new(sys: &System<'_>) -> Self {
        Self::with_ordering(sys, Ordering::default())
    }

    pub fn with_ordering(sys: &System<'_>, ordering: Ordering) -> Self {
        let devices = sys.ckt.devices();
        let mut vt_offsets = Vec::with_capacity(devices.len() + 1);
        let mut total = 0usize;
        for d in devices {
            vt_offsets.push(total);
            total += d.terminals().len();
        }
        vt_offsets.push(total);
        Self {
            tri: Triplets::new(sys.nvars),
            rhs: vec![0.0; sys.nvars],
            solver: CachedSolver::with_ordering(ordering),
            stamps: devices
                .iter()
                .map(|d| DeviceStamps::new(d.terminals().len()))
                .collect(),
            newton_iters: 0,
            vt: vec![0.0; total],
            vt_cache: vec![0.0; total],
            vt_offsets,
            cache_valid: vec![false; devices.len()],
            dev_ranges: vec![(0, 0); devices.len()],
            ranges_valid: false,
            bypass_key: None,
            bypass_hits: 0,
            bypass_misses: 0,
        }
    }

    /// Drop every cached device operating point (and the aggressive-mode
    /// validity key), forcing full evaluations on the next assembly.
    pub fn invalidate_bypass(&mut self) {
        self.cache_valid.fill(false);
        self.bypass_key = None;
    }

    /// Snapshot of the counters (step counts are the caller's concern).
    pub fn stats(&self) -> SimStats {
        let s = self.solver.stats();
        SimStats {
            newton_iters: self.newton_iters,
            full_factors: s.full_factors,
            refactors: s.refactors,
            pattern_rebuilds: s.pattern_rebuilds,
            accepted_steps: 0,
            rejected_steps: 0,
            bypass_hits: self.bypass_hits,
            bypass_misses: self.bypass_misses,
        }
    }
}

/// Discards matrix stamps; used to replay a bypassed device's RHS
/// contributions without rewriting its (already correct) matrix range.
struct NullStamper;

impl Stamper for NullStamper {
    #[inline]
    fn add(&mut self, _row: usize, _col: usize, _v: f64) {}
}

/// Companion-model state for charge storage during transient analysis.
#[derive(Debug, Clone)]
pub(crate) struct Companion {
    /// Integration coefficient: BE → 1/dt, trapezoidal → 2/dt.
    pub coeff: f64,
    /// Whether the trapezoidal correction term (previous current) applies.
    pub trapezoidal: bool,
    /// Per linear capacitor: previous branch charge.
    pub cap_q_prev: Vec<f64>,
    /// Per linear capacitor: previous branch current.
    pub cap_i_prev: Vec<f64>,
    /// Per device: previous terminal charges (flattened, offsets parallel
    /// to `dev_offsets`).
    pub dev_q_prev: Vec<f64>,
    /// Per device: previous terminal charge currents.
    pub dev_i_prev: Vec<f64>,
    /// Start offset of each device's terminals in the flat arrays.
    pub dev_offsets: Vec<usize>,
}

/// The assembled view of a circuit: variable numbering plus stamping.
pub(crate) struct System<'a> {
    pub ckt: &'a Circuit,
    pub num_nodes: usize,
    pub nvars: usize,
    /// Index of each capacitor element within `ckt.elements()` (companion
    /// state is indexed by position in this list).
    pub cap_elems: Vec<usize>,
}

impl<'a> System<'a> {
    pub fn new(ckt: &'a Circuit) -> Self {
        let num_nodes = ckt.num_nodes();
        let nvars = (num_nodes - 1) + ckt.num_branches();
        let cap_elems = ckt
            .elements()
            .iter()
            .enumerate()
            .filter_map(|(i, e)| matches!(e, Element::Capacitor { .. }).then_some(i))
            .collect();
        Self {
            ckt,
            num_nodes,
            nvars,
            cap_elems,
        }
    }

    /// MNA variable of a node (`None` for ground).
    #[inline]
    pub fn var_of(&self, node: NodeId) -> Option<usize> {
        let i = node.index();
        (i != 0).then(|| i - 1)
    }

    /// MNA variable of a voltage-source branch.
    #[inline]
    pub fn branch_var(&self, branch: usize) -> usize {
        (self.num_nodes - 1) + branch
    }

    /// Voltage of `node` in solution vector `x`.
    #[inline]
    pub fn voltage(&self, x: &[f64], node: NodeId) -> f64 {
        match self.var_of(node) {
            Some(v) => x[v],
            None => 0.0,
        }
    }

    /// Fresh companion state (all charges continue from `x` at accept
    /// time; initialised lazily by the transient driver).
    pub fn new_companion(&self, coeff: f64, trapezoidal: bool) -> Companion {
        let mut dev_offsets = Vec::with_capacity(self.ckt.devices().len() + 1);
        let mut total = 0usize;
        for d in self.ckt.devices() {
            dev_offsets.push(total);
            total += d.terminals().len();
        }
        dev_offsets.push(total);
        Companion {
            coeff,
            trapezoidal,
            cap_q_prev: vec![0.0; self.cap_elems.len()],
            cap_i_prev: vec![0.0; self.cap_elems.len()],
            dev_q_prev: vec![0.0; total],
            dev_i_prev: vec![0.0; total],
            dev_offsets,
        }
    }

    /// Assemble the linearised MNA system around operating point `x`,
    /// evaluating every device (no bypass, no incremental reuse).
    ///
    /// `source_scale` scales all independent sources (source stepping);
    /// `companion` enables charge storage (transient); `stamps` is a
    /// per-device scratch buffer owned by the caller. The Newton loop
    /// goes through [`System::assemble_newton`] instead; this entry is
    /// for one-shot assemblies (AC linearisation, reference paths).
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        &self,
        x: &[f64],
        time: f64,
        source_scale: f64,
        ctx: &EvalCtx,
        companion: Option<&Companion>,
        tri: &mut Triplets,
        rhs: &mut [f64],
        stamps: &mut [DeviceStamps],
    ) {
        tri.clear();
        rhs.fill(0.0);
        // Shunt gmin keeps floating nodes solvable and aids convergence.
        for v in 0..self.num_nodes - 1 {
            tri.add(v, v, ctx.gmin);
        }
        self.stamp_elements(x, time, source_scale, companion, Some(tri), rhs);
        for (di, dev) in self.ckt.devices().iter().enumerate() {
            let terms = dev.terminals();
            let st = &mut stamps[di];
            st.clear();
            let vt: Vec<f64> = terms.iter().map(|&nd| self.voltage(x, nd)).collect();
            dev.eval(&vt, st, ctx);
            self.stamp_device(terms, st, &vt, companion.map(|c| (c, di)), tri, rhs);
        }
    }

    /// Stamp every linear element. Matrix entries go to `tri` when
    /// present; RHS contributions always go to `rhs`. The incremental
    /// path passes `None`: within one Newton solve the linear matrix
    /// entries (gmin, conductances, companion `geq`, source incidence)
    /// are constant, only the RHS needs recomputing at the new `x`.
    fn stamp_elements(
        &self,
        x: &[f64],
        time: f64,
        source_scale: f64,
        companion: Option<&Companion>,
        mut tri: Option<&mut Triplets>,
        rhs: &mut [f64],
    ) {
        let mut cap_pos = 0usize;
        for elem in self.ckt.elements() {
            match elem {
                Element::Resistor { p, n, ohms, .. } => {
                    if let Some(t) = tri.as_deref_mut() {
                        self.stamp_conductance(t, *p, *n, 1.0 / ohms);
                    }
                }
                Element::Capacitor { p, n, farads, .. } => {
                    if let Some(comp) = companion {
                        let vp = self.voltage(x, *p);
                        let vn = self.voltage(x, *n);
                        let q0 = farads * (vp - vn);
                        let geq = comp.coeff * farads;
                        if let Some(t) = tri.as_deref_mut() {
                            self.stamp_conductance(t, *p, *n, geq);
                        }
                        // i ≈ coeff·(q0 + C·Δv − q_prev) [− i_prev if trap]
                        // constants → RHS with opposite sign.
                        let mut i_const =
                            comp.coeff * (q0 - comp.cap_q_prev[cap_pos]) - geq * (vp - vn);
                        if comp.trapezoidal {
                            i_const -= comp.cap_i_prev[cap_pos];
                        }
                        self.stamp_current_pn(rhs, *p, *n, i_const);
                    }
                    cap_pos += 1;
                }
                Element::VSource {
                    p, n, wave, branch, ..
                } => {
                    let bv = self.branch_var(*branch);
                    if let Some(t) = tri.as_deref_mut() {
                        if let Some(vp) = self.var_of(*p) {
                            t.add(vp, bv, 1.0);
                            t.add(bv, vp, 1.0);
                        }
                        if let Some(vn) = self.var_of(*n) {
                            t.add(vn, bv, -1.0);
                            t.add(bv, vn, -1.0);
                        }
                        // Keep the branch row well-scaled even if both
                        // ends are ground (degenerate but legal).
                        if self.var_of(*p).is_none() && self.var_of(*n).is_none() {
                            t.add(bv, bv, 1.0);
                        }
                    }
                    rhs[bv] += wave.value(time) * source_scale;
                }
                Element::ISource { p, n, wave, .. } => {
                    let j = wave.value(time) * source_scale;
                    self.stamp_current_pn(rhs, *p, *n, j);
                }
                Element::Vcvs {
                    p,
                    n,
                    cp,
                    cn,
                    gain,
                    branch,
                    ..
                } => {
                    if let Some(t) = tri.as_deref_mut() {
                        let bv = self.branch_var(*branch);
                        if let Some(vp) = self.var_of(*p) {
                            t.add(vp, bv, 1.0);
                            t.add(bv, vp, 1.0);
                        }
                        if let Some(vn) = self.var_of(*n) {
                            t.add(vn, bv, -1.0);
                            t.add(bv, vn, -1.0);
                        }
                        // Branch row: v_p − v_n − gain·(v_cp − v_cn) = 0.
                        if let Some(vc) = self.var_of(*cp) {
                            t.add(bv, vc, -gain);
                        }
                        if let Some(vc) = self.var_of(*cn) {
                            t.add(bv, vc, *gain);
                        }
                        if self.var_of(*p).is_none() && self.var_of(*n).is_none() {
                            t.add(bv, bv, 1.0);
                        }
                    }
                }
                Element::Vccs {
                    p, n, cp, cn, gm, ..
                } => {
                    if let Some(t) = tri.as_deref_mut() {
                        self.stamp_transconductance(t, *p, *n, *cp, *cn, *gm);
                    }
                }
            }
        }
    }

    /// Stamp one evaluated device: Jacobians into `out`, Taylor-constant
    /// currents into `rhs`. `vt` must be the linearisation point the
    /// stamps in `st` were evaluated at (for a bypassed device, the
    /// *cached* voltages — not the current iterate).
    fn stamp_device<S: Stamper>(
        &self,
        terms: &[NodeId],
        st: &DeviceStamps,
        vt: &[f64],
        companion: Option<(&Companion, usize)>,
        out: &mut S,
        rhs: &mut [f64],
    ) {
        let t = terms.len();
        // Static currents: stamp G and move the Taylor constant to RHS.
        for a in 0..t {
            let Some(ra) = self.var_of(terms[a]) else {
                continue;
            };
            let mut i_const = st.i[a];
            for b in 0..t {
                let g = st.gi[a * t + b];
                if g != 0.0 {
                    if let Some(cb) = self.var_of(terms[b]) {
                        out.add(ra, cb, g);
                    }
                    i_const -= g * vt[b];
                }
            }
            rhs[ra] -= i_const;
        }
        // Charge storage via companion model.
        if let Some((comp, di)) = companion {
            let off = comp.dev_offsets[di];
            for a in 0..t {
                let Some(ra) = self.var_of(terms[a]) else {
                    continue;
                };
                let mut i_const = comp.coeff * (st.q[a] - comp.dev_q_prev[off + a]);
                if comp.trapezoidal {
                    i_const -= comp.dev_i_prev[off + a];
                }
                for b in 0..t {
                    let c = st.cq[a * t + b];
                    if c != 0.0 {
                        let geq = comp.coeff * c;
                        if let Some(cb) = self.var_of(terms[b]) {
                            out.add(ra, cb, geq);
                        }
                        i_const -= geq * vt[b];
                    }
                }
                rhs[ra] -= i_const;
            }
        }
    }

    /// Load device `di`'s terminal voltages from `x` into `ws.vt` and
    /// decide whether its cached evaluation can be reused. On a miss the
    /// device is evaluated and its cache refreshed, so after this call
    /// `ws.stamps[di]` and `ws.vt_cache` always hold a consistent
    /// linearisation. Returns `true` when the evaluation was bypassed.
    fn bypass_or_eval(
        &self,
        di: usize,
        dev: &dyn crate::nonlinear::NonlinearDevice,
        x: &[f64],
        ctx: &EvalCtx,
        opts: &NewtonOpts,
        ws: &mut NewtonWorkspace,
    ) -> bool {
        let terms = dev.terminals();
        let off = ws.vt_offsets[di];
        let t = terms.len();
        for (k, &nd) in terms.iter().enumerate() {
            ws.vt[off + k] = self.voltage(x, nd);
        }
        let hit = opts.bypass.enabled()
            && ws.cache_valid[di]
            && (0..t).all(|k| {
                let a = ws.vt[off + k];
                let b = ws.vt_cache[off + k];
                (a - b).abs() <= opts.bypass_vntol + opts.bypass_reltol * a.abs().max(b.abs())
            });
        if hit {
            ws.bypass_hits += 1;
        } else {
            ws.bypass_misses += 1;
            let st = &mut ws.stamps[di];
            st.clear();
            dev.eval(&ws.vt[off..off + t], st, ctx);
            ws.vt_cache[off..off + t].copy_from_slice(&ws.vt[off..off + t]);
            ws.cache_valid[di] = true;
        }
        hit
    }

    /// Newton-loop assembly: full rebuild on the first iteration of a
    /// solve (the static matrix prefix may have changed — new gmin rung,
    /// new companion coefficient), incremental restamping afterwards.
    /// Produces a `(ws.tri, ws.rhs)` pair bit-identical to
    /// [`System::assemble`] modulo bypassed evaluations.
    #[allow(clippy::too_many_arguments)]
    fn assemble_newton(
        &self,
        x: &[f64],
        time: f64,
        source_scale: f64,
        ctx: &EvalCtx,
        companion: Option<&Companion>,
        opts: &NewtonOpts,
        ws: &mut NewtonWorkspace,
        incremental: bool,
    ) {
        if incremental
            && ws.ranges_valid
            && self.assemble_incremental(x, time, source_scale, ctx, companion, opts, ws)
        {
            return;
        }
        self.assemble_full(x, time, source_scale, ctx, companion, opts, ws);
    }

    /// Full Newton assembly with bypass: rebuilds the triplet list and
    /// records each device's entry range for later in-place restamping.
    #[allow(clippy::too_many_arguments)]
    fn assemble_full(
        &self,
        x: &[f64],
        time: f64,
        source_scale: f64,
        ctx: &EvalCtx,
        companion: Option<&Companion>,
        opts: &NewtonOpts,
        ws: &mut NewtonWorkspace,
    ) {
        ws.tri.clear();
        ws.rhs.fill(0.0);
        for v in 0..self.num_nodes - 1 {
            ws.tri.add(v, v, ctx.gmin);
        }
        self.stamp_elements(
            x,
            time,
            source_scale,
            companion,
            Some(&mut ws.tri),
            &mut ws.rhs,
        );
        for (di, dev) in self.ckt.devices().iter().enumerate() {
            self.bypass_or_eval(di, dev.as_ref(), x, ctx, opts, ws);
            let off = ws.vt_offsets[di];
            let end = ws.vt_offsets[di + 1];
            let start = ws.tri.len();
            self.stamp_device(
                dev.terminals(),
                &ws.stamps[di],
                &ws.vt_cache[off..end],
                companion.map(|c| (c, di)),
                &mut ws.tri,
                &mut ws.rhs,
            );
            ws.dev_ranges[di] = (start, ws.tri.len());
        }
        ws.ranges_valid = true;
    }

    /// Incremental Newton assembly: the linear matrix prefix is left
    /// untouched, element RHS contributions are recomputed at `x`, and
    /// only re-evaluated devices rewrite their matrix ranges (a bypassed
    /// device costs just its RHS replay). Returns `false` — leaving the
    /// workspace for [`System::assemble_full`] to rebuild — when a
    /// device's stamp stream changed shape (a Jacobian entry crossed
    /// exactly zero, altering the recorded coordinate pattern).
    #[allow(clippy::too_many_arguments)]
    fn assemble_incremental(
        &self,
        x: &[f64],
        time: f64,
        source_scale: f64,
        ctx: &EvalCtx,
        companion: Option<&Companion>,
        opts: &NewtonOpts,
        ws: &mut NewtonWorkspace,
    ) -> bool {
        ws.rhs.fill(0.0);
        self.stamp_elements(x, time, source_scale, companion, None, &mut ws.rhs);
        for (di, dev) in self.ckt.devices().iter().enumerate() {
            let hit = self.bypass_or_eval(di, dev.as_ref(), x, ctx, opts, ws);
            let off = ws.vt_offsets[di];
            let end = ws.vt_offsets[di + 1];
            if hit {
                // The matrix range still holds this exact linearisation
                // (every miss restamps it); only the RHS needs replaying.
                self.stamp_device(
                    dev.terminals(),
                    &ws.stamps[di],
                    &ws.vt_cache[off..end],
                    companion.map(|c| (c, di)),
                    &mut NullStamper,
                    &mut ws.rhs,
                );
            } else {
                let (start, stop) = ws.dev_ranges[di];
                let mut w = ws.tri.range_writer(start, stop);
                self.stamp_device(
                    dev.terminals(),
                    &ws.stamps[di],
                    &ws.vt_cache[off..end],
                    companion.map(|c| (c, di)),
                    &mut w,
                    &mut ws.rhs,
                );
                if !w.complete() {
                    return false;
                }
            }
        }
        true
    }

    #[inline]
    fn stamp_conductance(&self, tri: &mut Triplets, p: NodeId, n: NodeId, g: f64) {
        let vp = self.var_of(p);
        let vn = self.var_of(n);
        if let Some(a) = vp {
            tri.add(a, a, g);
        }
        if let Some(b) = vn {
            tri.add(b, b, g);
        }
        if let (Some(a), Some(b)) = (vp, vn) {
            tri.add(a, b, -g);
            tri.add(b, a, -g);
        }
    }

    /// Constant current `j` flowing from `p` to `n` through an element:
    /// RHS gets `−j` at `p`, `+j` at `n`.
    #[inline]
    fn stamp_current_pn(&self, rhs: &mut [f64], p: NodeId, n: NodeId, j: f64) {
        if let Some(a) = self.var_of(p) {
            rhs[a] -= j;
        }
        if let Some(b) = self.var_of(n) {
            rhs[b] += j;
        }
    }

    #[inline]
    fn stamp_transconductance(
        &self,
        tri: &mut Triplets,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gm: f64,
    ) {
        for (out, sign_o) in [(p, 1.0), (n, -1.0)] {
            let Some(r) = self.var_of(out) else { continue };
            for (ctrl, sign_c) in [(cp, 1.0), (cn, -1.0)] {
                if let Some(c) = self.var_of(ctrl) {
                    tri.add(r, c, gm * sign_o * sign_c);
                }
            }
        }
    }

    /// Worst-residual attribution from the system last assembled into
    /// `ws` around operating point `x`.
    ///
    /// Recomputes the Newton residual `r = b − A·x` from the raw stamp
    /// buffer (no re-assembly, no factorisation) and blames the row with
    /// the largest `|r|`. Node rows (KCL, amperes) are scanned before
    /// branch rows (source constraints, volts) because the two carry
    /// incomparable units. NaN residuals sort as +∞ so a poisoned row
    /// always wins.
    pub(crate) fn forensics(
        &self,
        ws: &NewtonWorkspace,
        x: &[f64],
        dx_norm: f64,
    ) -> ConvergenceForensics {
        let key = |v: f64| if v.is_nan() { f64::INFINITY } else { v.abs() };
        let mut r = ws.rhs.clone();
        for (row, col, v) in ws.tri.iter() {
            r[row] -= v * x[col];
        }
        let nnode_vars = self.num_nodes - 1;
        let scan = if nnode_vars > 0 {
            0..nnode_vars
        } else {
            0..self.nvars
        };
        let mut worst = scan.start;
        let mut f_norm = -1.0f64;
        for v in scan {
            let k = key(r[v]);
            if k > f_norm {
                f_norm = k;
                worst = v;
            }
        }
        let node = crate::trace::mna_var_name(self.ckt, worst);
        // Blame the nonlinear device injecting the largest current at the
        // worst row; fall back to any linear element touching it.
        let mut device = String::new();
        let mut best = -1.0f64;
        for (di, dev) in self.ckt.devices().iter().enumerate() {
            for (a, &term) in dev.terminals().iter().enumerate() {
                if self.var_of(term) == Some(worst) {
                    let m = key(ws.stamps[di].i[a]);
                    if m > best {
                        best = m;
                        device = dev.name().to_string();
                    }
                }
            }
        }
        if device.is_empty() {
            if let Some(name) = self.element_at_row(worst) {
                device = name.to_string();
            }
        }
        ConvergenceForensics {
            node,
            device,
            f_norm: f_norm.max(0.0),
            dx_norm,
        }
    }

    /// First linear element whose terminals (or branch row) touch MNA
    /// row `row`.
    fn element_at_row(&self, row: usize) -> Option<&str> {
        let at = |nd: NodeId| self.var_of(nd) == Some(row);
        self.ckt
            .elements()
            .iter()
            .find(|e| match e {
                Element::Resistor { p, n, .. }
                | Element::Capacitor { p, n, .. }
                | Element::ISource { p, n, .. } => at(*p) || at(*n),
                Element::VSource { p, n, branch, .. } => {
                    self.branch_var(*branch) == row || at(*p) || at(*n)
                }
                Element::Vcvs {
                    p,
                    n,
                    cp,
                    cn,
                    branch,
                    ..
                } => self.branch_var(*branch) == row || at(*p) || at(*n) || at(*cp) || at(*cn),
                Element::Vccs { p, n, cp, cn, .. } => at(*p) || at(*n) || at(*cp) || at(*cn),
            })
            .map(Element::name)
    }

    /// One damped Newton solve. Returns `(x, iterations)` on convergence.
    ///
    /// The workspace carries the assembly buffers and the pattern-cached
    /// solver across calls: iteration 2..N (and every later solve on the
    /// same topology) skips symbolic analysis entirely, restamps only
    /// re-evaluated devices in place, and — policy permitting — bypasses
    /// evaluation of devices whose terminal voltages haven't moved.
    ///
    /// `rhs_patch` adds `dv` to RHS row `var` after every assembly
    /// (sweep drivers override one source value without re-stamping).
    #[allow(clippy::too_many_arguments)]
    pub fn newton(
        &self,
        x0: &[f64],
        time: f64,
        source_scale: f64,
        opts: &NewtonOpts,
        gmin: f64,
        companion: Option<&Companion>,
        ws: &mut NewtonWorkspace,
        rhs_patch: Option<(usize, f64)>,
        analysis: &'static str,
    ) -> Result<(Vec<f64>, usize)> {
        let mut x = x0.to_vec();
        let ctx = EvalCtx {
            temp: opts.temp,
            gmin,
            time,
        };
        // Bypass-cache lifetime at solve entry: `Safe` (and `Off`) drop
        // every cached operating point so iteration 1 fully evaluates;
        // `Aggressive` keeps caches across solves but must drop them
        // when the continuation regime (gmin rung, source scale) moved.
        match opts.bypass {
            BypassPolicy::Aggressive => {
                let key = (gmin, source_scale);
                if ws.bypass_key != Some(key) {
                    ws.invalidate_bypass();
                    ws.bypass_key = Some(key);
                }
            }
            BypassPolicy::Off | BypassPolicy::Safe => ws.invalidate_bypass(),
        }
        // The static matrix prefix (gmin shunts, companion geq) may have
        // changed since the last solve: always rebuild on iteration 1.
        ws.ranges_valid = false;
        let mut last_dx = f64::INFINITY;
        for iter in 1..=opts.max_iters {
            self.assemble_newton(&x, time, source_scale, &ctx, companion, opts, ws, iter > 1);
            if let Some((var, dv)) = rhs_patch {
                ws.rhs[var] += dv;
            }
            ws.newton_iters += 1;
            let x_new = ws.solver.solve(&ws.tri, &ws.rhs)?;

            // Convergence check on the raw (undamped) update.
            let nnode_vars = self.num_nodes - 1;
            let mut converged = true;
            let mut max_dv = 0.0f64;
            let mut max_dx = 0.0f64;
            for v in 0..self.nvars {
                let d = (x_new[v] - x[v]).abs();
                let (atol, val) = if v < nnode_vars {
                    (VNTOL, x_new[v].abs().max(x[v].abs()))
                } else {
                    (ABSTOL, x_new[v].abs().max(x[v].abs()))
                };
                if d > atol + RELTOL * val {
                    converged = false;
                }
                if v < nnode_vars {
                    max_dv = max_dv.max(d);
                }
                max_dx = max_dx.max(d);
                if !x_new[v].is_finite() {
                    // The workspace still holds the system assembled
                    // around `x`, so the residual attribution is
                    // consistent with the failing solve.
                    let fo = self.forensics(ws, &x, f64::INFINITY);
                    crate::trace::newton_failure(analysis, time, iter, &fo);
                    return Err(Error::NonConvergence {
                        analysis,
                        time,
                        iterations: iter,
                        forensics: Some(Box::new(fo)),
                    });
                }
            }
            last_dx = max_dx;
            if converged && iter > 1 {
                return Ok((x_new, iter));
            }
            // Damped update.
            if max_dv > opts.vlimit {
                let scale = opts.vlimit / max_dv;
                for v in 0..self.nvars {
                    x[v] += (x_new[v] - x[v]) * scale;
                }
            } else {
                x = x_new;
            }
        }
        // Re-assemble around the final iterate so the residual matches
        // the point Newton was left at (the loop body updated `x` after
        // the last assembly). Drop the bypass cache first: forensics
        // must attribute blame from *fresh* device evaluations at `x`,
        // not from cached linearisations.
        ws.invalidate_bypass();
        ws.ranges_valid = false;
        self.assemble_newton(&x, time, source_scale, &ctx, companion, opts, ws, false);
        if let Some((var, dv)) = rhs_patch {
            ws.rhs[var] += dv;
        }
        let fo = self.forensics(ws, &x, last_dx);
        crate::trace::newton_failure(analysis, time, opts.max_iters, &fo);
        Err(Error::NonConvergence {
            analysis,
            time,
            iterations: opts.max_iters,
            forensics: Some(Box::new(fo)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    #[test]
    fn voltage_divider_dc() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::gnd(), Waveform::dc(2.0));
        ckt.resistor("R1", a, b, 1e3).unwrap();
        ckt.resistor("R2", b, Circuit::gnd(), 1e3).unwrap();
        let sys = System::new(&ckt);
        let mut ws = NewtonWorkspace::new(&sys);
        let x0 = vec![0.0; sys.nvars];
        let (x, _) = sys
            .newton(
                &x0,
                0.0,
                1.0,
                &NewtonOpts::default(),
                1e-12,
                None,
                &mut ws,
                None,
                "dc",
            )
            .unwrap();
        assert!((sys.voltage(&x, a) - 2.0).abs() < 1e-6);
        assert!((sys.voltage(&x, b) - 1.0).abs() < 1e-4);
        // Branch current: 2V across 2k = 1 mA flowing a->gnd inside source
        // means −1 mA through the source p→n convention.
        let i = x[sys.branch_var(0)];
        assert!((i + 1e-3).abs() < 1e-6, "i = {i}");
    }

    #[test]
    fn vcvs_amplifies() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("V1", inp, Circuit::gnd(), Waveform::dc(0.25));
        ckt.vcvs("E1", out, Circuit::gnd(), inp, Circuit::gnd(), 4.0);
        ckt.resistor("RL", out, Circuit::gnd(), 1e3).unwrap();
        let sys = System::new(&ckt);
        let mut ws = NewtonWorkspace::new(&sys);
        let (x, _) = sys
            .newton(
                &vec![0.0; sys.nvars],
                0.0,
                1.0,
                &NewtonOpts::default(),
                1e-12,
                None,
                &mut ws,
                None,
                "dc",
            )
            .unwrap();
        assert!((sys.voltage(&x, out) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn vccs_injects_current() {
        // V1 = 1 V on ctrl; VCCS gm = 1 mS drives current into load 1k.
        let mut ckt = Circuit::new();
        let ctrl = ckt.node("ctrl");
        let out = ckt.node("out");
        ckt.vsource("V1", ctrl, Circuit::gnd(), Waveform::dc(1.0));
        ckt.vccs("G1", Circuit::gnd(), out, ctrl, Circuit::gnd(), 1e-3);
        ckt.resistor("RL", out, Circuit::gnd(), 1e3).unwrap();
        let sys = System::new(&ckt);
        let mut ws = NewtonWorkspace::new(&sys);
        let (x, _) = sys
            .newton(
                &vec![0.0; sys.nvars],
                0.0,
                1.0,
                &NewtonOpts::default(),
                1e-12,
                None,
                &mut ws,
                None,
                "dc",
            )
            .unwrap();
        // i(gnd→out) = gm·1 V = 1 mA into out's load → v(out) = +1 V.
        assert!((sys.voltage(&x, out) - 1.0).abs() < 1e-4);
    }
}
