//! AC small-signal analysis.
//!
//! The circuit is linearised at its DC operating point (device
//! conductances `∂I/∂V` and capacitances `∂Q/∂V`), then the complex
//! system `(G + jωC)·x = b` is solved at each requested frequency. The
//! complex system is solved through its real-equivalent block form
//!
//! ```text
//! ┌ G  −ωC ┐ ┌ Re x ┐   ┌ Re b ┐
//! └ ωC   G ┘ └ Im x ┘ = └ Im b ┘
//! ```
//!
//! which reuses the real sparse LU unchanged.

use super::dc::{operating_point, DcOpts, Solution};
use super::{NewtonOpts, System};
use crate::error::{Error, Result};
use crate::matrix::sparse::Triplets;
use crate::netlist::{Circuit, Element, NodeId};
use crate::nonlinear::{DeviceStamps, EvalCtx};

/// A complex phasor value.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Phasor {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Phasor {
    /// Magnitude.
    #[must_use]
    pub fn mag(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase in radians.
    #[must_use]
    pub fn phase(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Magnitude in decibels (20·log10).
    #[must_use]
    pub fn db(self) -> f64 {
        20.0 * self.mag().max(1e-300).log10()
    }
}

/// Result of an AC sweep.
#[derive(Debug, Clone)]
pub struct AcResult {
    freqs: Vec<f64>,
    /// `solutions[f][var]`, node variables then branch currents.
    solutions: Vec<Vec<Phasor>>,
    num_nodes: usize,
}

impl AcResult {
    /// Swept frequencies (Hz).
    #[must_use]
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Node phasor at sweep point `i`.
    #[must_use]
    pub fn voltage(&self, i: usize, node: NodeId) -> Phasor {
        let idx = node.index();
        if idx == 0 {
            Phasor::default()
        } else {
            self.solutions[i][idx - 1]
        }
    }

    /// `(freq, |v(node)|)` magnitude response.
    #[must_use]
    pub fn magnitude_curve(&self, node: NodeId) -> Vec<(f64, f64)> {
        self.freqs
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, self.voltage(i, node).mag()))
            .collect()
    }

    /// −3 dB corner relative to the first sweep point's magnitude
    /// (linear interpolation in log-log); `None` when never reached.
    #[must_use]
    pub fn corner_frequency(&self, node: NodeId) -> Option<f64> {
        let curve = self.magnitude_curve(node);
        let m0 = curve.first()?.1;
        let target = m0 / std::f64::consts::SQRT_2;
        for w in curve.windows(2) {
            let (f0, v0) = w[0];
            let (f1, v1) = w[1];
            if v0 > target && v1 <= target {
                let lf =
                    f0.ln() + (target.ln() - v0.ln()) * (f1.ln() - f0.ln()) / (v1.ln() - v0.ln());
                return Some(lf.exp());
            }
        }
        None
    }

    /// The underlying DC operating point is not stored; sweep length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// Whether the sweep is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// Number of circuit nodes (including ground).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }
}

/// Run an AC sweep: unit-magnitude stimulus on the voltage source named
/// `source`, at the given frequencies, around the DC operating point.
///
/// # Errors
/// * [`Error::UnknownSignal`] when the source does not exist;
/// * DC or factorisation errors.
pub fn ac_analysis(ckt: &Circuit, source: &str, freqs: &[f64]) -> Result<AcResult> {
    let _span = crate::trace::span("ac");
    let ac_branch = ckt
        .elements()
        .iter()
        .find_map(|e| match e {
            Element::VSource { name, branch, .. } if name == source => Some(*branch),
            _ => None,
        })
        .ok_or_else(|| Error::UnknownSignal {
            name: source.to_string(),
        })?;

    // DC operating point for linearisation.
    let op: Solution = operating_point(ckt, &DcOpts::default())?;
    let sys = System::new(ckt);
    let n = sys.nvars;
    let x = op.as_vec();

    // Assemble G (resistive part incl. device conductances) and C
    // (capacitive part) separately.
    let mut g_tri = Triplets::new(n);
    let mut c_tri = Triplets::new(n);
    let mut rhs = vec![0.0; n];
    let mut stamps: Vec<DeviceStamps> = ckt
        .devices()
        .iter()
        .map(|d| DeviceStamps::new(d.terminals().len()))
        .collect();
    let ctx = EvalCtx {
        temp: NewtonOpts::default().temp,
        gmin: 1e-12,
        time: 0.0,
    };
    // Conductance assembly (sources at DC values; RHS unused here).
    sys.assemble(x, 0.0, 1.0, &ctx, None, &mut g_tri, &mut rhs, &mut stamps);

    // Capacitances: linear capacitors + device ∂Q/∂V at the OP.
    for elem in ckt.elements() {
        if let Element::Capacitor {
            p, n: nn, farads, ..
        } = elem
        {
            let (vp, vn) = (sys.var_of(*p), sys.var_of(*nn));
            if let Some(a) = vp {
                c_tri.add(a, a, *farads);
            }
            if let Some(b) = vn {
                c_tri.add(b, b, *farads);
            }
            if let (Some(a), Some(b)) = (vp, vn) {
                c_tri.add(a, b, -farads);
                c_tri.add(b, a, -farads);
            }
        }
    }
    for (di, dev) in ckt.devices().iter().enumerate() {
        let terms = dev.terminals();
        let t = terms.len();
        let st = &mut stamps[di];
        st.clear();
        let vt: Vec<f64> = terms.iter().map(|&nd| sys.voltage(x, nd)).collect();
        dev.eval(&vt, st, &ctx);
        for (a, &term_a) in terms.iter().enumerate() {
            let Some(ra) = sys.var_of(term_a) else {
                continue;
            };
            for (b, &term_b) in terms.iter().enumerate() {
                let c = st.cq[a * t + b];
                if c != 0.0 {
                    if let Some(cb) = sys.var_of(term_b) {
                        c_tri.add(ra, cb, c);
                    }
                }
            }
        }
    }

    // Real-equivalent 2n system per frequency. The stamp order is
    // frequency-independent, so the cached solver's scatter plan and LU
    // pattern survive across the whole frequency grid: every frequency
    // after the first is a numeric-only refactorisation.
    let mut g_compressed = crate::matrix::CscMatrix::default();
    let mut c_compressed = crate::matrix::CscMatrix::default();
    g_tri.compress_into(&mut g_compressed);
    c_tri.compress_into(&mut c_compressed);
    let mut solver = crate::matrix::CachedSolver::new();
    let mut big = Triplets::new(2 * n);
    let mut solutions = Vec::with_capacity(freqs.len());
    for &f in freqs {
        let w = 2.0 * std::f64::consts::PI * f;
        big.clear();
        for (r, c, gv) in g_compressed.entries() {
            big.add(r, c, gv);
            big.add(n + r, n + c, gv);
        }
        for (r, c, cv) in c_compressed.entries() {
            big.add(r, n + c, -cv * w);
            big.add(n + r, c, cv * w);
        }
        let mut b = vec![0.0; 2 * n];
        // Unit AC stimulus on the chosen source branch; all other
        // sources are AC-grounded (their branch RHS stays 0 — note the
        // DC RHS is *not* reused: AC solves the perturbation).
        b[sys.branch_var(ac_branch)] = 1.0;
        let xs = solver.solve(&big, &b)?;
        let sol: Vec<Phasor> = (0..n)
            .map(|v| Phasor {
                re: xs[v],
                im: xs[n + v],
            })
            .collect();
        solutions.push(sol);
    }
    Ok(AcResult {
        freqs: freqs.to_vec(),
        solutions,
        num_nodes: sys.num_nodes,
    })
}

/// Logarithmically spaced frequencies, inclusive of both ends.
///
/// # Panics
/// Panics unless `0 < start < stop` and `points ≥ 2`.
#[must_use]
pub fn logspace(start: f64, stop: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2 && start > 0.0 && stop > start, "bad logspace");
    let (l0, l1) = (start.ln(), stop.ln());
    (0..points)
        .map(|i| (l0 + (l1 - l0) * i as f64 / (points - 1) as f64).exp())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    #[test]
    fn rc_lowpass_corner() {
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("out");
        ckt.vsource("VIN", a, Circuit::gnd(), Waveform::dc(0.0));
        ckt.resistor("R1", a, b, 1e3).unwrap();
        ckt.capacitor("C1", b, Circuit::gnd(), 1e-9).unwrap();
        // f_c = 1/(2πRC) ≈ 159.2 kHz.
        let freqs = logspace(1e3, 1e8, 101);
        let ac = ac_analysis(&ckt, "VIN", &freqs).unwrap();
        let fc = ac.corner_frequency(b).expect("corner in range");
        assert!(
            (fc - 159.2e3).abs() < 0.05 * 159.2e3,
            "corner {fc:.3e} vs 159.2 kHz"
        );
        // Low-frequency gain ≈ 1, high-frequency rolls off 20 dB/dec.
        let lo = ac.voltage(0, b).mag();
        assert!((lo - 1.0).abs() < 1e-3);
        let hi1 = ac.voltage(90, b);
        let hi2 = ac.voltage(95, b);
        let dec = (freqs[95] / freqs[90]).log10();
        let slope = (hi2.db() - hi1.db()) / dec;
        assert!((slope + 20.0).abs() < 1.0, "slope {slope:.1} dB/dec");
    }

    #[test]
    fn divider_is_frequency_flat() {
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("out");
        ckt.vsource("VIN", a, Circuit::gnd(), Waveform::dc(1.0));
        ckt.resistor("R1", a, b, 3e3).unwrap();
        ckt.resistor("R2", b, Circuit::gnd(), 1e3).unwrap();
        let ac = ac_analysis(&ckt, "VIN", &logspace(1e3, 1e9, 7)).unwrap();
        for i in 0..7 {
            let v = ac.voltage(i, b);
            assert!((v.mag() - 0.25).abs() < 1e-6);
            assert!(v.phase().abs() < 1e-6);
        }
    }

    #[test]
    fn phase_lags_through_the_pole() {
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("out");
        ckt.vsource("VIN", a, Circuit::gnd(), Waveform::dc(0.0));
        ckt.resistor("R1", a, b, 1e3).unwrap();
        ckt.capacitor("C1", b, Circuit::gnd(), 1e-9).unwrap();
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        let ac = ac_analysis(&ckt, "VIN", &[fc]).unwrap();
        // At the pole: 45° lag.
        let ph = ac.voltage(0, b).phase().to_degrees();
        assert!((ph + 45.0).abs() < 1.0, "phase {ph:.1}");
    }

    #[test]
    fn unknown_source_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R", a, Circuit::gnd(), 1e3).unwrap();
        assert!(matches!(
            ac_analysis(&ckt, "nope", &[1e3]),
            Err(Error::UnknownSignal { .. })
        ));
    }

    #[test]
    fn logspace_shape() {
        let f = logspace(1.0, 1000.0, 4);
        assert!((f[0] - 1.0).abs() < 1e-12);
        assert!((f[3] - 1000.0).abs() < 1e-9);
        assert!((f[1] - 10.0).abs() < 1e-9);
    }
}
