//! Simulation traces and waveform measurements.

use crate::error::{Error, Result};
use std::collections::HashMap;
use std::io::Write;

/// Edge direction for threshold-crossing searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Signal crosses the level going up.
    Rising,
    /// Signal crosses the level going down.
    Falling,
    /// Either direction.
    Either,
}

/// A recorded transient run: a shared time axis plus named signals.
///
/// Signal naming convention used by the engine:
/// * `v(<node>)` — node voltage,
/// * `i(<source>)` — voltage-source branch current (p→n through source),
/// * `e(<source>)` — cumulative energy delivered *by* that source,
/// * `<device>.<state>` — recorded device internal state.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    time: Vec<f64>,
    signals: Vec<Vec<f64>>,
    names: Vec<String>,
    index: HashMap<String, usize>,
    stats: crate::engine::SimStats,
}

impl Trace {
    /// Create an empty trace with the given signal names.
    #[must_use]
    pub fn with_signals(names: Vec<String>) -> Self {
        let index = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        let signals = names.iter().map(|_| Vec::new()).collect();
        Self {
            time: Vec::new(),
            signals,
            names,
            index,
            stats: crate::engine::SimStats::default(),
        }
    }

    /// Solver work counters for the run that produced this trace
    /// (Newton iterations, factorisations, accepted/rejected steps).
    #[must_use]
    pub fn stats(&self) -> crate::engine::SimStats {
        self.stats
    }

    pub(crate) fn set_stats(&mut self, stats: crate::engine::SimStats) {
        self.stats = stats;
    }

    /// Append one time point. `values` must match the signal count.
    ///
    /// # Panics
    /// Panics if `values.len()` differs from the declared signal count.
    pub fn push(&mut self, t: f64, values: &[f64]) {
        assert_eq!(values.len(), self.signals.len(), "signal count mismatch");
        self.time.push(t);
        for (sig, &v) in self.signals.iter_mut().zip(values) {
            sig.push(v);
        }
    }

    /// The time axis (seconds).
    #[must_use]
    pub fn time(&self) -> &[f64] {
        &self.time
    }

    /// Number of recorded points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// All signal names in recording order.
    #[must_use]
    pub fn signal_names(&self) -> &[String] {
        &self.names
    }

    /// Samples of a named signal.
    ///
    /// # Errors
    /// [`Error::UnknownSignal`] when the name was never recorded.
    pub fn signal(&self, name: &str) -> Result<&[f64]> {
        self.index
            .get(name)
            .map(|&i| self.signals[i].as_slice())
            .ok_or_else(|| Error::UnknownSignal {
                name: name.to_string(),
            })
    }

    /// Shorthand for `signal("v(<node>)")`.
    ///
    /// # Errors
    /// [`Error::UnknownSignal`] if the node voltage was not recorded.
    pub fn voltage(&self, node: &str) -> Result<&[f64]> {
        self.signal(&format!("v({node})"))
    }

    /// Shorthand for `signal("i(<source>)")`.
    ///
    /// # Errors
    /// [`Error::UnknownSignal`] if the source current was not recorded.
    pub fn current(&self, source: &str) -> Result<&[f64]> {
        self.signal(&format!("i({source})"))
    }

    /// Linear interpolation of a signal at time `t` (clamped to the ends).
    ///
    /// # Errors
    /// [`Error::UnknownSignal`] for unrecorded names.
    pub fn value_at(&self, name: &str, t: f64) -> Result<f64> {
        let y = self.signal(name)?;
        if self.time.is_empty() {
            return Ok(0.0);
        }
        if t <= self.time[0] {
            return Ok(y[0]);
        }
        if t >= *self.time.last().expect("non-empty") {
            return Ok(*y.last().expect("non-empty"));
        }
        let idx = self.time.partition_point(|&ti| ti <= t);
        let (t0, t1) = (self.time[idx - 1], self.time[idx]);
        let (y0, y1) = (y[idx - 1], y[idx]);
        Ok(if t1 == t0 {
            y1
        } else {
            y0 + (y1 - y0) * (t - t0) / (t1 - t0)
        })
    }

    /// Time of the `nth` (1-based) crossing of `level` with the requested
    /// edge, linearly interpolated. `None` if it never happens.
    ///
    /// # Errors
    /// [`Error::UnknownSignal`] for unrecorded names.
    pub fn cross(&self, name: &str, level: f64, edge: Edge, nth: usize) -> Result<Option<f64>> {
        let y = self.signal(name)?;
        let mut seen = 0usize;
        for k in 1..y.len() {
            let (a, b) = (y[k - 1], y[k]);
            let rising = a < level && b >= level;
            let falling = a > level && b <= level;
            let hit = match edge {
                Edge::Rising => rising,
                Edge::Falling => falling,
                Edge::Either => rising || falling,
            };
            if hit {
                seen += 1;
                if seen == nth {
                    let frac = if (b - a).abs() < f64::MIN_POSITIVE {
                        0.0
                    } else {
                        (level - a) / (b - a)
                    };
                    return Ok(Some(
                        self.time[k - 1] + frac * (self.time[k] - self.time[k - 1]),
                    ));
                }
            }
        }
        Ok(None)
    }

    /// Trapezoidal integral of a signal over the whole record.
    ///
    /// # Errors
    /// [`Error::UnknownSignal`] for unrecorded names.
    pub fn integral(&self, name: &str) -> Result<f64> {
        let y = self.signal(name)?;
        let mut acc = 0.0;
        for k in 1..y.len() {
            acc += 0.5 * (y[k] + y[k - 1]) * (self.time[k] - self.time[k - 1]);
        }
        Ok(acc)
    }

    /// Final value of a signal (`0.0` when the record is empty).
    ///
    /// # Errors
    /// [`Error::UnknownSignal`] for unrecorded names.
    pub fn final_value(&self, name: &str) -> Result<f64> {
        Ok(self.signal(name)?.last().copied().unwrap_or(0.0))
    }

    /// Total energy delivered by a named voltage source over the record
    /// (convenience for `final_value("e(<source>)")`).
    ///
    /// # Errors
    /// [`Error::UnknownSignal`] if the source energy was not recorded.
    pub fn source_energy(&self, source: &str) -> Result<f64> {
        self.final_value(&format!("e({source})"))
    }

    /// Maximum value of a signal.
    ///
    /// # Errors
    /// [`Error::UnknownSignal`] for unrecorded names.
    pub fn max(&self, name: &str) -> Result<f64> {
        Ok(self
            .signal(name)?
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max))
    }

    /// Minimum value of a signal.
    ///
    /// # Errors
    /// [`Error::UnknownSignal`] for unrecorded names.
    pub fn min(&self, name: &str) -> Result<f64> {
        Ok(self
            .signal(name)?
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min))
    }

    /// 10 %–90 % rise time of the `nth` low-to-high transition between
    /// levels `v_lo` and `v_hi`; `None` if the edge never completes.
    ///
    /// # Errors
    /// [`Error::UnknownSignal`] for unrecorded names.
    pub fn rise_time(&self, name: &str, v_lo: f64, v_hi: f64, nth: usize) -> Result<Option<f64>> {
        let span = v_hi - v_lo;
        let t10 = self.cross(name, v_lo + 0.1 * span, Edge::Rising, nth)?;
        let t90 = self.cross(name, v_lo + 0.9 * span, Edge::Rising, nth)?;
        Ok(match (t10, t90) {
            (Some(a), Some(b)) if b > a => Some(b - a),
            _ => None,
        })
    }

    /// 90 %–10 % fall time of the `nth` high-to-low transition.
    ///
    /// # Errors
    /// [`Error::UnknownSignal`] for unrecorded names.
    pub fn fall_time(&self, name: &str, v_lo: f64, v_hi: f64, nth: usize) -> Result<Option<f64>> {
        let span = v_hi - v_lo;
        let t90 = self.cross(name, v_lo + 0.9 * span, Edge::Falling, nth)?;
        let t10 = self.cross(name, v_lo + 0.1 * span, Edge::Falling, nth)?;
        Ok(match (t90, t10) {
            (Some(a), Some(b)) if b > a => Some(b - a),
            _ => None,
        })
    }

    /// Propagation delay from `from`'s `nth_from` crossing of `level`
    /// to `to`'s `nth_to` crossing, either edge.
    ///
    /// # Errors
    /// [`Error::UnknownSignal`] for unrecorded names.
    pub fn delay(
        &self,
        from: &str,
        to: &str,
        level: f64,
        nth_from: usize,
        nth_to: usize,
    ) -> Result<Option<f64>> {
        let a = self.cross(from, level, Edge::Either, nth_from)?;
        let b = self.cross(to, level, Edge::Either, nth_to)?;
        Ok(match (a, b) {
            (Some(a), Some(b)) => Some(b - a),
            _ => None,
        })
    }

    /// Period of a repetitive signal: spacing of consecutive rising
    /// crossings of `level`; `None` with fewer than two crossings.
    ///
    /// # Errors
    /// [`Error::UnknownSignal`] for unrecorded names.
    pub fn period(&self, name: &str, level: f64) -> Result<Option<f64>> {
        let t1 = self.cross(name, level, Edge::Rising, 1)?;
        let t2 = self.cross(name, level, Edge::Rising, 2)?;
        Ok(match (t1, t2) {
            (Some(a), Some(b)) => Some(b - a),
            _ => None,
        })
    }

    /// Write the trace as CSV (`time` column plus one column per signal,
    /// restricted to `columns` if non-empty).
    ///
    /// # Errors
    /// Propagates I/O errors from `w`; [`Error::UnknownSignal`] is raised
    /// as `io::ErrorKind::NotFound` for unknown column requests.
    pub fn write_csv<W: Write>(&self, w: &mut W, columns: &[&str]) -> std::io::Result<()> {
        let cols: Vec<usize> = if columns.is_empty() {
            (0..self.names.len()).collect()
        } else {
            columns
                .iter()
                .map(|c| {
                    self.index.get(*c).copied().ok_or_else(|| {
                        std::io::Error::new(std::io::ErrorKind::NotFound, format!("signal {c}"))
                    })
                })
                .collect::<std::io::Result<_>>()?
        };
        write!(w, "time")?;
        for &c in &cols {
            write!(w, ",{}", self.names[c])?;
        }
        writeln!(w)?;
        for k in 0..self.time.len() {
            write!(w, "{:.6e}", self.time[k])?;
            for &c in &cols {
                write!(w, ",{:.6e}", self.signals[c][k])?;
            }
            writeln!(w)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_trace() -> Trace {
        // v = t over [0, 4], i = 2 constant.
        let mut tr = Trace::with_signals(vec!["v(a)".into(), "i(V1)".into()]);
        for k in 0..=4 {
            let t = k as f64;
            tr.push(t, &[t, 2.0]);
        }
        tr
    }

    #[test]
    fn value_at_interpolates_and_clamps() {
        let tr = ramp_trace();
        assert_eq!(tr.value_at("v(a)", 2.5).unwrap(), 2.5);
        assert_eq!(tr.value_at("v(a)", -1.0).unwrap(), 0.0);
        assert_eq!(tr.value_at("v(a)", 99.0).unwrap(), 4.0);
    }

    #[test]
    fn cross_finds_rising_edge() {
        let tr = ramp_trace();
        let t = tr.cross("v(a)", 1.5, Edge::Rising, 1).unwrap().unwrap();
        assert!((t - 1.5).abs() < 1e-12);
        assert!(tr.cross("v(a)", 1.5, Edge::Falling, 1).unwrap().is_none());
        assert!(tr.cross("v(a)", 9.0, Edge::Rising, 1).unwrap().is_none());
    }

    #[test]
    fn nth_crossing() {
        let mut tr = Trace::with_signals(vec!["v(x)".into()]);
        for (t, v) in [(0.0, 0.0), (1.0, 1.0), (2.0, 0.0), (3.0, 1.0)] {
            tr.push(t, &[v]);
        }
        let t2 = tr.cross("v(x)", 0.5, Edge::Rising, 2).unwrap().unwrap();
        assert!((t2 - 2.5).abs() < 1e-12);
        let tf = tr.cross("v(x)", 0.5, Edge::Either, 2).unwrap().unwrap();
        assert!((tf - 1.5).abs() < 1e-12);
    }

    #[test]
    fn integral_of_ramp() {
        let tr = ramp_trace();
        assert!((tr.integral("v(a)").unwrap() - 8.0).abs() < 1e-12); // ∫t dt over [0,4]
        assert!((tr.integral("i(V1)").unwrap() - 8.0).abs() < 1e-12); // 2·4
    }

    #[test]
    fn unknown_signal_is_an_error() {
        let tr = ramp_trace();
        assert!(matches!(
            tr.signal("v(zz)"),
            Err(Error::UnknownSignal { .. })
        ));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let tr = ramp_trace();
        let mut buf = Vec::new();
        tr.write_csv(&mut buf, &["v(a)"]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "time,v(a)");
        assert_eq!(lines.len(), 6);
    }

    #[test]
    fn rise_and_fall_times() {
        // Triangle: up over 1 s, down over 2 s.
        let mut tr = Trace::with_signals(vec!["v(x)".into()]);
        for (t, v) in [(0.0, 0.0), (1.0, 1.0), (3.0, 0.0)] {
            tr.push(t, &[v]);
        }
        let rise = tr.rise_time("v(x)", 0.0, 1.0, 1).unwrap().unwrap();
        assert!((rise - 0.8).abs() < 1e-12, "rise {rise}");
        let fall = tr.fall_time("v(x)", 0.0, 1.0, 1).unwrap().unwrap();
        assert!((fall - 1.6).abs() < 1e-12, "fall {fall}");
    }

    #[test]
    fn delay_between_signals() {
        let mut tr = Trace::with_signals(vec!["v(a)".into(), "v(b)".into()]);
        for k in 0..=10 {
            let t = k as f64 * 0.1;
            let a = if t >= 0.2 { 1.0 } else { 0.0 };
            let b = if t >= 0.5 { 1.0 } else { 0.0 };
            tr.push(t, &[a, b]);
        }
        let d = tr.delay("v(a)", "v(b)", 0.5, 1, 1).unwrap().unwrap();
        assert!((d - 0.3).abs() < 0.02, "delay {d}");
    }

    #[test]
    fn period_of_square_wave() {
        let mut tr = Trace::with_signals(vec!["v(x)".into()]);
        for k in 0..40 {
            let t = k as f64 * 0.1;
            let v = if (t % 2.0) < 1.0 { 0.0 } else { 1.0 };
            tr.push(t, &[v]);
        }
        let p = tr.period("v(x)", 0.5).unwrap().unwrap();
        assert!((p - 2.0).abs() < 0.11, "period {p}");
    }

    #[test]
    fn min_max() {
        let tr = ramp_trace();
        assert_eq!(tr.max("v(a)").unwrap(), 4.0);
        assert_eq!(tr.min("v(a)").unwrap(), 0.0);
    }
}
