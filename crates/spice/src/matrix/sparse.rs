//! Sparse matrix storage and LU factorisation.
//!
//! Assembly happens in triplet form ([`Triplets`]); the solver compresses
//! to CSC ([`CscMatrix`]) and factors with a left-looking Gilbert–Peierls
//! LU with partial pivoting ([`SparseLu`]), the same algorithm family used
//! by CSparse/KLU. MNA matrices from circuit stamping are extremely sparse
//! (a handful of entries per row), which this path exploits.

use crate::error::{Error, Result};
use std::fmt;

/// Coordinate-format assembly buffer. Duplicate `(row, col)` entries are
/// summed during compression, which is exactly the MNA stamping semantic.
#[derive(Debug, Clone, Default)]
pub struct Triplets {
    n: usize,
    entries: Vec<(u32, u32, f64)>,
    /// Reusable sort scratch for [`Triplets::compress_into`].
    order: Vec<u32>,
}

impl Triplets {
    /// Create an assembly buffer for an `n × n` system.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            entries: Vec::new(),
            order: Vec::new(),
        }
    }

    /// System dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of raw (pre-merge) entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been stamped.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate the raw (pre-merge, duplicate-carrying) `(row, col, value)`
    /// stamps in insertion order. Used to recompute `b − A·x` residuals
    /// for convergence forensics without re-assembling.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.entries
            .iter()
            .map(|&(r, c, v)| (r as usize, c as usize, v))
    }

    /// Stamp `v` into `(row, col)`, accumulating with prior stamps.
    ///
    /// # Panics
    /// Panics (debug builds) if `row`/`col` exceed the dimension.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, v: f64) {
        debug_assert!(row < self.n && col < self.n, "stamp out of range");
        if v != 0.0 {
            self.entries.push((row as u32, col as u32, v));
        }
    }

    /// Drop all entries, keeping capacity (for per-iteration reassembly).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Compress into CSC form, summing duplicates.
    #[must_use]
    pub fn to_csc(&self) -> CscMatrix {
        let mut order = Vec::new();
        fill_order(&self.entries, &mut order);
        let mut out = CscMatrix::default();
        compress_ordered(self.n, &self.entries, &order, &mut out);
        out
    }

    /// Compress into `out`, reusing its buffers and this buffer's sort
    /// scratch. Produces exactly the same matrix as [`Triplets::to_csc`]
    /// without any per-call allocation once capacities have grown.
    pub fn compress_into(&mut self, out: &mut CscMatrix) {
        let mut order = std::mem::take(&mut self.order);
        fill_order(&self.entries, &mut order);
        compress_ordered(self.n, &self.entries, &order, out);
        self.order = order;
    }

    /// Borrow a [`RangeWriter`] over `entries[start..end]` for in-place
    /// restamping of a previously recorded coordinate range.
    ///
    /// # Panics
    /// Panics if `start..end` is not a valid entry range.
    pub fn range_writer(&mut self, start: usize, end: usize) -> RangeWriter<'_> {
        RangeWriter {
            n: self.n,
            entries: &mut self.entries[start..end],
            pos: 0,
            ok: true,
        }
    }
}

/// Sink for MNA stamps. Shared by [`Triplets`] (append) and
/// [`RangeWriter`] (overwrite-in-place), so the engine's stamping code
/// emits exactly the same value stream to either destination — which is
/// what keeps the incremental-assembly fast path bit-identical to a full
/// rebuild.
pub trait Stamper {
    /// Stamp `v` into `(row, col)`, accumulating with prior stamps.
    fn add(&mut self, row: usize, col: usize, v: f64);
}

impl Stamper for Triplets {
    #[inline]
    fn add(&mut self, row: usize, col: usize, v: f64) {
        Triplets::add(self, row, col, v);
    }
}

/// Overwrites the values of an existing [`Triplets`] entry range,
/// verifying that the replayed coordinate stream is identical to the
/// recorded one. Because [`Triplets::add`] drops exact zeros, a device
/// whose Jacobian entries cross zero emits a *different* stream; the
/// writer detects the mismatch (count or coordinates) and the caller
/// must fall back to a full reassembly for that iteration.
#[derive(Debug)]
pub struct RangeWriter<'a> {
    n: usize,
    entries: &'a mut [(u32, u32, f64)],
    pos: usize,
    ok: bool,
}

impl RangeWriter<'_> {
    /// Whether every stamp so far matched the recorded coordinates and
    /// the range was filled exactly. Call after replaying the stream.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.ok && self.pos == self.entries.len()
    }
}

impl Stamper for RangeWriter<'_> {
    #[inline]
    fn add(&mut self, row: usize, col: usize, v: f64) {
        debug_assert!(row < self.n && col < self.n, "stamp out of range");
        if v == 0.0 {
            return; // mirror Triplets::add's zero-dropping
        }
        if self.pos < self.entries.len() {
            let e = &mut self.entries[self.pos];
            if e.0 == row as u32 && e.1 == col as u32 {
                e.2 = v;
                self.pos += 1;
                return;
            }
        }
        self.ok = false;
    }
}

/// Column-major sort order of `entries` as an index array. Ties (duplicate
/// coordinates) keep stamping order, so duplicate merging is deterministic
/// and sums in the same order [`ScatterMap::scatter`] accumulates in —
/// which keeps the cached and uncached assembly paths bit-identical.
fn fill_order(entries: &[(u32, u32, f64)], order: &mut Vec<u32>) {
    order.clear();
    order.extend(0..entries.len() as u32);
    order.sort_unstable_by_key(|&i| {
        let (r, c, _) = entries[i as usize];
        ((u64::from(c) << 32) | u64::from(r), i)
    });
}

/// Compress `entries` (visited in `order`) into `out`, summing duplicates.
fn compress_ordered(n: usize, entries: &[(u32, u32, f64)], order: &[u32], out: &mut CscMatrix) {
    out.n = n;
    out.col_ptr.clear();
    out.col_ptr.resize(n + 1, 0);
    out.row_idx.clear();
    out.vals.clear();
    let mut prev: Option<(u32, u32)> = None;
    for &i in order {
        let (r, c, v) = entries[i as usize];
        if prev == Some((r, c)) {
            *out.vals.last_mut().expect("merge target exists") += v;
        } else {
            out.row_idx.push(r as usize);
            out.vals.push(v);
            out.col_ptr[c as usize + 1] += 1;
            prev = Some((r, c));
        }
    }
    for c in 0..n {
        out.col_ptr[c + 1] += out.col_ptr[c];
    }
}

/// Precomputed triplet-to-CSC scatter plan for one assembly *pattern*.
///
/// MNA stamping emits the same coordinate stream every Newton iteration
/// (values change, structure does not). Building this map once per
/// topology turns each subsequent compression into a single linear pass —
/// no sort, no merge bookkeeping, no allocation.
#[derive(Debug, Clone, Default)]
pub struct ScatterMap {
    n: usize,
    /// Coordinate stream the map was built from, for cheap validity checks.
    coords: Vec<(u32, u32)>,
    /// `slots[i]` = CSC value slot entry `i` accumulates into.
    slots: Vec<u32>,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
}

impl ScatterMap {
    /// Build the scatter plan for `t`'s current coordinate stream.
    #[must_use]
    pub fn build(t: &Triplets) -> Self {
        let mut order = Vec::new();
        fill_order(&t.entries, &mut order);
        let coords: Vec<(u32, u32)> = t.entries.iter().map(|&(r, c, _)| (r, c)).collect();
        let mut slots = vec![0u32; t.entries.len()];
        let mut col_ptr = vec![0usize; t.n + 1];
        let mut row_idx = Vec::new();
        let mut prev: Option<(u32, u32)> = None;
        for &i in &order {
            let (r, c) = coords[i as usize];
            if prev != Some((r, c)) {
                row_idx.push(r as usize);
                col_ptr[c as usize + 1] += 1;
                prev = Some((r, c));
            }
            slots[i as usize] = (row_idx.len() - 1) as u32;
        }
        for c in 0..t.n {
            col_ptr[c + 1] += col_ptr[c];
        }
        Self {
            n: t.n,
            coords,
            slots,
            col_ptr,
            row_idx,
        }
    }

    /// Whether `t`'s coordinate stream is the one this map was built from.
    #[must_use]
    pub fn matches(&self, t: &Triplets) -> bool {
        t.n == self.n
            && t.entries.len() == self.coords.len()
            && t.entries
                .iter()
                .zip(&self.coords)
                .all(|(&(r, c, _), &(mr, mc))| r == mr && c == mc)
    }

    /// Scatter `t`'s values into `out` along the precomputed plan.
    /// Duplicates accumulate in stamping order, matching
    /// [`Triplets::to_csc`] bit for bit.
    ///
    /// # Panics
    /// Panics (debug builds) when `t` does not [`match`](Self::matches)
    /// this map.
    pub fn scatter(&self, t: &Triplets, out: &mut CscMatrix) {
        debug_assert!(self.matches(t), "scatter plan is stale");
        out.n = self.n;
        out.col_ptr.clear();
        out.col_ptr.extend_from_slice(&self.col_ptr);
        out.row_idx.clear();
        out.row_idx.extend_from_slice(&self.row_idx);
        out.vals.clear();
        out.vals.resize(self.row_idx.len(), 0.0);
        for (&(_, _, v), &slot) in t.entries.iter().zip(&self.slots) {
            out.vals[slot as usize] += v;
        }
    }
}

/// Compressed sparse column matrix.
#[derive(Clone, Default, PartialEq)]
pub struct CscMatrix {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl fmt::Debug for CscMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CscMatrix {}x{} nnz={}", self.n, self.n, self.vals.len())
    }
}

impl CscMatrix {
    /// System dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.dim()`.
    #[must_use]
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for (c, &xc) in x.iter().enumerate() {
            if xc == 0.0 {
                continue;
            }
            for p in self.col_ptr[c]..self.col_ptr[c + 1] {
                y[self.row_idx[p]] += self.vals[p] * xc;
            }
        }
        y
    }

    /// Iterate over stored `(row, col, value)` entries in column order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |c| {
            (self.col_ptr[c]..self.col_ptr[c + 1]).map(move |p| (self.row_idx[p], c, self.vals[p]))
        })
    }

    /// Dense round-trip, for debugging and reference comparison.
    #[must_use]
    pub fn to_dense(&self) -> super::dense::DenseMatrix {
        let mut d = super::dense::DenseMatrix::zeros(self.n, self.n);
        for c in 0..self.n {
            for p in self.col_ptr[c]..self.col_ptr[c + 1] {
                d[(self.row_idx[p], c)] += self.vals[p];
            }
        }
        d
    }
}

/// Fill-reducing symmetric pre-ordering: minimum degree on the adjacency
/// graph of `A + Aᵀ` (diagonal ignored), the AMD family of heuristics.
/// Returns `perm` with `perm[new] = old` — eliminate `perm[0]` first.
///
/// Elimination merges each pivot's neighbourhood into a clique, exactly
/// mirroring where LU fill would appear; picking the minimum-degree node
/// (smallest index on ties, so the order is deterministic) keeps those
/// cliques small. MNA matrices are small enough (thousands of variables)
/// that the simple quadratic min-degree scan is irrelevant next to the
/// factorisations the ordering speeds up.
#[must_use]
pub fn amd_order(a: &CscMatrix) -> Vec<usize> {
    let n = a.n;
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in 0..n {
        for p in a.col_ptr[c]..a.col_ptr[c + 1] {
            let r = a.row_idx[p];
            if r != c {
                adj[r].push(c);
                adj[c].push(r);
            }
        }
    }
    // Dedup the symmetrised adjacency with a mark array.
    let mut mark = vec![usize::MAX; n];
    for (i, list) in adj.iter_mut().enumerate() {
        list.retain(|&j| {
            if mark[j] == i {
                false
            } else {
                mark[j] = i;
                true
            }
        });
    }
    let mut eliminated = vec![false; n];
    let mut perm = Vec::with_capacity(n);
    let mut gen = n; // marker values 0..n were consumed by the dedup pass
    for _ in 0..n {
        let mut k = usize::MAX;
        let mut deg = usize::MAX;
        for (v, list) in adj.iter().enumerate() {
            if !eliminated[v] && list.len() < deg {
                deg = list.len();
                k = v;
            }
        }
        eliminated[k] = true;
        perm.push(k);
        // Clique-merge: the pivot's (uneliminated) neighbours become
        // mutually adjacent, and the pivot leaves every list.
        let nbrs = std::mem::take(&mut adj[k]);
        for &v in &nbrs {
            gen += 1;
            mark[v] = gen; // no self-loops
            mark[k] = gen; // pivot is gone
            let mut list = std::mem::take(&mut adj[v]);
            list.retain(|&j| {
                if mark[j] == gen || eliminated[j] {
                    false
                } else {
                    mark[j] = gen;
                    true
                }
            });
            for &w in &nbrs {
                if mark[w] != gen {
                    mark[w] = gen;
                    list.push(w);
                }
            }
            adj[v] = list;
        }
    }
    perm
}

/// Precomputed symmetric-permutation plan for one sparsity pattern:
/// maps value slots of the original matrix straight into the permuted
/// matrix `B = P A Pᵀ` (`B[pinv[r], pinv[c]] = A[r, c]`), so refreshing
/// the permuted values each Newton iteration is a single linear pass.
#[derive(Debug, Clone)]
pub struct PermutePlan {
    /// `perm[new] = old`.
    perm: Vec<usize>,
    /// `permuted.vals[k] = a.vals[map[k]]`.
    map: Vec<usize>,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
}

impl PermutePlan {
    /// Build the plan for `a`'s pattern under `perm` (`perm[new] = old`).
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..a.dim()`.
    #[must_use]
    pub fn build(a: &CscMatrix, perm: Vec<usize>) -> Self {
        let n = a.n;
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let mut pinv = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            pinv[old] = new;
        }
        assert!(pinv.iter().all(|&p| p != usize::MAX), "not a permutation");
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_idx = Vec::with_capacity(a.nnz());
        let mut map = Vec::with_capacity(a.nnz());
        let mut tmp: Vec<(usize, usize)> = Vec::new();
        for (nc, &oc) in perm.iter().enumerate() {
            tmp.clear();
            for p in a.col_ptr[oc]..a.col_ptr[oc + 1] {
                tmp.push((pinv[a.row_idx[p]], p));
            }
            tmp.sort_unstable();
            for &(r, p) in &tmp {
                row_idx.push(r);
                map.push(p);
            }
            col_ptr[nc + 1] = row_idx.len();
        }
        Self {
            perm,
            map,
            col_ptr,
            row_idx,
        }
    }

    /// Whether this plan can permute `a` (dimension and nnz agree; the
    /// caller is responsible for rebuilding on genuine pattern changes).
    #[must_use]
    pub fn compatible(&self, a: &CscMatrix) -> bool {
        a.n == self.perm.len() && a.nnz() == self.map.len()
    }

    /// Write `P a Pᵀ` into `out`, reusing its buffers.
    ///
    /// # Panics
    /// Panics if `a` is not [`compatible`](Self::compatible).
    pub fn apply(&self, a: &CscMatrix, out: &mut CscMatrix) {
        assert!(self.compatible(a), "permute plan is stale");
        out.n = self.perm.len();
        out.col_ptr.clear();
        out.col_ptr.extend_from_slice(&self.col_ptr);
        out.row_idx.clear();
        out.row_idx.extend_from_slice(&self.row_idx);
        out.vals.clear();
        out.vals.extend(self.map.iter().map(|&p| a.vals[p]));
    }

    /// Permute a right-hand side: `out[new] = b[perm[new]]`.
    pub fn permute_vec(&self, b: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.perm.iter().map(|&old| b[old]));
    }

    /// Un-permute a solution: `out[perm[new]] = xp[new]`.
    pub fn unpermute_vec(&self, xp: &[f64], out: &mut Vec<f64>) {
        out.resize(xp.len(), 0.0);
        for (new, &old) in self.perm.iter().enumerate() {
            out[old] = xp[new];
        }
    }
}

/// Left-looking sparse LU factors with partial pivoting.
///
/// Row indices of `L`/`U` are in *pivotal* order after factorisation;
/// [`SparseLu::solve`] applies the row permutation internally. The
/// factors retain the input matrix's sparsity pattern so
/// [`SparseLu::refactor`] can redo the numeric work alone (KLU-style)
/// when the same topology is factored again with new values.
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    l_colptr: Vec<usize>,
    l_rowidx: Vec<usize>,
    l_vals: Vec<f64>,
    u_colptr: Vec<usize>,
    u_rowidx: Vec<usize>,
    u_vals: Vec<f64>,
    /// `pinv[original_row] = pivotal position`.
    pinv: Vec<isize>,
    /// Pattern of the matrix these factors were computed from, used to
    /// decide whether a numeric-only refactorisation is valid.
    a_colptr: Vec<usize>,
    a_rowidx: Vec<usize>,
    /// Dense accumulator reused across [`SparseLu::refactor`] calls.
    work: Vec<f64>,
}

/// Which path [`SparseLu::refactor`] ended up taking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refactorization {
    /// Pivot order and sparsity pattern were reused; only the numeric
    /// values were recomputed.
    Numeric,
    /// A full factorisation ran (pattern changed, or a reused pivot
    /// degraded below the stability threshold).
    Full,
}

/// Partial-pivot threshold: prefer the diagonal when it is within this
/// factor of the column maximum (reduces fill while staying stable).
const PIVOT_TOL: f64 = 0.1;
/// Absolute pivot floor below which the matrix is declared singular.
const PIVOT_EPS: f64 = 1e-300;

impl SparseLu {
    /// Stored nonzeros of `L + U`, counting the (shared) diagonal once —
    /// the numerator of the fill-in ratio `nnz(L+U) / nnz(A)`.
    #[must_use]
    pub fn lu_nnz(&self) -> usize {
        // L carries a unit diagonal and U the pivot diagonal; drop one.
        (self.l_vals.len() + self.u_vals.len()).saturating_sub(self.n)
    }

    /// Factor `a` (which must be square by construction).
    ///
    /// # Errors
    /// Returns [`Error::SingularMatrix`] when no acceptable pivot exists
    /// in some column.
    pub fn factor(a: &CscMatrix) -> Result<Self> {
        let n = a.n;
        let mut lu = Self {
            n,
            l_colptr: vec![0; n + 1],
            l_rowidx: Vec::with_capacity(a.nnz() * 4),
            l_vals: Vec::with_capacity(a.nnz() * 4),
            u_colptr: vec![0; n + 1],
            u_rowidx: Vec::with_capacity(a.nnz() * 4),
            u_vals: Vec::with_capacity(a.nnz() * 4),
            pinv: vec![-1; n],
            a_colptr: a.col_ptr.clone(),
            a_rowidx: a.row_idx.clone(),
            work: vec![0.0; n],
        };
        let mut x = vec![0.0f64; n];
        let mut xi = vec![0usize; 2 * n]; // pattern stack + DFS stack
        let mut mark = vec![0u32; n];
        let mut mark_gen = 0u32;

        for k in 0..n {
            lu.l_colptr[k] = lu.l_vals.len();
            lu.u_colptr[k] = lu.u_vals.len();

            // Sparse triangular solve x = L \ A(:,k): find reachable set
            // via DFS over the partially built L, then solve in topological
            // order (reverse DFS postorder).
            mark_gen += 1;
            let top = lu.reach(a, k, &mut xi, &mut mark, mark_gen);
            for p in a.col_ptr[k]..a.col_ptr[k + 1] {
                x[a.row_idx[p]] = a.vals[p];
            }
            for &j in &xi[top..n] {
                let jp = lu.pinv[j];
                if jp < 0 {
                    continue; // row not yet pivotal: x[j] is final
                }
                let jp = jp as usize;
                // Column jp of L is complete (jp < k); its first entry is
                // the (unit) diagonal.
                let start = lu.l_colptr[jp];
                let end = lu.l_colptr[jp + 1];
                let xj = x[j] / lu.l_vals[start];
                x[j] = xj;
                for p in start + 1..end {
                    x[lu.l_rowidx[p]] -= lu.l_vals[p] * xj;
                }
            }

            // Pivot search among not-yet-pivotal rows.
            let mut ipiv: isize = -1;
            let mut amax = -1.0f64;
            for &i in &xi[top..n] {
                if lu.pinv[i] < 0 {
                    let t = x[i].abs();
                    if t > amax {
                        amax = t;
                        ipiv = i as isize;
                    }
                } else {
                    lu.u_rowidx.push(lu.pinv[i] as usize);
                    lu.u_vals.push(x[i]);
                }
            }
            if ipiv < 0 || amax <= PIVOT_EPS {
                return Err(Error::SingularMatrix { index: k });
            }
            // Prefer the natural diagonal when acceptable (less fill).
            if lu.pinv[k] < 0 && x[k].abs() >= amax * PIVOT_TOL {
                ipiv = k as isize;
            }
            let ipiv = ipiv as usize;
            let pivot = x[ipiv];
            lu.u_rowidx.push(k);
            lu.u_vals.push(pivot);
            lu.pinv[ipiv] = k as isize;
            lu.l_rowidx.push(ipiv);
            lu.l_vals.push(1.0);
            for &i in &xi[top..n] {
                if lu.pinv[i] < 0 {
                    lu.l_rowidx.push(i);
                    lu.l_vals.push(x[i] / pivot);
                }
                x[i] = 0.0;
            }
        }
        lu.l_colptr[n] = lu.l_vals.len();
        lu.u_colptr[n] = lu.u_vals.len();
        // Remap L's row indices into pivotal order.
        for idx in &mut lu.l_rowidx {
            *idx = lu.pinv[*idx] as usize;
        }
        Ok(lu)
    }

    /// Factor `a` again, reusing the stored pivot order and `L`/`U`
    /// sparsity pattern when `a` has the same pattern these factors were
    /// built from (KLU-style numeric refactorisation — no DFS, no pivot
    /// search, no allocation). Falls back to a full [`SparseLu::factor`]
    /// when the pattern differs or a reused pivot degrades below the
    /// partial-pivoting threshold, so the result is always as accurate
    /// as a fresh factorisation. For an unchanged pattern the numeric
    /// path performs the same arithmetic in the same order as `factor`,
    /// so the factors are bit-identical.
    ///
    /// # Errors
    /// Returns [`Error::SingularMatrix`] when the fallback full
    /// factorisation fails.
    pub fn refactor(&mut self, a: &CscMatrix) -> Result<Refactorization> {
        if a.n != self.n || a.col_ptr != self.a_colptr || a.row_idx != self.a_rowidx {
            *self = Self::factor(a)?;
            return Ok(Refactorization::Full);
        }
        if self.refactor_numeric(a) {
            Ok(Refactorization::Numeric)
        } else {
            *self = Self::factor(a)?;
            Ok(Refactorization::Full)
        }
    }

    /// Numeric-only refactorisation along the stored pattern. Returns
    /// `false` (leaving partially updated values that the caller must
    /// replace via full factorisation) when a reused pivot is no longer
    /// acceptable.
    fn refactor_numeric(&mut self, a: &CscMatrix) -> bool {
        let n = self.n;
        let mut x = std::mem::take(&mut self.work);
        x.resize(n, 0.0);
        let mut ok = true;
        for k in 0..n {
            // Scatter A(:,k) in pivotal row coordinates. The pattern
            // matched, so every index is inside the stored reach set.
            for p in a.col_ptr[k]..a.col_ptr[k + 1] {
                x[self.pinv[a.row_idx[p]] as usize] = a.vals[p];
            }
            let u_start = self.u_colptr[k];
            let u_end = self.u_colptr[k + 1];
            let ls = self.l_colptr[k];
            let le = self.l_colptr[k + 1];
            // Eliminate with the already-rebuilt columns of L, walking
            // the stored U rows — they are in topological order, exactly
            // the order `factor` discovered them in.
            for p in u_start..u_end - 1 {
                let j = self.u_rowidx[p];
                let xj = x[j];
                self.u_vals[p] = xj;
                if xj != 0.0 {
                    for q in self.l_colptr[j] + 1..self.l_colptr[j + 1] {
                        x[self.l_rowidx[q]] -= self.l_vals[q] * xj;
                    }
                }
            }
            // The stored pivot row for column k is L's unit-diagonal
            // slot; check it still dominates its column well enough.
            let pivot = x[k];
            let mut amax = pivot.abs();
            for q in ls + 1..le {
                amax = amax.max(x[self.l_rowidx[q]].abs());
            }
            if !pivot.is_finite() || pivot.abs() <= PIVOT_EPS || pivot.abs() < amax * PIVOT_TOL {
                // Pivot degraded: clear the touched entries and bail out
                // to a full factorisation with fresh pivoting.
                for p in u_start..u_end - 1 {
                    x[self.u_rowidx[p]] = 0.0;
                }
                x[k] = 0.0;
                for q in ls + 1..le {
                    x[self.l_rowidx[q]] = 0.0;
                }
                ok = false;
                break;
            }
            self.u_vals[u_end - 1] = pivot;
            self.l_vals[ls] = 1.0;
            for q in ls + 1..le {
                let i = self.l_rowidx[q];
                self.l_vals[q] = x[i] / pivot;
                x[i] = 0.0;
            }
            for p in u_start..u_end - 1 {
                x[self.u_rowidx[p]] = 0.0;
            }
            x[k] = 0.0;
        }
        self.work = x;
        ok
    }

    /// DFS reachability of column `k`'s pattern over the partial `L`.
    /// Returns `top` such that `xi[top..n]` holds the pattern in
    /// topological order. `xi[n..2n]` is scratch for the edge-position
    /// stack.
    fn reach(
        &self,
        a: &CscMatrix,
        k: usize,
        xi: &mut [usize],
        mark: &mut [u32],
        gen: u32,
    ) -> usize {
        let n = self.n;
        let mut top = n;
        for p in a.col_ptr[k]..a.col_ptr[k + 1] {
            let root = a.row_idx[p];
            if mark[root] == gen {
                continue;
            }
            // Iterative DFS from `root`.
            let mut head = 0usize;
            xi[0] = root;
            while head != usize::MAX {
                let j = xi[head];
                if mark[j] != gen {
                    mark[j] = gen;
                    // Start of column scan for this node.
                    xi[n + head] = match self.pinv[j] {
                        jp if jp >= 0 => self.l_colptr[jp as usize] + 1,
                        _ => usize::MAX, // leaf: no outgoing edges
                    };
                }
                let mut done = true;
                if xi[n + head] != usize::MAX {
                    // Non-leaf: column pinv[j] of L is complete.
                    let jp = self.pinv[j] as usize;
                    let end = self.l_colptr[jp + 1];
                    let mut pos = xi[n + head];
                    while pos < end {
                        let i = self.l_rowidx[pos];
                        pos += 1;
                        if mark[i] != gen {
                            xi[n + head] = pos;
                            head += 1;
                            xi[head] = i;
                            done = false;
                            break;
                        }
                    }
                    if done {
                        xi[n + head] = end;
                    }
                }
                if done {
                    // Postorder: push onto the pattern (reverse topological).
                    top -= 1;
                    // Move finished node into the output region. We must be
                    // careful not to clobber the DFS stack below `head`.
                    let node = xi[head];
                    if head == 0 {
                        head = usize::MAX;
                    } else {
                        head -= 1;
                    }
                    xi[top] = node;
                }
            }
        }
        top
    }

    /// Solve `a * x = b` with the stored factors.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the factored dimension.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        assert_eq!(b.len(), n);
        // x = P b
        let mut x = vec![0.0; n];
        for (i, &bi) in b.iter().enumerate() {
            x[self.pinv[i] as usize] = bi;
        }
        // L x = x (unit-diagonal first entry per column).
        for j in 0..n {
            let start = self.l_colptr[j];
            let end = self.l_colptr[j + 1];
            let xj = x[j] / self.l_vals[start];
            x[j] = xj;
            for p in start + 1..end {
                x[self.l_rowidx[p]] -= self.l_vals[p] * xj;
            }
        }
        // U x = x (diagonal is last entry per column).
        for j in (0..n).rev() {
            let start = self.u_colptr[j];
            let end = self.u_colptr[j + 1];
            let xj = x[j] / self.u_vals[end - 1];
            x[j] = xj;
            for p in start..end - 1 {
                x[self.u_rowidx[p]] -= self.u_vals[p] * xj;
            }
        }
        x
    }
}

/// Solve a triplet-assembled system in one call (factor + solve).
///
/// # Errors
/// Propagates [`Error::SingularMatrix`] from factorisation.
pub fn solve_triplets(t: &Triplets, b: &[f64]) -> Result<Vec<f64>> {
    let lu = SparseLu::factor(&t.to_csc())?;
    Ok(lu.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::dense::DenseMatrix;

    fn residual(t: &Triplets, x: &[f64], b: &[f64]) -> f64 {
        let y = t.to_csc().mul_vec(x);
        y.iter()
            .zip(b)
            .map(|(yi, bi)| (yi - bi).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn triplets_merge_duplicates() {
        let mut t = Triplets::new(2);
        t.add(0, 0, 1.0);
        t.add(0, 0, 2.0);
        t.add(1, 1, 4.0);
        let csc = t.to_csc();
        assert_eq!(csc.nnz(), 2);
        let d = csc.to_dense();
        assert_eq!(d[(0, 0)], 3.0);
        assert_eq!(d[(1, 1)], 4.0);
    }

    #[test]
    fn solves_diagonal() {
        let mut t = Triplets::new(3);
        for i in 0..3 {
            t.add(i, i, (i + 1) as f64);
        }
        let x = solve_triplets(&t, &[1.0, 4.0, 9.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_asymmetric_with_pivoting() {
        let mut t = Triplets::new(3);
        // Zero diagonal head forces pivoting.
        t.add(0, 1, 2.0);
        t.add(0, 2, 1.0);
        t.add(1, 0, 1.0);
        t.add(1, 1, 1.0);
        t.add(2, 0, 3.0);
        t.add(2, 2, -1.0);
        let b = [4.0, 3.0, 2.0];
        let x = solve_triplets(&t, &b).unwrap();
        assert!(residual(&t, &x, &b) < 1e-12, "residual too large");
    }

    #[test]
    fn singular_detected() {
        let mut t = Triplets::new(2);
        t.add(0, 0, 1.0);
        t.add(1, 0, 1.0); // column 1 empty -> singular
        assert!(matches!(
            solve_triplets(&t, &[1.0, 1.0]),
            Err(Error::SingularMatrix { .. })
        ));
    }

    #[test]
    fn matches_dense_on_mna_like_pattern() {
        // Typical MNA: SPD-ish conductance block plus voltage-source rows.
        let mut t = Triplets::new(4);
        let mut d = DenseMatrix::zeros(4, 4);
        let entries = [
            (0, 0, 2.0),
            (0, 1, -1.0),
            (1, 0, -1.0),
            (1, 1, 3.0),
            (1, 2, -2.0),
            (2, 1, -2.0),
            (2, 2, 2.0),
            (0, 3, 1.0),
            (3, 0, 1.0),
        ];
        for (r, c, v) in entries {
            t.add(r, c, v);
            d.add(r, c, v);
        }
        let b = [1.0, 0.0, 0.5, 1.8];
        let xs = solve_triplets(&t, &b).unwrap();
        let xd = d.solve(&b).unwrap();
        for (a, bv) in xs.iter().zip(&xd) {
            assert!((a - bv).abs() < 1e-10, "sparse {a} vs dense {bv}");
        }
    }

    #[test]
    fn larger_random_system_matches_dense() {
        // Deterministic pseudo-random system with guaranteed diagonal
        // dominance (always solvable).
        let n = 40;
        let mut t = Triplets::new(n);
        let mut d = DenseMatrix::zeros(n, n);
        let mut state = 0x1234_5678u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for i in 0..n {
            for _ in 0..4 {
                let j = ((rng() + 0.5) * n as f64) as usize % n;
                let v = rng();
                t.add(i, j, v);
                d.add(i, j, v);
            }
            t.add(i, i, 10.0);
            d.add(i, i, 10.0);
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let xs = solve_triplets(&t, &b).unwrap();
        let xd = d.solve(&b).unwrap();
        for (a, bv) in xs.iter().zip(&xd) {
            assert!((a - bv).abs() < 1e-8, "sparse {a} vs dense {bv}");
        }
    }

    /// A small asymmetric system with duplicates and an empty column gap.
    fn sample_triplets() -> Triplets {
        let mut t = Triplets::new(4);
        t.add(0, 0, 2.0);
        t.add(0, 0, 0.5); // duplicate
        t.add(1, 0, -1.0);
        t.add(0, 1, -1.0);
        t.add(1, 1, 3.0);
        t.add(2, 2, 2.0);
        t.add(3, 2, -0.5);
        t.add(2, 3, -0.5);
        t.add(3, 3, 1.5);
        t.add(3, 0, 0.25);
        t
    }

    #[test]
    fn compress_into_matches_to_csc() {
        let mut t = sample_triplets();
        let reference = t.to_csc();
        let mut out = CscMatrix::default();
        t.compress_into(&mut out);
        assert_eq!(out, reference);
        // Re-stamp (same coordinates, new values) and reuse the buffers.
        t.clear();
        t.add(0, 0, 7.0);
        t.add(2, 1, -2.0);
        t.compress_into(&mut out);
        assert_eq!(out, t.to_csc());
    }

    #[test]
    fn scatter_map_roundtrips_including_duplicates() {
        let t = sample_triplets();
        let map = ScatterMap::build(&t);
        assert!(map.matches(&t));
        let mut out = CscMatrix::default();
        map.scatter(&t, &mut out);
        assert_eq!(out, t.to_csc());
        // A different coordinate stream must be rejected.
        let mut other = Triplets::new(4);
        other.add(1, 1, 1.0);
        assert!(!map.matches(&other));
    }

    #[test]
    fn refactor_reuses_pattern_and_matches_fresh_factor() {
        let t = sample_triplets();
        let a1 = t.to_csc();
        let mut lu = SparseLu::factor(&a1).unwrap();
        // Same pattern, new values.
        let mut t2 = Triplets::new(4);
        for (r, c, v) in a1.entries() {
            t2.add(r, c, v * 1.7 + f64::from(u8::from(r == c)));
        }
        let a2 = t2.to_csc();
        assert_eq!(lu.refactor(&a2).unwrap(), Refactorization::Numeric);
        let fresh = SparseLu::factor(&a2).unwrap();
        let b = [1.0, -2.0, 0.5, 3.0];
        assert_eq!(
            lu.solve(&b),
            fresh.solve(&b),
            "numeric path must be bit-identical"
        );
    }

    #[test]
    fn refactor_detects_pattern_change() {
        let t = sample_triplets();
        let mut lu = SparseLu::factor(&t.to_csc()).unwrap();
        let mut t2 = sample_triplets();
        t2.add(1, 3, 0.125); // new structural entry
        let a2 = t2.to_csc();
        assert_eq!(lu.refactor(&a2).unwrap(), Refactorization::Full);
        let b = [1.0, 0.0, -1.0, 2.0];
        assert_eq!(lu.solve(&b), SparseLu::factor(&a2).unwrap().solve(&b));
    }

    #[test]
    fn refactor_falls_back_when_pivot_degrades() {
        // First factor picks the diagonal; then the diagonal collapses so
        // reusing that pivot order would be unstable.
        let mut t = Triplets::new(2);
        t.add(0, 0, 4.0);
        t.add(1, 0, 1.0);
        t.add(0, 1, 1.0);
        t.add(1, 1, 4.0);
        let mut lu = SparseLu::factor(&t.to_csc()).unwrap();
        let mut t2 = Triplets::new(2);
        t2.add(0, 0, 1e-9);
        t2.add(1, 0, 1.0);
        t2.add(0, 1, 1.0);
        t2.add(1, 1, 4.0);
        let a2 = t2.to_csc();
        assert_eq!(lu.refactor(&a2).unwrap(), Refactorization::Full);
        let b = [1.0, 2.0];
        let x = lu.solve(&b);
        let y = a2.mul_vec(&x);
        for (yi, bi) in y.iter().zip(&b) {
            assert!((yi - bi).abs() < 1e-9, "residual {yi} vs {bi}");
        }
    }

    #[test]
    fn range_writer_overwrites_in_place() {
        let mut t = sample_triplets();
        let reference = {
            let mut r = sample_triplets();
            r.clear();
            r.add(0, 0, 9.0);
            r.add(0, 0, 1.5);
            r.add(1, 0, -2.0);
            r.add(0, 1, -2.0);
            r.add(1, 1, 5.0);
            r.add(2, 2, 2.0);
            r.add(3, 2, -0.5);
            r.add(2, 3, -0.5);
            r.add(3, 3, 1.5);
            r.add(3, 0, 0.25);
            r.to_csc()
        };
        // Rewrite only the first five entries (same coordinates).
        let mut w = t.range_writer(0, 5);
        w.add(0, 0, 9.0);
        w.add(0, 0, 1.5);
        w.add(1, 0, -2.0);
        w.add(0, 1, -2.0);
        w.add(1, 1, 5.0);
        assert!(w.complete());
        assert_eq!(t.to_csc(), reference);
    }

    #[test]
    fn range_writer_rejects_changed_stream() {
        let mut t = sample_triplets();
        // Wrong coordinate mid-stream.
        let mut w = t.range_writer(0, 2);
        w.add(0, 0, 1.0);
        w.add(1, 1, 2.0); // recorded stream has (0,0) here
        assert!(!w.complete());
        // Zero drop shortens the stream -> incomplete.
        let mut t2 = sample_triplets();
        let mut w2 = t2.range_writer(0, 2);
        w2.add(0, 0, 1.0);
        w2.add(0, 0, 0.0);
        assert!(!w2.complete());
        // Extra stamp overflows the range.
        let mut t3 = sample_triplets();
        let mut w3 = t3.range_writer(0, 1);
        w3.add(0, 0, 1.0);
        w3.add(0, 0, 2.0);
        assert!(!w3.complete());
    }

    #[test]
    fn amd_order_is_a_permutation_and_reduces_arrow_fill() {
        // Arrow matrix: dense first row/column. Natural order fills the
        // whole matrix; eliminating the hub last keeps L+U sparse.
        let n = 12;
        let mut t = Triplets::new(n);
        for i in 0..n {
            t.add(i, i, 4.0);
        }
        for i in 1..n {
            t.add(0, i, -1.0);
            t.add(i, 0, -1.0);
        }
        let a = t.to_csc();
        let perm = amd_order(&a);
        let mut seen = vec![false; n];
        for &p in &perm {
            assert!(!seen[p], "duplicate index {p}");
            seen[p] = true;
        }
        // The dense hub must not be eliminated while leaves remain
        // cheaper (it surfaces only once its degree ties the leaves').
        assert!(
            perm.iter().position(|&p| p == 0).unwrap() >= n - 2,
            "hub eliminated too early: {perm:?}"
        );
        let natural = SparseLu::factor(&a).unwrap().lu_nnz();
        let plan = PermutePlan::build(&a, perm);
        let mut pa = CscMatrix::default();
        plan.apply(&a, &mut pa);
        let permuted = SparseLu::factor(&pa).unwrap().lu_nnz();
        assert!(
            permuted < natural,
            "AMD fill {permuted} not below natural {natural}"
        );
    }

    #[test]
    fn permute_plan_solves_match_unpermuted() {
        let t = sample_triplets();
        let a = t.to_csc();
        let perm = amd_order(&a);
        let plan = PermutePlan::build(&a, perm);
        let mut pa = CscMatrix::default();
        plan.apply(&a, &mut pa);
        let b = [1.0, -2.0, 0.5, 3.0];
        let mut bp = Vec::new();
        plan.permute_vec(&b, &mut bp);
        let xp = SparseLu::factor(&pa).unwrap().solve(&bp);
        let mut x = Vec::new();
        plan.unpermute_vec(&xp, &mut x);
        let xref = SparseLu::factor(&a).unwrap().solve(&b);
        for (xi, ri) in x.iter().zip(&xref) {
            assert!((xi - ri).abs() < 1e-12, "permuted {xi} vs natural {ri}");
        }
    }

    #[test]
    fn refactor_across_many_value_sets() {
        // Newton-like usage: one pattern, many value sets.
        let n = 30;
        let mut state = 0x9e37_79b9u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let mut coords = Vec::new();
        for i in 0..n {
            coords.push((i, i));
            coords.push((i, (i + 1) % n));
            coords.push(((i + 2) % n, i));
        }
        let build = |rng: &mut dyn FnMut() -> f64| {
            let mut t = Triplets::new(n);
            for &(r, c) in &coords {
                t.add(r, c, rng() + if r == c { 6.0 } else { 0.0 });
            }
            t.to_csc()
        };
        let mut lu = SparseLu::factor(&build(&mut rng)).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        for _ in 0..10 {
            let a = build(&mut rng);
            assert_eq!(lu.refactor(&a).unwrap(), Refactorization::Numeric);
            assert_eq!(lu.solve(&b), SparseLu::factor(&a).unwrap().solve(&b));
        }
    }
}
