//! Sparse matrix storage and LU factorisation.
//!
//! Assembly happens in triplet form ([`Triplets`]); the solver compresses
//! to CSC ([`CscMatrix`]) and factors with a left-looking Gilbert–Peierls
//! LU with partial pivoting ([`SparseLu`]), the same algorithm family used
//! by CSparse/KLU. MNA matrices from circuit stamping are extremely sparse
//! (a handful of entries per row), which this path exploits.

use crate::error::{Error, Result};
use std::fmt;

/// Coordinate-format assembly buffer. Duplicate `(row, col)` entries are
/// summed during compression, which is exactly the MNA stamping semantic.
#[derive(Debug, Clone, Default)]
pub struct Triplets {
    n: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl Triplets {
    /// Create an assembly buffer for an `n × n` system.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            entries: Vec::new(),
        }
    }

    /// System dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of raw (pre-merge) entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been stamped.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stamp `v` into `(row, col)`, accumulating with prior stamps.
    ///
    /// # Panics
    /// Panics (debug builds) if `row`/`col` exceed the dimension.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, v: f64) {
        debug_assert!(row < self.n && col < self.n, "stamp out of range");
        if v != 0.0 {
            self.entries.push((row as u32, col as u32, v));
        }
    }

    /// Drop all entries, keeping capacity (for per-iteration reassembly).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Compress into CSC form, summing duplicates.
    #[must_use]
    pub fn to_csc(&self) -> CscMatrix {
        let n = self.n;
        let mut sorted = self.entries.clone();
        // Column-major ordering: (col, row).
        sorted.sort_unstable_by_key(|&(r, c, _)| ((c as u64) << 32) | r as u64);
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_idx = Vec::with_capacity(sorted.len());
        let mut vals: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut prev: Option<(u32, u32)> = None;
        for &(r, c, v) in &sorted {
            if prev == Some((r, c)) {
                *vals.last_mut().expect("merge target exists") += v;
            } else {
                row_idx.push(r as usize);
                vals.push(v);
                col_ptr[c as usize + 1] += 1;
                prev = Some((r, c));
            }
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        CscMatrix {
            n,
            col_ptr,
            row_idx,
            vals,
        }
    }
}

/// Compressed sparse column matrix.
#[derive(Clone, PartialEq)]
pub struct CscMatrix {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl fmt::Debug for CscMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CscMatrix {}x{} nnz={}", self.n, self.n, self.vals.len())
    }
}

impl CscMatrix {
    /// System dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.dim()`.
    #[must_use]
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for c in 0..self.n {
            let xc = x[c];
            if xc == 0.0 {
                continue;
            }
            for p in self.col_ptr[c]..self.col_ptr[c + 1] {
                y[self.row_idx[p]] += self.vals[p] * xc;
            }
        }
        y
    }

    /// Iterate over stored `(row, col, value)` entries in column order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |c| {
            (self.col_ptr[c]..self.col_ptr[c + 1])
                .map(move |p| (self.row_idx[p], c, self.vals[p]))
        })
    }

    /// Dense round-trip, for debugging and reference comparison.
    #[must_use]
    pub fn to_dense(&self) -> super::dense::DenseMatrix {
        let mut d = super::dense::DenseMatrix::zeros(self.n, self.n);
        for c in 0..self.n {
            for p in self.col_ptr[c]..self.col_ptr[c + 1] {
                d[(self.row_idx[p], c)] += self.vals[p];
            }
        }
        d
    }
}

/// Left-looking sparse LU factors with partial pivoting.
///
/// Row indices of `L`/`U` are in *pivotal* order after factorisation;
/// [`SparseLu::solve`] applies the row permutation internally.
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    l_colptr: Vec<usize>,
    l_rowidx: Vec<usize>,
    l_vals: Vec<f64>,
    u_colptr: Vec<usize>,
    u_rowidx: Vec<usize>,
    u_vals: Vec<f64>,
    /// `pinv[original_row] = pivotal position`.
    pinv: Vec<isize>,
}

/// Partial-pivot threshold: prefer the diagonal when it is within this
/// factor of the column maximum (reduces fill while staying stable).
const PIVOT_TOL: f64 = 0.1;
/// Absolute pivot floor below which the matrix is declared singular.
const PIVOT_EPS: f64 = 1e-300;

impl SparseLu {
    /// Factor `a` (which must be square by construction).
    ///
    /// # Errors
    /// Returns [`Error::SingularMatrix`] when no acceptable pivot exists
    /// in some column.
    pub fn factor(a: &CscMatrix) -> Result<Self> {
        let n = a.n;
        let mut lu = Self {
            n,
            l_colptr: vec![0; n + 1],
            l_rowidx: Vec::with_capacity(a.nnz() * 4),
            l_vals: Vec::with_capacity(a.nnz() * 4),
            u_colptr: vec![0; n + 1],
            u_rowidx: Vec::with_capacity(a.nnz() * 4),
            u_vals: Vec::with_capacity(a.nnz() * 4),
            pinv: vec![-1; n],
        };
        let mut x = vec![0.0f64; n];
        let mut xi = vec![0usize; 2 * n]; // pattern stack + DFS stack
        let mut mark = vec![0u32; n];
        let mut mark_gen = 0u32;

        for k in 0..n {
            lu.l_colptr[k] = lu.l_vals.len();
            lu.u_colptr[k] = lu.u_vals.len();

            // Sparse triangular solve x = L \ A(:,k): find reachable set
            // via DFS over the partially built L, then solve in topological
            // order (reverse DFS postorder).
            mark_gen += 1;
            let top = lu.reach(a, k, &mut xi, &mut mark, mark_gen);
            for p in a.col_ptr[k]..a.col_ptr[k + 1] {
                x[a.row_idx[p]] = a.vals[p];
            }
            for &j in &xi[top..n] {
                let jp = lu.pinv[j];
                if jp < 0 {
                    continue; // row not yet pivotal: x[j] is final
                }
                let jp = jp as usize;
                // Column jp of L is complete (jp < k); its first entry is
                // the (unit) diagonal.
                let start = lu.l_colptr[jp];
                let end = lu.l_colptr[jp + 1];
                let xj = x[j] / lu.l_vals[start];
                x[j] = xj;
                for p in start + 1..end {
                    x[lu.l_rowidx[p]] -= lu.l_vals[p] * xj;
                }
            }

            // Pivot search among not-yet-pivotal rows.
            let mut ipiv: isize = -1;
            let mut amax = -1.0f64;
            for &i in &xi[top..n] {
                if lu.pinv[i] < 0 {
                    let t = x[i].abs();
                    if t > amax {
                        amax = t;
                        ipiv = i as isize;
                    }
                } else {
                    lu.u_rowidx.push(lu.pinv[i] as usize);
                    lu.u_vals.push(x[i]);
                }
            }
            if ipiv < 0 || amax <= PIVOT_EPS {
                return Err(Error::SingularMatrix { index: k });
            }
            // Prefer the natural diagonal when acceptable (less fill).
            if lu.pinv[k] < 0 && x[k].abs() >= amax * PIVOT_TOL {
                ipiv = k as isize;
            }
            let ipiv = ipiv as usize;
            let pivot = x[ipiv];
            lu.u_rowidx.push(k);
            lu.u_vals.push(pivot);
            lu.pinv[ipiv] = k as isize;
            lu.l_rowidx.push(ipiv);
            lu.l_vals.push(1.0);
            for &i in &xi[top..n] {
                if lu.pinv[i] < 0 {
                    lu.l_rowidx.push(i);
                    lu.l_vals.push(x[i] / pivot);
                }
                x[i] = 0.0;
            }
        }
        lu.l_colptr[n] = lu.l_vals.len();
        lu.u_colptr[n] = lu.u_vals.len();
        // Remap L's row indices into pivotal order.
        for idx in &mut lu.l_rowidx {
            *idx = lu.pinv[*idx] as usize;
        }
        Ok(lu)
    }

    /// DFS reachability of column `k`'s pattern over the partial `L`.
    /// Returns `top` such that `xi[top..n]` holds the pattern in
    /// topological order. `xi[n..2n]` is scratch for the edge-position
    /// stack.
    fn reach(
        &self,
        a: &CscMatrix,
        k: usize,
        xi: &mut [usize],
        mark: &mut [u32],
        gen: u32,
    ) -> usize {
        let n = self.n;
        let mut top = n;
        for p in a.col_ptr[k]..a.col_ptr[k + 1] {
            let root = a.row_idx[p];
            if mark[root] == gen {
                continue;
            }
            // Iterative DFS from `root`.
            let mut head = 0usize;
            xi[0] = root;
            while head != usize::MAX {
                let j = xi[head];
                if mark[j] != gen {
                    mark[j] = gen;
                    // Start of column scan for this node.
                    xi[n + head] = match self.pinv[j] {
                        jp if jp >= 0 => self.l_colptr[jp as usize] + 1,
                        _ => usize::MAX, // leaf: no outgoing edges
                    };
                }
                let mut done = true;
                if xi[n + head] != usize::MAX {
                    // Non-leaf: column pinv[j] of L is complete.
                    let jp = self.pinv[j] as usize;
                    let end = self.l_colptr[jp + 1];
                    let mut pos = xi[n + head];
                    while pos < end {
                        let i = self.l_rowidx[pos];
                        pos += 1;
                        if mark[i] != gen {
                            xi[n + head] = pos;
                            head += 1;
                            xi[head] = i;
                            done = false;
                            break;
                        }
                    }
                    if done {
                        xi[n + head] = end;
                    }
                }
                if done {
                    // Postorder: push onto the pattern (reverse topological).
                    top -= 1;
                    // Move finished node into the output region. We must be
                    // careful not to clobber the DFS stack below `head`.
                    let node = xi[head];
                    if head == 0 {
                        head = usize::MAX;
                    } else {
                        head -= 1;
                    }
                    xi[top] = node;
                }
            }
        }
        top
    }

    /// Solve `a * x = b` with the stored factors.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the factored dimension.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        assert_eq!(b.len(), n);
        // x = P b
        let mut x = vec![0.0; n];
        for (i, &bi) in b.iter().enumerate() {
            x[self.pinv[i] as usize] = bi;
        }
        // L x = x (unit-diagonal first entry per column).
        for j in 0..n {
            let start = self.l_colptr[j];
            let end = self.l_colptr[j + 1];
            let xj = x[j] / self.l_vals[start];
            x[j] = xj;
            for p in start + 1..end {
                x[self.l_rowidx[p]] -= self.l_vals[p] * xj;
            }
        }
        // U x = x (diagonal is last entry per column).
        for j in (0..n).rev() {
            let start = self.u_colptr[j];
            let end = self.u_colptr[j + 1];
            let xj = x[j] / self.u_vals[end - 1];
            x[j] = xj;
            for p in start..end - 1 {
                x[self.u_rowidx[p]] -= self.u_vals[p] * xj;
            }
        }
        x
    }
}

/// Solve a triplet-assembled system in one call (factor + solve).
///
/// # Errors
/// Propagates [`Error::SingularMatrix`] from factorisation.
pub fn solve_triplets(t: &Triplets, b: &[f64]) -> Result<Vec<f64>> {
    let lu = SparseLu::factor(&t.to_csc())?;
    Ok(lu.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::dense::DenseMatrix;

    fn residual(t: &Triplets, x: &[f64], b: &[f64]) -> f64 {
        let y = t.to_csc().mul_vec(x);
        y.iter()
            .zip(b)
            .map(|(yi, bi)| (yi - bi).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn triplets_merge_duplicates() {
        let mut t = Triplets::new(2);
        t.add(0, 0, 1.0);
        t.add(0, 0, 2.0);
        t.add(1, 1, 4.0);
        let csc = t.to_csc();
        assert_eq!(csc.nnz(), 2);
        let d = csc.to_dense();
        assert_eq!(d[(0, 0)], 3.0);
        assert_eq!(d[(1, 1)], 4.0);
    }

    #[test]
    fn solves_diagonal() {
        let mut t = Triplets::new(3);
        for i in 0..3 {
            t.add(i, i, (i + 1) as f64);
        }
        let x = solve_triplets(&t, &[1.0, 4.0, 9.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_asymmetric_with_pivoting() {
        let mut t = Triplets::new(3);
        // Zero diagonal head forces pivoting.
        t.add(0, 1, 2.0);
        t.add(0, 2, 1.0);
        t.add(1, 0, 1.0);
        t.add(1, 1, 1.0);
        t.add(2, 0, 3.0);
        t.add(2, 2, -1.0);
        let b = [4.0, 3.0, 2.0];
        let x = solve_triplets(&t, &b).unwrap();
        assert!(residual(&t, &x, &b) < 1e-12, "residual too large");
    }

    #[test]
    fn singular_detected() {
        let mut t = Triplets::new(2);
        t.add(0, 0, 1.0);
        t.add(1, 0, 1.0); // column 1 empty -> singular
        assert!(matches!(
            solve_triplets(&t, &[1.0, 1.0]),
            Err(Error::SingularMatrix { .. })
        ));
    }

    #[test]
    fn matches_dense_on_mna_like_pattern() {
        // Typical MNA: SPD-ish conductance block plus voltage-source rows.
        let mut t = Triplets::new(4);
        let mut d = DenseMatrix::zeros(4, 4);
        let entries = [
            (0, 0, 2.0),
            (0, 1, -1.0),
            (1, 0, -1.0),
            (1, 1, 3.0),
            (1, 2, -2.0),
            (2, 1, -2.0),
            (2, 2, 2.0),
            (0, 3, 1.0),
            (3, 0, 1.0),
        ];
        for (r, c, v) in entries {
            t.add(r, c, v);
            d.add(r, c, v);
        }
        let b = [1.0, 0.0, 0.5, 1.8];
        let xs = solve_triplets(&t, &b).unwrap();
        let xd = d.solve(&b).unwrap();
        for (a, bv) in xs.iter().zip(&xd) {
            assert!((a - bv).abs() < 1e-10, "sparse {a} vs dense {bv}");
        }
    }

    #[test]
    fn larger_random_system_matches_dense() {
        // Deterministic pseudo-random system with guaranteed diagonal
        // dominance (always solvable).
        let n = 40;
        let mut t = Triplets::new(n);
        let mut d = DenseMatrix::zeros(n, n);
        let mut state = 0x1234_5678u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for i in 0..n {
            for _ in 0..4 {
                let j = ((rng() + 0.5) * n as f64) as usize % n;
                let v = rng();
                t.add(i, j, v);
                d.add(i, j, v);
            }
            t.add(i, i, 10.0);
            d.add(i, i, 10.0);
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let xs = solve_triplets(&t, &b).unwrap();
        let xd = d.solve(&b).unwrap();
        for (a, bv) in xs.iter().zip(&xd) {
            assert!((a - bv).abs() < 1e-8, "sparse {a} vs dense {bv}");
        }
    }
}
