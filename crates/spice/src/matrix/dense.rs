//! Dense matrix with LU factorisation (partial pivoting).
//!
//! Used as the reference solver for property tests and for very small
//! systems; the production path is [`crate::matrix::sparse`].

use crate::error::{Error, Result};
use std::fmt;

/// A row-major dense square-capable matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, " {:10.3e}", self[(r, c)])?;
            }
            writeln!(f, " ]")?;
        }
        Ok(())
    }
}

impl DenseMatrix {
    /// Create a zero-filled `rows × cols` matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create an `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major nested slice; all rows must share a length.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    #[must_use]
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut m = Self::zeros(nrows, ncols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), ncols, "ragged rows");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reset every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Add `v` to entry `(r, c)`.
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        self[(r, c)] += v;
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    #[must_use]
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        self.data
            .chunks_exact(self.cols)
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// LU-factorise (in a copy) and solve `self * x = b`.
    ///
    /// # Errors
    /// Returns [`Error::SingularMatrix`] when a pivot underflows.
    ///
    /// # Panics
    /// Panics if the matrix is not square or `b.len() != self.rows()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let lu = DenseLu::factor(self)?;
        Ok(lu.solve(b))
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// LU factorisation with partial pivoting of a square [`DenseMatrix`].
#[derive(Debug, Clone)]
pub struct DenseLu {
    lu: DenseMatrix,
    perm: Vec<usize>,
}

/// Pivots smaller than this (relative to the column maximum scale) are
/// treated as structurally singular.
const PIVOT_EPS: f64 = 1e-300;

impl DenseLu {
    /// Factor `a` as `P·a = L·U`.
    ///
    /// # Errors
    /// Returns [`Error::SingularMatrix`] on a vanishing pivot.
    ///
    /// # Panics
    /// Panics if `a` is not square.
    pub fn factor(a: &DenseMatrix) -> Result<Self> {
        assert_eq!(a.rows, a.cols, "LU requires a square matrix");
        let n = a.rows;
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivot: largest magnitude in column k at/below row k.
            let (piv_row, piv_val) = (k..n)
                .map(|r| (r, lu[(r, k)].abs()))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty pivot range");
            if piv_val < PIVOT_EPS {
                return Err(Error::SingularMatrix { index: k });
            }
            if piv_row != k {
                perm.swap(k, piv_row);
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(piv_row, c)];
                    lu[(piv_row, c)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for r in k + 1..n {
                let factor = lu[(r, k)] / pivot;
                lu[(r, k)] = factor;
                if factor != 0.0 {
                    for c in k + 1..n {
                        let u = lu[(k, c)];
                        lu[(r, c)] -= factor * u;
                    }
                }
            }
        }
        Ok(Self { lu, perm })
    }

    /// Solve `a * x = b` using the stored factors.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the factored dimension.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.rows;
        assert_eq!(b.len(), n);
        // Apply permutation, forward-substitute L (unit diagonal).
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            let mut s = x[r];
            for (c, &xc) in x.iter().enumerate().take(r) {
                s -= self.lu[(r, c)] * xc;
            }
            x[r] = s;
        }
        // Back-substitute U.
        for r in (0..n).rev() {
            let mut s = x[r];
            for (c, &xc) in x.iter().enumerate().take(n).skip(r + 1) {
                s -= self.lu[(r, c)] * xc;
            }
            x[r] = s / self.lu[(r, r)];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_to_rhs() {
        let a = DenseMatrix::identity(4);
        let b = vec![1.0, -2.0, 3.5, 0.0];
        let x = a.solve(&b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn known_3x3_system() {
        // 2x + y = 5 ; x + 3y + z = 10 ; y + 2z = 7  => x=1.625, y=1.75, z=2.625
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let x = a.solve(&[5.0, 10.0, 7.0]).unwrap();
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip([5.0, 10.0, 7.0]) {
            assert!((ri - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // Leading zero requires a row swap.
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[3.0, 4.0]).unwrap();
        assert!((x[0] - 4.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(Error::SingularMatrix { .. })
        ));
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }
}
