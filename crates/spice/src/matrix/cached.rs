//! Pattern-cached assembly + factorisation pipeline.
//!
//! Newton iterations and consecutive transient timesteps assemble the
//! same matrix *pattern* over and over with different values. This module
//! ties [`ScatterMap`] (triplets → CSC without sorting), an optional
//! fill-reducing pre-ordering ([`amd_order`] + [`PermutePlan`]) and
//! [`SparseLu::refactor`] (numeric-only LU) into one reusable solver that
//! engines call per iteration: the first solve pays for symbolic
//! analysis and ordering, every following solve on the same topology is
//! a linear-time scatter, a linear-time value permutation and a numeric
//! refactorisation.

use super::sparse::{
    amd_order, CscMatrix, PermutePlan, Refactorization, ScatterMap, SparseLu, Triplets,
};
use crate::error::Result;

/// Which symmetric pre-ordering the solver applies before factoring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Ordering {
    /// Factor in assembly order (no permutation). Bit-identical to the
    /// plain `SparseLu::factor(&tri.to_csc())` path.
    Natural,
    /// Minimum-degree fill-reducing permutation, computed once per
    /// sparsity pattern. Default: MNA matrices from TCAM arrays have
    /// hub nodes (matchlines, supply rails) that fill catastrophically
    /// in natural order.
    #[default]
    Amd,
}

impl Ordering {
    /// Parse a `natural|amd` option string.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "natural" => Some(Self::Natural),
            "amd" => Some(Self::Amd),
            _ => None,
        }
    }

    /// Resolve the ordering from `FERROTCAM_ORDERING`, defaulting to
    /// [`Ordering::Amd`] when unset or unrecognised.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("FERROTCAM_ORDERING") {
            Ok(v) => Self::parse(&v).unwrap_or_default(),
            Err(_) => Self::default(),
        }
    }
}

/// Counters describing how much work the cached pipeline avoided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Full factorisations (first solve, pattern changes, degraded pivots).
    pub full_factors: u64,
    /// Numeric-only refactorisations (the fast path).
    pub refactors: u64,
    /// Times the scatter plan had to be rebuilt from a new coordinate
    /// stream.
    pub pattern_rebuilds: u64,
    /// `nnz(L + U)` of the most recent factorisation (diagonal counted
    /// once). Zero until a factorisation has run.
    pub lu_nnz: u64,
    /// `nnz(A)` of the most recent factorisation. Zero until a
    /// factorisation has run. `lu_nnz / a_nnz` is the fill-in ratio —
    /// see [`SolverStats::fill_ratio`].
    pub a_nnz: u64,
}

impl SolverStats {
    /// Accumulate another stats block into this one. Work counters sum;
    /// the fill snapshot (`lu_nnz`/`a_nnz`) adopts `other`'s most recent
    /// factorisation when it has one.
    pub fn merge(&mut self, other: SolverStats) {
        self.full_factors += other.full_factors;
        self.refactors += other.refactors;
        self.pattern_rebuilds += other.pattern_rebuilds;
        if other.a_nnz != 0 {
            self.lu_nnz = other.lu_nnz;
            self.a_nnz = other.a_nnz;
        }
    }

    /// Fill-in of the most recent factorisation, `nnz(L+U) / nnz(A)`,
    /// or `None` before any factorisation.
    #[must_use]
    pub fn fill_ratio(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        match self.a_nnz {
            0 => None,
            a => Some(self.lu_nnz as f64 / a as f64),
        }
    }
}

/// A linear solver that caches the assembly plan, fill-reducing ordering
/// and LU pattern across calls. With [`Ordering::Natural`] it produces
/// bit-identical results to the uncached `SparseLu::factor(&tri.to_csc())`
/// path; with [`Ordering::Amd`] results agree to solver precision
/// (different elimination order → different rounding).
#[derive(Debug, Default)]
pub struct CachedSolver {
    ordering: Ordering,
    map: Option<ScatterMap>,
    csc: CscMatrix,
    /// Permutation plan + permuted matrix, populated for [`Ordering::Amd`].
    plan: Option<PermutePlan>,
    perm_csc: CscMatrix,
    b_perm: Vec<f64>,
    lu: Option<SparseLu>,
    stats: SolverStats,
}

impl CachedSolver {
    /// An empty solver with the default ([`Ordering::Amd`]) ordering;
    /// caches fill in on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty solver with an explicit pre-ordering.
    #[must_use]
    pub fn with_ordering(ordering: Ordering) -> Self {
        Self {
            ordering,
            ..Self::default()
        }
    }

    /// The pre-ordering this solver applies.
    #[must_use]
    pub fn ordering(&self) -> Ordering {
        self.ordering
    }

    /// Work counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Solve `A x = b` where `A` is the triplet assembly `tri`.
    ///
    /// # Errors
    /// Returns [`crate::error::Error::SingularMatrix`] when the system
    /// cannot be factored.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match `tri.dim()`.
    pub fn solve(&mut self, tri: &Triplets, b: &[f64]) -> Result<Vec<f64>> {
        match &self.map {
            Some(map) if map.matches(tri) => map.scatter(tri, &mut self.csc),
            _ => {
                let map = ScatterMap::build(tri);
                map.scatter(tri, &mut self.csc);
                self.map = Some(map);
                self.stats.pattern_rebuilds += 1;
                // The merged pattern may have changed with the stream;
                // recompute the ordering from it. Factors are kept:
                // `refactor` detects pattern changes itself and may still
                // hit the numeric path when only the coordinate *stream*
                // changed, not the merged (permuted) pattern.
                self.plan = None;
            }
        }
        let a = match self.ordering {
            Ordering::Natural => &self.csc,
            Ordering::Amd => {
                if self.plan.is_none() {
                    let perm = amd_order(&self.csc);
                    self.plan = Some(PermutePlan::build(&self.csc, perm));
                }
                let plan = self.plan.as_ref().expect("built above");
                plan.apply(&self.csc, &mut self.perm_csc);
                &self.perm_csc
            }
        };
        match &mut self.lu {
            Some(lu) => match lu.refactor(a)? {
                Refactorization::Numeric => self.stats.refactors += 1,
                Refactorization::Full => self.stats.full_factors += 1,
            },
            None => {
                self.lu = Some(SparseLu::factor(a)?);
                self.stats.full_factors += 1;
            }
        }
        let lu = self.lu.as_ref().expect("factored above");
        self.stats.lu_nnz = lu.lu_nnz() as u64;
        self.stats.a_nnz = a.nnz() as u64;
        match (&self.plan, self.ordering) {
            (Some(plan), Ordering::Amd) => {
                plan.permute_vec(b, &mut self.b_perm);
                let xp = lu.solve(&self.b_perm);
                let mut x = Vec::new();
                plan.unpermute_vec(&xp, &mut x);
                Ok(x)
            }
            _ => Ok(lu.solve(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::sparse::solve_triplets;

    fn stamp(n: usize, scale: f64) -> Triplets {
        let mut t = Triplets::new(n);
        for i in 0..n {
            t.add(i, i, 4.0 * scale);
            if i + 1 < n {
                t.add(i, i + 1, -scale);
                t.add(i + 1, i, -scale);
            }
        }
        t
    }

    #[test]
    fn cached_matches_uncached_bitwise() {
        // Natural ordering pins the bit-identity contract with the plain
        // factor path; AMD agreement (to tolerance) is tested separately.
        let mut solver = CachedSolver::with_ordering(Ordering::Natural);
        let b = [1.0, 0.5, -0.25, 2.0, 0.0];
        for step in 1..6 {
            let t = stamp(5, f64::from(step));
            let fast = solver.solve(&t, &b).unwrap();
            let slow = solve_triplets(&t, &b).unwrap();
            assert_eq!(fast, slow, "step {step} diverged");
        }
        let s = solver.stats();
        assert_eq!(s.full_factors, 1);
        assert_eq!(s.refactors, 4);
        assert_eq!(s.pattern_rebuilds, 1);
    }

    #[test]
    fn amd_matches_natural_to_tolerance() {
        let mut amd = CachedSolver::new();
        assert_eq!(amd.ordering(), Ordering::Amd);
        let mut natural = CachedSolver::with_ordering(Ordering::Natural);
        let b = [1.0, 0.5, -0.25, 2.0, 0.0];
        for step in 1..6 {
            let t = stamp(5, f64::from(step));
            let xa = amd.solve(&t, &b).unwrap();
            let xn = natural.solve(&t, &b).unwrap();
            for (a, n) in xa.iter().zip(&xn) {
                assert!((a - n).abs() < 1e-12, "step {step}: {a} vs {n}");
            }
        }
        // AMD still rides the numeric-refactor fast path.
        assert_eq!(amd.stats().full_factors, 1);
        assert_eq!(amd.stats().refactors, 4);
        assert!(amd.stats().fill_ratio().is_some());
    }

    #[test]
    fn pattern_change_rebuilds_then_recaches() {
        let mut solver = CachedSolver::new();
        let b = [1.0, 2.0, 3.0];
        let t3 = stamp(3, 1.0);
        solver.solve(&t3, &b).unwrap();
        // Different structure: extra corner entries.
        let mut t = stamp(3, 1.0);
        t.add(0, 2, -0.5);
        t.add(2, 0, -0.5);
        let x = solver.solve(&t, &b).unwrap();
        let xref = solve_triplets(&t, &b).unwrap();
        for (a, r) in x.iter().zip(&xref) {
            assert!((a - r).abs() < 1e-12, "{a} vs {r}");
        }
        assert_eq!(solver.stats().pattern_rebuilds, 2);
        assert_eq!(solver.stats().full_factors, 2);
        // Same new structure again: back on the fast path.
        solver.solve(&t, &b).unwrap();
        assert_eq!(solver.stats().refactors, 1);
    }

    #[test]
    fn fill_stats_reported() {
        let mut solver = CachedSolver::new();
        let t = stamp(6, 1.0);
        let b = [1.0; 6];
        solver.solve(&t, &b).unwrap();
        let s = solver.stats();
        assert_eq!(s.a_nnz, 16); // 6 diagonal + 2*5 off-diagonal
        assert!(s.lu_nnz >= s.a_nnz.min(11)); // at least the tridiagonal band
        let ratio = s.fill_ratio().unwrap();
        assert!(ratio >= 1.0 - 1e-12, "fill ratio {ratio} below 1");
    }

    #[test]
    fn singular_input_reported() {
        let mut solver = CachedSolver::new();
        let t = Triplets::new(2); // all-zero matrix
        assert!(solver.solve(&t, &[1.0, 1.0]).is_err());
    }
}
