//! Pattern-cached assembly + factorisation pipeline.
//!
//! Newton iterations and consecutive transient timesteps assemble the
//! same matrix *pattern* over and over with different values. This module
//! ties [`ScatterMap`] (triplets → CSC without sorting) and
//! [`SparseLu::refactor`] (numeric-only LU) into one reusable solver that
//! engines call per iteration: the first solve pays for symbolic
//! analysis, every following solve on the same topology is a linear-time
//! scatter plus a numeric refactorisation.

use super::sparse::{CscMatrix, Refactorization, ScatterMap, SparseLu, Triplets};
use crate::error::Result;

/// Counters describing how much work the cached pipeline avoided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Full factorisations (first solve, pattern changes, degraded pivots).
    pub full_factors: u64,
    /// Numeric-only refactorisations (the fast path).
    pub refactors: u64,
    /// Times the scatter plan had to be rebuilt from a new coordinate
    /// stream.
    pub pattern_rebuilds: u64,
}

impl SolverStats {
    /// Accumulate another stats block into this one.
    pub fn merge(&mut self, other: SolverStats) {
        self.full_factors += other.full_factors;
        self.refactors += other.refactors;
        self.pattern_rebuilds += other.pattern_rebuilds;
    }
}

/// A linear solver that caches the assembly plan and LU pattern across
/// calls. Produces bit-identical results to the uncached
/// `SparseLu::factor(&tri.to_csc())` path.
#[derive(Debug, Default)]
pub struct CachedSolver {
    map: Option<ScatterMap>,
    csc: CscMatrix,
    lu: Option<SparseLu>,
    stats: SolverStats,
}

impl CachedSolver {
    /// An empty solver; caches fill in on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Work counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Solve `A x = b` where `A` is the triplet assembly `tri`.
    ///
    /// # Errors
    /// Returns [`crate::error::Error::SingularMatrix`] when the system
    /// cannot be factored.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match `tri.dim()`.
    pub fn solve(&mut self, tri: &Triplets, b: &[f64]) -> Result<Vec<f64>> {
        match &self.map {
            Some(map) if map.matches(tri) => map.scatter(tri, &mut self.csc),
            _ => {
                let map = ScatterMap::build(tri);
                map.scatter(tri, &mut self.csc);
                self.map = Some(map);
                self.stats.pattern_rebuilds += 1;
                // Keep any existing factors: `refactor` detects pattern
                // changes itself and may still hit the numeric path when
                // only the coordinate *stream* changed, not the merged
                // pattern.
            }
        }
        match &mut self.lu {
            Some(lu) => match lu.refactor(&self.csc)? {
                Refactorization::Numeric => self.stats.refactors += 1,
                Refactorization::Full => self.stats.full_factors += 1,
            },
            None => {
                self.lu = Some(SparseLu::factor(&self.csc)?);
                self.stats.full_factors += 1;
            }
        }
        Ok(self.lu.as_ref().expect("factored above").solve(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::sparse::solve_triplets;

    fn stamp(n: usize, scale: f64) -> Triplets {
        let mut t = Triplets::new(n);
        for i in 0..n {
            t.add(i, i, 4.0 * scale);
            if i + 1 < n {
                t.add(i, i + 1, -scale);
                t.add(i + 1, i, -scale);
            }
        }
        t
    }

    #[test]
    fn cached_matches_uncached_bitwise() {
        let mut solver = CachedSolver::new();
        let b = [1.0, 0.5, -0.25, 2.0, 0.0];
        for step in 1..6 {
            let t = stamp(5, f64::from(step));
            let fast = solver.solve(&t, &b).unwrap();
            let slow = solve_triplets(&t, &b).unwrap();
            assert_eq!(fast, slow, "step {step} diverged");
        }
        let s = solver.stats();
        assert_eq!(s.full_factors, 1);
        assert_eq!(s.refactors, 4);
        assert_eq!(s.pattern_rebuilds, 1);
    }

    #[test]
    fn pattern_change_rebuilds_then_recaches() {
        let mut solver = CachedSolver::new();
        let b = [1.0, 2.0, 3.0];
        let t3 = stamp(3, 1.0);
        solver.solve(&t3, &b).unwrap();
        // Different structure: extra corner entries.
        let mut t = stamp(3, 1.0);
        t.add(0, 2, -0.5);
        t.add(2, 0, -0.5);
        let x = solver.solve(&t, &b).unwrap();
        assert_eq!(x, solve_triplets(&t, &b).unwrap());
        assert_eq!(solver.stats().pattern_rebuilds, 2);
        assert_eq!(solver.stats().full_factors, 2);
        // Same new structure again: back on the fast path.
        solver.solve(&t, &b).unwrap();
        assert_eq!(solver.stats().refactors, 1);
    }

    #[test]
    fn singular_input_reported() {
        let mut solver = CachedSolver::new();
        let t = Triplets::new(2); // all-zero matrix
        assert!(solver.solve(&t, &[1.0, 1.0]).is_err());
    }
}
