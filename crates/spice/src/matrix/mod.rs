//! Linear-algebra kernels for modified nodal analysis.
//!
//! Two solver paths exist: a dense LU ([`dense::DenseMatrix`]) used as a
//! reference and for tiny systems, and the production sparse LU
//! ([`sparse::SparseLu`]) for array-scale circuits. Repeated solves on a
//! fixed topology (Newton iterations, transient timesteps) go through
//! [`cached::CachedSolver`], which reuses the assembly plan and the LU
//! pattern across calls.

pub mod cached;
pub mod dense;
pub mod sparse;

pub use cached::{CachedSolver, Ordering, SolverStats};
pub use dense::{DenseLu, DenseMatrix};
pub use sparse::{
    amd_order, solve_triplets, CscMatrix, PermutePlan, Refactorization, ScatterMap, SparseLu,
    Stamper, Triplets,
};
