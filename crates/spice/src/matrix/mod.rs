//! Linear-algebra kernels for modified nodal analysis.
//!
//! Two solver paths exist: a dense LU ([`dense::DenseMatrix`]) used as a
//! reference and for tiny systems, and the production sparse LU
//! ([`sparse::SparseLu`]) for array-scale circuits.

pub mod dense;
pub mod sparse;

pub use dense::{DenseLu, DenseMatrix};
pub use sparse::{solve_triplets, CscMatrix, SparseLu, Triplets};
