//! Dependency-free span/event tracing and convergence forensics.
//!
//! Every analysis entry point (`dc`, `transient`, `sweep`, `ac`) opens a
//! [`span`]; the transient stepper additionally emits one event per
//! accepted/rejected timestep carrying `dt`, the iteration count and the
//! rejection reason; Newton failures emit a forensic event naming the
//! worst-residual MNA variable and the device instance driving it. The
//! serving layer records its queue/batch/dispatch spans through the same
//! collector, so one trace shows a request from admission down to the
//! linear solver.
//!
//! Tracing is off unless enabled, and costs one relaxed atomic load per
//! call site when off. The level comes from the `FERROTCAM_TRACE`
//! environment variable (`off` | `summary` | `full`, default `off`) or
//! [`set_level`]:
//!
//! * `summary` — span durations (octave [`Histogram`]s per span name),
//!   step/failure counters, and low-volume events (spans, notes,
//!   failures).
//! * `full` — everything above plus one event per transient timestep.
//!
//! Events are drained with [`take_events`] and rendered either as a
//! human summary ([`summary`]) or as newline-delimited JSON
//! ([`render_ndjson`]) for `compare_runs --trace` and CI artifacts.

use crate::error::Error;
use crate::netlist::{Circuit, Element};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{LazyLock, Mutex};
use std::time::Instant;

/// How much the collector records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// Record nothing (the default).
    #[default]
    Off,
    /// Spans, counters and failure events only.
    Summary,
    /// Everything, including one event per transient timestep.
    Full,
}

impl TraceLevel {
    /// Parse `off` / `summary` / `full` (anything else: `None`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "" => Some(TraceLevel::Off),
            "summary" | "1" => Some(TraceLevel::Summary),
            "full" | "2" => Some(TraceLevel::Full),
            _ => None,
        }
    }
}

/// 255 = not yet resolved from the environment.
static LEVEL: AtomicU8 = AtomicU8::new(255);

fn level_code(l: TraceLevel) -> u8 {
    match l {
        TraceLevel::Off => 0,
        TraceLevel::Summary => 1,
        TraceLevel::Full => 2,
    }
}

/// The active trace level (resolving `FERROTCAM_TRACE` on first use).
#[must_use]
pub fn level() -> TraceLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => TraceLevel::Off,
        1 => TraceLevel::Summary,
        2 => TraceLevel::Full,
        _ => {
            let l = std::env::var("FERROTCAM_TRACE")
                .ok()
                .and_then(|s| TraceLevel::parse(&s))
                .unwrap_or_default();
            LEVEL.store(level_code(l), Ordering::Relaxed);
            l
        }
    }
}

/// Override the trace level (wins over the environment variable).
pub fn set_level(l: TraceLevel) {
    LEVEL.store(level_code(l), Ordering::Relaxed);
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Event {
    /// An analysis (or service stage) began.
    SpanStart {
        /// Monotone sequence number within the collector.
        seq: u64,
        /// Span name (`"transient"`, `"serve.batch"`, ...).
        name: &'static str,
    },
    /// The matching span ended after `dur_ns` nanoseconds.
    SpanEnd {
        /// Monotone sequence number within the collector.
        seq: u64,
        /// Span name.
        name: &'static str,
        /// Wall-clock duration in nanoseconds.
        dur_ns: u64,
    },
    /// A transient timestep was accepted.
    StepAccept {
        /// Monotone sequence number within the collector.
        seq: u64,
        /// Analysis that stepped.
        analysis: &'static str,
        /// Time reached by the accepted step (s).
        t: f64,
        /// Size of the accepted step (s).
        dt: f64,
        /// Newton iterations the step took.
        iters: usize,
        /// Device evaluations skipped via the bypass cache during this
        /// step's Newton solve (0 when `FERROTCAM_BYPASS=off`).
        bypass_hits: u64,
        /// Device evaluations actually performed during this step's
        /// Newton solve.
        bypass_misses: u64,
    },
    /// A transient timestep was rejected and will be retried smaller.
    StepReject {
        /// Monotone sequence number within the collector.
        seq: u64,
        /// Analysis that stepped.
        analysis: &'static str,
        /// Time the failed step started from (s).
        t: f64,
        /// Size of the rejected step (s).
        dt: f64,
        /// Why the step failed (`non-convergence`, `singular-pivot`, ...).
        reason: String,
    },
    /// Newton exhausted its iteration budget; worst-residual attribution.
    NewtonFail {
        /// Monotone sequence number within the collector.
        seq: u64,
        /// Analysis that failed.
        analysis: &'static str,
        /// Simulation time of the failed solve (s).
        time: f64,
        /// Iterations spent.
        iterations: usize,
        /// MNA variable with the worst residual (node or `i(<vsrc>)`).
        node: String,
        /// Device/element instance contributing most to that residual.
        device: String,
        /// Final residual max-norm `|f|`.
        f_norm: f64,
        /// Final update max-norm `|dx|`.
        dx_norm: f64,
    },
    /// A factorisation hit a zero pivot; mapped back to a variable name.
    SingularPivot {
        /// Monotone sequence number within the collector.
        seq: u64,
        /// Analysis that failed.
        analysis: &'static str,
        /// Simulation time of the failed solve (s).
        time: f64,
        /// Failing pivot index.
        index: usize,
        /// MNA variable name of that index.
        node: String,
    },
    /// The serving layer's sampled SPICE audit lane caught the fast
    /// behavioural backend disagreeing with the simulator-calibrated
    /// reference path.
    AuditDivergence {
        /// Monotone sequence number within the collector.
        seq: u64,
        /// What diverged: `"match_set"` or `"energy"`.
        lane: &'static str,
        /// SplitMix64 hash of the query that diverged (reproducible
        /// with the run's seed).
        query_hash: u64,
        /// Relative deviation (0 for set divergences, which are
        /// all-or-nothing).
        rel: f64,
        /// Human-readable detail.
        detail: String,
    },
    /// Free-form low-volume annotation (fallback ladders etc.).
    Note {
        /// Monotone sequence number within the collector.
        seq: u64,
        /// Note topic.
        name: &'static str,
        /// Human-readable detail.
        detail: String,
    },
}

impl Event {
    /// The event's sequence number.
    #[must_use]
    pub fn seq(&self) -> u64 {
        match self {
            Event::SpanStart { seq, .. }
            | Event::SpanEnd { seq, .. }
            | Event::StepAccept { seq, .. }
            | Event::StepReject { seq, .. }
            | Event::NewtonFail { seq, .. }
            | Event::SingularPivot { seq, .. }
            | Event::AuditDivergence { seq, .. }
            | Event::Note { seq, .. } => *seq,
        }
    }

    /// Render the event as one JSON object (one NDJSON line, no `\n`).
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            Event::SpanStart { seq, name } => {
                format!(r#"{{"seq":{seq},"kind":"span_start","name":{}}}"#, js(name))
            }
            Event::SpanEnd { seq, name, dur_ns } => format!(
                r#"{{"seq":{seq},"kind":"span_end","name":{},"dur_ns":{dur_ns}}}"#,
                js(name)
            ),
            Event::StepAccept {
                seq,
                analysis,
                t,
                dt,
                iters,
                bypass_hits,
                bypass_misses,
            } => format!(
                r#"{{"seq":{seq},"kind":"step_accept","analysis":{},"t":{},"dt":{},"iters":{iters},"bypass_hits":{bypass_hits},"bypass_misses":{bypass_misses}}}"#,
                js(analysis),
                jf(*t),
                jf(*dt)
            ),
            Event::StepReject {
                seq,
                analysis,
                t,
                dt,
                reason,
            } => format!(
                r#"{{"seq":{seq},"kind":"step_reject","analysis":{},"t":{},"dt":{},"reason":{}}}"#,
                js(analysis),
                jf(*t),
                jf(*dt),
                js(reason)
            ),
            Event::NewtonFail {
                seq,
                analysis,
                time,
                iterations,
                node,
                device,
                f_norm,
                dx_norm,
            } => format!(
                r#"{{"seq":{seq},"kind":"newton_fail","analysis":{},"time":{},"iterations":{iterations},"node":{},"device":{},"f_norm":{},"dx_norm":{}}}"#,
                js(analysis),
                jf(*time),
                js(node),
                js(device),
                jf(*f_norm),
                jf(*dx_norm)
            ),
            Event::SingularPivot {
                seq,
                analysis,
                time,
                index,
                node,
            } => format!(
                r#"{{"seq":{seq},"kind":"singular_pivot","analysis":{},"time":{},"index":{index},"node":{}}}"#,
                js(analysis),
                jf(*time),
                js(node)
            ),
            Event::AuditDivergence {
                seq,
                lane,
                query_hash,
                rel,
                detail,
            } => format!(
                r#"{{"seq":{seq},"kind":"audit_divergence","lane":{},"query_hash":{query_hash},"rel":{},"detail":{}}}"#,
                js(lane),
                jf(*rel),
                js(detail)
            ),
            Event::Note { seq, name, detail } => format!(
                r#"{{"seq":{seq},"kind":"note","name":{},"detail":{}}}"#,
                js(name),
                js(detail)
            ),
        }
    }
}

/// JSON-escape a string (quotes included).
fn js(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a float as a JSON number (NaN/inf are not JSON: stringify).
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        js(&v.to_string())
    }
}

/// Render events as newline-delimited JSON, one event per line.
#[must_use]
pub fn render_ndjson(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json());
        out.push('\n');
    }
    out
}

/// Sub-octave bits of the log-linear histogram: each power-of-two
/// octave splits into `2^SUB_BITS` equal-width buckets.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
///// Total bucket count: `SUBS` exact buckets below `SUBS`, then one
/// group of `SUBS` buckets per remaining octave position of the MSB.
const NBUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUBS;

/// Log-linear bucketed histogram over `u64` samples (nanoseconds for
/// wall durations, picoseconds for modelled silicon latencies).
///
/// Values below 16 are exact; above, each power-of-two octave splits
/// into 16 equal sub-buckets, bounding the quantile quantisation error
/// to under ~6.3% — fine enough to resolve sub-µs latencies instead of
/// snapping every percentile to an octave boundary (1048576 ns etc.),
/// while keeping `record` a few shifts.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Box<[u64]>,
    count: u64,
    sum: f64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: vec![0; NBUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0.0,
            max: 0,
        }
    }
}

/// Log-linear bucket index of a sample.
fn bucket_index(sample: u64) -> usize {
    if sample < SUBS as u64 {
        return sample as usize;
    }
    let msb = 63 - sample.leading_zeros();
    let group = (msb - SUB_BITS + 1) as usize;
    let sub = ((sample >> (msb - SUB_BITS)) as usize) & (SUBS - 1);
    group * SUBS + sub
}

/// Exclusive upper edge of a bucket (the value a quantile reports,
/// before clamping to the observed max).
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUBS {
        return idx as u64;
    }
    let (group, sub) = (idx / SUBS, idx % SUBS);
    // The very top sub-bucket's edge is 2^64; clamp instead of wrapping.
    let raw = ((SUBS + sub + 1) as u128) << (group - 1);
    raw.min(u64::MAX as u128) as u64
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, sample: u64) {
        self.buckets[bucket_index(sample)] += 1;
        self.count += 1;
        self.sum += sample as f64;
        self.max = self.max.max(sample);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample seen.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate `p`-quantile (`0 < p <= 1`): the upper edge of the
    /// bucket holding the p-th sample, clamped to the observed max.
    /// `None` when no samples were recorded — an empty window has no
    /// percentile, and reporting `0.0` instead reads as an impossibly
    /// good latency to downstream comparisons.
    #[must_use]
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (p * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some((bucket_upper(idx).min(self.max)) as f64);
            }
        }
        Some(self.max as f64)
    }
}

/// Condensed view of one named span/sample histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Span or sample name.
    pub name: &'static str,
    /// Samples recorded.
    pub count: u64,
    /// Mean sample (ns for spans).
    pub mean: f64,
    /// 95th percentile (octave upper edge).
    pub p95: f64,
    /// Largest sample.
    pub max: u64,
}

/// Counter snapshot of everything the collector has seen since the last
/// [`reset`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceSummary {
    /// Accepted transient timesteps.
    pub accepted_steps: u64,
    /// Rejected transient timesteps.
    pub rejected_steps: u64,
    /// Newton failures (iteration budget exhausted or non-finite).
    pub newton_failures: u64,
    /// Singular-pivot events.
    pub singular_pivots: u64,
    /// Serve-layer audit-lane divergences (behavioural vs calibrated
    /// reference path).
    pub audit_divergences: u64,
    /// Per-name span duration histograms (ns), alphabetical.
    pub spans: Vec<SpanSummary>,
    /// Per-name free samples, alphabetical.
    pub samples: Vec<SpanSummary>,
}

impl TraceSummary {
    /// Render the summary as a human-readable block.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "steps: {} accepted, {} rejected; {} newton failure(s), {} singular pivot(s)",
            self.accepted_steps, self.rejected_steps, self.newton_failures, self.singular_pivots
        );
        if self.audit_divergences > 0 {
            let _ = writeln!(out, "AUDIT: {} divergence(s)", self.audit_divergences);
        }
        if !self.spans.is_empty() {
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>12} {:>12} {:>12}",
                "span", "count", "mean ns", "p95 ns", "max ns"
            );
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "{:<24} {:>8} {:>12.0} {:>12.0} {:>12}",
                    s.name, s.count, s.mean, s.p95, s.max
                );
            }
        }
        if !self.samples.is_empty() {
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>12} {:>12} {:>12}",
                "sample", "count", "mean", "p95", "max"
            );
            for s in &self.samples {
                let _ = writeln!(
                    out,
                    "{:<24} {:>8} {:>12.1} {:>12.0} {:>12}",
                    s.name, s.count, s.mean, s.p95, s.max
                );
            }
        }
        out
    }
}

#[derive(Debug, Default)]
struct Collector {
    seq: u64,
    events: Vec<Event>,
    accepted_steps: u64,
    rejected_steps: u64,
    newton_failures: u64,
    singular_pivots: u64,
    audit_divergences: u64,
    spans: BTreeMap<&'static str, Histogram>,
    samples: BTreeMap<&'static str, Histogram>,
}

static COLLECTOR: LazyLock<Mutex<Collector>> = LazyLock::new(|| Mutex::new(Collector::default()));

fn with_collector<R>(f: impl FnOnce(&mut Collector) -> R) -> R {
    let mut c = COLLECTOR.lock().expect("trace collector lock");
    f(&mut c)
}

impl Collector {
    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn push(&mut self, e: Event) {
        self.events.push(e);
    }
}

/// Clear all recorded events, counters and histograms.
pub fn reset() {
    with_collector(|c| *c = Collector::default());
}

/// Drain and return every event recorded so far (oldest first).
#[must_use]
pub fn take_events() -> Vec<Event> {
    with_collector(|c| std::mem::take(&mut c.events))
}

/// Snapshot the counters and span histograms.
#[must_use]
pub fn summary() -> TraceSummary {
    with_collector(|c| {
        let condense = |m: &BTreeMap<&'static str, Histogram>| {
            m.iter()
                .map(|(&name, h)| SpanSummary {
                    name,
                    count: h.count(),
                    mean: h.mean(),
                    // Span histograms exist only once recorded into, so
                    // the quantile is always present; 0.0 is unreachable.
                    p95: h.quantile(0.95).unwrap_or(0.0),
                    max: h.max(),
                })
                .collect()
        };
        TraceSummary {
            accepted_steps: c.accepted_steps,
            rejected_steps: c.rejected_steps,
            newton_failures: c.newton_failures,
            singular_pivots: c.singular_pivots,
            audit_divergences: c.audit_divergences,
            spans: condense(&c.spans),
            samples: condense(&c.samples),
        }
    })
}

/// RAII span guard: records its wall duration (and, above `Off`, start
/// and end events) when dropped. Obtain with [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        with_collector(|c| {
            c.spans.entry(self.name).or_default().record(dur_ns);
            let seq = c.next_seq();
            c.push(Event::SpanEnd {
                seq,
                name: self.name,
                dur_ns,
            });
        });
    }
}

/// Open a span; its duration lands in the `name` histogram when the
/// returned guard drops. Inert (no lock, no clock) when tracing is off.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    if level() == TraceLevel::Off {
        return SpanGuard { name, start: None };
    }
    with_collector(|c| {
        let seq = c.next_seq();
        c.push(Event::SpanStart { seq, name });
    });
    SpanGuard {
        name,
        start: Some(Instant::now()),
    }
}

/// Record a free value sample into the `name` histogram (e.g. queue
/// waits, batch sizes). No event is emitted; summary-only data.
pub fn sample(name: &'static str, value: u64) {
    if level() == TraceLevel::Off {
        return;
    }
    with_collector(|c| c.samples.entry(name).or_default().record(value));
}

/// Record a low-volume annotation (fallback ladder engaged, etc.).
pub fn note(name: &'static str, detail: impl Into<String>) {
    if level() == TraceLevel::Off {
        return;
    }
    let detail = detail.into();
    with_collector(|c| {
        let seq = c.next_seq();
        c.push(Event::Note { seq, name, detail });
    });
}

/// Record a serve-layer audit-lane divergence: a sampled query whose
/// behavioural (bit-parallel) result disagreed with the reference
/// SPICE-calibrated path. `lane` tags the comparison ("match" or
/// "energy"), `query_hash` identifies the query, `rel` is the relative
/// error observed. Counted at every trace level; the typed event is
/// kept whenever tracing is on (divergences are rare and load-bearing).
pub fn audit_divergence(lane: &'static str, query_hash: u64, rel: f64, detail: impl Into<String>) {
    if level() == TraceLevel::Off {
        return;
    }
    let detail = detail.into();
    with_collector(|c| {
        c.audit_divergences += 1;
        let seq = c.next_seq();
        c.push(Event::AuditDivergence {
            seq,
            lane,
            query_hash,
            rel,
            detail,
        });
    });
}

/// Record an accepted transient step (event only at `Full`).
/// `bypass_hits`/`bypass_misses` are the device-bypass counter deltas
/// accumulated while solving this step.
pub fn step_accepted(
    analysis: &'static str,
    t: f64,
    dt: f64,
    iters: usize,
    bypass_hits: u64,
    bypass_misses: u64,
) {
    let l = level();
    if l == TraceLevel::Off {
        return;
    }
    with_collector(|c| {
        c.accepted_steps += 1;
        if l == TraceLevel::Full {
            let seq = c.next_seq();
            c.push(Event::StepAccept {
                seq,
                analysis,
                t,
                dt,
                iters,
                bypass_hits,
                bypass_misses,
            });
        }
    });
}

/// Record a rejected transient step (event only at `Full`).
pub fn step_rejected(analysis: &'static str, t: f64, dt: f64, err: &Error) {
    let l = level();
    if l == TraceLevel::Off {
        return;
    }
    let reason = reject_reason(err);
    with_collector(|c| {
        c.rejected_steps += 1;
        if l == TraceLevel::Full {
            let seq = c.next_seq();
            c.push(Event::StepReject {
                seq,
                analysis,
                t,
                dt,
                reason,
            });
        }
    });
}

/// Compress a step-rejecting error into a stable reason tag.
fn reject_reason(err: &Error) -> String {
    match err {
        Error::SingularMatrix { index } => format!("singular-pivot@{index}"),
        Error::NonConvergence {
            iterations,
            forensics,
            ..
        } => match forensics {
            Some(w) => format!(
                "non-convergence after {iterations} iters (worst node {}, device {})",
                w.node, w.device
            ),
            None => format!("non-convergence after {iterations} iters"),
        },
        other => other.to_string(),
    }
}

/// Record a Newton failure with its worst-residual attribution.
pub fn newton_failure(
    analysis: &'static str,
    time: f64,
    iterations: usize,
    forensics: &crate::error::ConvergenceForensics,
) {
    if level() == TraceLevel::Off {
        return;
    }
    with_collector(|c| {
        c.newton_failures += 1;
        let seq = c.next_seq();
        c.push(Event::NewtonFail {
            seq,
            analysis,
            time,
            iterations,
            node: forensics.node.clone(),
            device: forensics.device.clone(),
            f_norm: forensics.f_norm,
            dx_norm: forensics.dx_norm,
        });
    });
}

/// Record a singular pivot mapped back to its MNA variable name.
pub fn singular_pivot(analysis: &'static str, time: f64, index: usize, node: String) {
    if level() == TraceLevel::Off {
        return;
    }
    with_collector(|c| {
        c.singular_pivots += 1;
        let seq = c.next_seq();
        c.push(Event::SingularPivot {
            seq,
            analysis,
            time,
            index,
            node,
        });
    });
}

/// Forensics helper: the human name of MNA variable `var` in `ckt` —
/// the node name for node variables, `i(<source>)` for branch currents,
/// `var<k>` when out of range.
#[must_use]
pub fn mna_var_name(ckt: &Circuit, var: usize) -> String {
    let nnode_vars = ckt.num_nodes() - 1;
    if var < nnode_vars {
        return ckt
            .node_name(crate::netlist::NodeId((var + 1) as u32))
            .to_string();
    }
    let branch = var - nnode_vars;
    for e in ckt.elements() {
        match e {
            Element::VSource {
                name, branch: b, ..
            }
            | Element::Vcvs {
                name, branch: b, ..
            } if *b == branch => {
                return format!("i({name})");
            }
            _ => {}
        }
    }
    format!("var{var}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parses() {
        assert_eq!(TraceLevel::parse("off"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("Summary"), Some(TraceLevel::Summary));
        assert_eq!(TraceLevel::parse("FULL"), Some(TraceLevel::Full));
        assert_eq!(TraceLevel::parse("bogus"), None);
    }

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(js("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(jf(1.5e-9), "1.5e-9");
        assert_eq!(jf(f64::NAN), "\"NaN\"");
        let e = Event::StepReject {
            seq: 7,
            analysis: "transient",
            t: 1e-9,
            dt: 2e-12,
            reason: "non-convergence after 100 iters".into(),
        };
        let line = e.to_json();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains(r#""kind":"step_reject""#));
        assert!(line.contains(r#""dt":2e-12"#));
    }

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let mut h = Histogram::default();
        for i in 1..=1000u64 {
            h.record(i);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // p50 of 1..=1000 lands in the [496, 512) sub-bucket.
        assert_eq!(h.quantile(0.5), Some(512.0));
        assert_eq!(h.quantile(1.0), Some(1000.0));
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn histogram_resolves_sub_octave() {
        // Nine samples at 1500 ns, one at 3000 ns. An octave histogram
        // would report p50 = 2048; log-linear bucketing must keep the
        // median inside 1500's own sub-bucket [1472, 1536).
        let mut h = Histogram::default();
        for _ in 0..9 {
            h.record(1500);
        }
        h.record(3000);
        let p50 = h.quantile(0.5).expect("non-empty");
        assert!((1500.0..=1536.0).contains(&p50), "p50 = {p50}");
        // Worst-case relative quantisation error is one sub-bucket of
        // the lowest split octave: 1/16 of the sample's value.
        assert!((p50 - 1500.0) / 1500.0 < 1.0 / 16.0 + 1e-12);
        assert_eq!(h.quantile(1.0), Some(3000.0));
    }

    #[test]
    fn histogram_buckets_are_exhaustive_and_monotone() {
        let mut samples: Vec<u64> = (0..4096).collect();
        samples.extend([u64::MAX, u64::MAX - 1, 1 << 40, (1 << 40) + 12345]);
        let mut prev_idx = 0usize;
        let mut prev_sample = 0u64;
        for &s in &samples {
            let idx = bucket_index(s);
            assert!(idx < NBUCKETS, "sample {s} -> out-of-range bucket {idx}");
            if s < SUBS as u64 {
                assert_eq!(bucket_upper(idx), s);
            } else {
                assert!(bucket_upper(idx) > s || idx == NBUCKETS - 1);
                assert!(bucket_upper(idx - 1) <= s);
            }
            if s >= prev_sample {
                assert!(idx >= prev_idx, "bucket_index not monotone at {s}");
            }
            prev_idx = idx;
            prev_sample = s;
        }
    }

    #[test]
    fn histogram_empty_has_no_quantile() {
        // Regression: an empty window must report `None`, not 0.0 — a
        // zero percentile reads as a latency improvement downstream.
        let h = Histogram::default();
        assert_eq!(h.quantile(0.99), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn var_name_maps_nodes_and_branches() {
        let mut ckt = Circuit::new();
        let a = ckt.node("ml");
        ckt.vsource("VDD", a, Circuit::gnd(), crate::waveform::Waveform::dc(1.0));
        assert_eq!(mna_var_name(&ckt, 0), "ml");
        assert_eq!(mna_var_name(&ckt, 1), "i(VDD)");
        assert_eq!(mna_var_name(&ckt, 9), "var9");
    }
}
