//! Time-dependent source waveforms (DC, pulse, PWL, sine).

use serde::{Deserialize, Serialize};

/// A source waveform `v(t)` (volts for voltage sources, amps for current
/// sources).
///
/// ```
/// use ferrotcam_spice::waveform::Waveform;
/// let w = Waveform::pulse(0.0, 1.0, 1e-9, 10e-12, 10e-12, 2e-9);
/// assert_eq!(w.value(0.0), 0.0);
/// assert!((w.value(1.5e-9) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// Single (non-periodic) trapezoidal pulse.
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the rising edge starts.
        delay: f64,
        /// Rise time (0 is snapped to a 1 fs ramp).
        rise: f64,
        /// Fall time (0 is snapped to a 1 fs ramp).
        fall: f64,
        /// Time spent at `v2` between ramps.
        width: f64,
    },
    /// Piece-wise linear: sorted `(time, value)` corner list. Before the
    /// first corner the first value holds; after the last corner the last
    /// value holds.
    Pwl(Vec<(f64, f64)>),
    /// Sinusoid `offset + ampl * sin(2π·freq·(t − delay))` for `t ≥ delay`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency in Hz.
        freq: f64,
        /// Start delay in seconds.
        delay: f64,
    },
    /// Periodic trapezoidal pulse train (SPICE `PULSE` with period):
    /// after `delay`, the single-pulse shape repeats every `period`.
    PulseTrain {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first rising edge.
        delay: f64,
        /// Rise time.
        rise: f64,
        /// Fall time.
        fall: f64,
        /// Time spent at `v2`.
        width: f64,
        /// Repetition period (≥ rise + width + fall).
        period: f64,
    },
}

/// Zero-length ramps are snapped to this (1 fs) so the waveform stays
/// continuous and the integrator can place a breakpoint on both corners.
const MIN_RAMP: f64 = 1e-15;

impl Waveform {
    /// Constant waveform.
    #[must_use]
    pub fn dc(v: f64) -> Self {
        Waveform::Dc(v)
    }

    /// Single trapezoidal pulse (see [`Waveform::Pulse`] field docs).
    #[must_use]
    pub fn pulse(v1: f64, v2: f64, delay: f64, rise: f64, fall: f64, width: f64) -> Self {
        Waveform::Pulse {
            v1,
            v2,
            delay,
            rise: rise.max(MIN_RAMP),
            fall: fall.max(MIN_RAMP),
            width,
        }
    }

    /// Periodic pulse train (see [`Waveform::PulseTrain`] field docs).
    ///
    /// # Panics
    /// Panics when `period < rise + width + fall`.
    #[must_use]
    pub fn pulse_train(
        v1: f64,
        v2: f64,
        delay: f64,
        rise: f64,
        fall: f64,
        width: f64,
        period: f64,
    ) -> Self {
        let rise = rise.max(MIN_RAMP);
        let fall = fall.max(MIN_RAMP);
        assert!(
            period >= rise + width + fall,
            "pulse train period shorter than the pulse itself"
        );
        Waveform::PulseTrain {
            v1,
            v2,
            delay,
            rise,
            fall,
            width,
            period,
        }
    }

    /// Piece-wise linear waveform from `(time, value)` corners.
    ///
    /// # Panics
    /// Panics if corners are not sorted by time.
    #[must_use]
    pub fn pwl(points: Vec<(f64, f64)>) -> Self {
        assert!(
            points.windows(2).all(|w| w[0].0 <= w[1].0),
            "pwl corners must be sorted by time"
        );
        Waveform::Pwl(points)
    }

    /// Evaluate the waveform at time `t` (seconds).
    #[must_use]
    pub fn value(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
            } => {
                let t1 = *delay;
                let t2 = t1 + rise;
                let t3 = t2 + width;
                let t4 = t3 + fall;
                if t < t1 {
                    *v1
                } else if t < t2 {
                    v1 + (v2 - v1) * (t - t1) / rise
                } else if t < t3 {
                    *v2
                } else if t < t4 {
                    v2 + (v1 - v2) * (t - t3) / fall
                } else {
                    *v1
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                let idx = points.partition_point(|&(pt, _)| pt <= t);
                let (t0, v0) = points[idx - 1];
                let (t1, v1) = points[idx];
                if t1 == t0 {
                    v1
                } else {
                    v0 + (v1 - v0) * (t - t0) / (t1 - t0)
                }
            }
            Waveform::Sine {
                offset,
                ampl,
                freq,
                delay,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset + ampl * (2.0 * std::f64::consts::PI * freq * (t - delay)).sin()
                }
            }
            Waveform::PulseTrain {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let tp = (t - delay) % period;
                let t2 = *rise;
                let t3 = t2 + width;
                let t4 = t3 + fall;
                if tp < t2 {
                    v1 + (v2 - v1) * tp / rise
                } else if tp < t3 {
                    *v2
                } else if tp < t4 {
                    v2 + (v1 - v2) * (tp - t3) / fall
                } else {
                    *v1
                }
            }
        }
    }

    /// Corner times in `(0, t_stop)` where the derivative is discontinuous.
    /// The transient engine lands a time point exactly on each corner.
    #[must_use]
    pub fn breakpoints(&self, t_stop: f64) -> Vec<f64> {
        let mut bp = match self {
            Waveform::Dc(_) => Vec::new(),
            Waveform::Pulse {
                delay,
                rise,
                fall,
                width,
                ..
            } => {
                let t1 = *delay;
                let t2 = t1 + rise;
                let t3 = t2 + width;
                let t4 = t3 + fall;
                vec![t1, t2, t3, t4]
            }
            Waveform::Pwl(points) => points.iter().map(|&(t, _)| t).collect(),
            Waveform::Sine { delay, .. } => vec![*delay],
            Waveform::PulseTrain {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => {
                let mut out = Vec::new();
                let mut start = *delay;
                while start < t_stop {
                    let t2 = start + rise;
                    let t3 = t2 + width;
                    let t4 = t3 + fall;
                    out.extend_from_slice(&[start, t2, t3, t4]);
                    start += period;
                }
                out
            }
        };
        bp.retain(|&t| t > 0.0 && t < t_stop);
        bp
    }

    /// The maximum absolute value the waveform attains (used by source
    /// stepping to scale sources uniformly).
    #[must_use]
    pub fn amplitude(&self) -> f64 {
        match self {
            Waveform::Dc(v) => v.abs(),
            Waveform::Pulse { v1, v2, .. } => v1.abs().max(v2.abs()),
            Waveform::Pwl(points) => points.iter().map(|&(_, v)| v.abs()).fold(0.0, f64::max),
            Waveform::Sine { offset, ampl, .. } => offset.abs() + ampl.abs(),
            Waveform::PulseTrain { v1, v2, .. } => v1.abs().max(v2.abs()),
        }
    }
}

impl Default for Waveform {
    fn default() -> Self {
        Waveform::Dc(0.0)
    }
}

impl From<f64> for Waveform {
    fn from(v: f64) -> Self {
        Waveform::Dc(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_flat() {
        let w = Waveform::dc(1.5);
        assert_eq!(w.value(0.0), 1.5);
        assert_eq!(w.value(1.0), 1.5);
        assert!(w.breakpoints(1.0).is_empty());
    }

    #[test]
    fn pulse_shape() {
        let w = Waveform::pulse(0.0, 2.0, 1.0, 0.5, 0.5, 2.0);
        assert_eq!(w.value(0.5), 0.0);
        assert!((w.value(1.25) - 1.0).abs() < 1e-12); // mid-rise
        assert_eq!(w.value(2.0), 2.0); // plateau
        assert!((w.value(3.75) - 1.0).abs() < 1e-12); // mid-fall
        assert_eq!(w.value(5.0), 0.0);
        assert_eq!(w.breakpoints(10.0), vec![1.0, 1.5, 3.5, 4.0]);
    }

    #[test]
    fn pulse_zero_ramps_are_snapped() {
        let w = Waveform::pulse(0.0, 1.0, 0.0, 0.0, 0.0, 1e-9);
        // Just after t = MIN_RAMP the pulse is fully high.
        assert!((w.value(1e-14) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::pwl(vec![(1.0, 0.0), (2.0, 4.0)]);
        assert_eq!(w.value(0.0), 0.0);
        assert!((w.value(1.5) - 2.0).abs() < 1e-12);
        assert_eq!(w.value(3.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn pwl_rejects_unsorted() {
        let _ = Waveform::pwl(vec![(2.0, 0.0), (1.0, 1.0)]);
    }

    #[test]
    fn sine_basic() {
        let w = Waveform::Sine {
            offset: 1.0,
            ampl: 2.0,
            freq: 1.0,
            delay: 0.0,
        };
        assert!((w.value(0.25) - 3.0).abs() < 1e-12);
        assert!((w.amplitude() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pulse_train_repeats() {
        let w = Waveform::pulse_train(0.0, 1.0, 1.0, 0.1, 0.1, 0.3, 1.0);
        assert_eq!(w.value(0.5), 0.0);
        for k in 0..4 {
            let base = 1.0 + k as f64;
            assert!((w.value(base + 0.25) - 1.0).abs() < 1e-12, "cycle {k}");
            assert_eq!(w.value(base + 0.9), 0.0, "cycle {k} idle");
        }
        // Breakpoints land in every period within the window.
        let bp = w.breakpoints(3.2);
        assert!(bp.len() >= 8);
        assert!(bp.iter().all(|&t| t > 0.0 && t < 3.2));
        assert!((w.amplitude() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "period shorter")]
    fn pulse_train_rejects_overlapping_period() {
        let _ = Waveform::pulse_train(0.0, 1.0, 0.0, 0.2, 0.2, 0.7, 1.0);
    }

    #[test]
    fn breakpoints_clipped_to_window() {
        let w = Waveform::pulse(0.0, 1.0, 1.0, 0.1, 0.1, 5.0);
        assert_eq!(w.breakpoints(2.0), vec![1.0, 1.1]);
    }
}
