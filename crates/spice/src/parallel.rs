//! Dependency-free scoped worker pool for embarrassingly parallel sweeps.
//!
//! The sweep runners (DC sweeps, Monte Carlo sampling, benchmark grids)
//! fan independent jobs out over `std::thread::scope` workers. Results
//! come back in input order regardless of scheduling, so parallel runs
//! are drop-in replacements for their serial counterparts; callers that
//! need bit-identical numerics additionally derive any per-job random
//! state from the job index, never from the worker.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count to use when the caller has no preference: the
/// `FERROTCAM_JOBS` environment variable when set (clamped to at least
/// one), otherwise the machine's available parallelism.
#[must_use]
pub fn default_jobs() -> usize {
    if let Ok(s) = std::env::var("FERROTCAM_JOBS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Apply `f(index, &item)` to every item on up to `jobs` worker threads,
/// returning results in input order.
///
/// Work is claimed dynamically (an atomic cursor), so uneven job costs
/// balance across workers. With `jobs <= 1` or fewer than two items the
/// work runs inline on the caller's thread with no pool at all.
///
/// # Panics
/// Propagates the first panic raised inside `f` once all workers have
/// stopped (the scope joins every thread).
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(i, item);
                slots.lock().expect("no poisoned results")[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .expect("no poisoned results")
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, 4, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..37).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9e37_79b9).rotate_left(7);
        let serial = par_map(&items, 1, f);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(par_map(&items, jobs, f), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: [u8; 0] = [];
        assert!(par_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_map(&[5u8], 8, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
