//! Circuit construction: nodes, linear elements, and device registration.

use crate::error::{Error, Result};
use crate::nonlinear::NonlinearDevice;
use crate::waveform::Waveform;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a circuit node. `NodeId::GROUND` is the reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The reference (ground) node, always present.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index (0 = ground).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the reference node.
    #[must_use]
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A linear element instance.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Element {
    /// Linear resistor between `p` and `n`.
    Resistor {
        /// Instance name.
        name: String,
        /// Positive node.
        p: NodeId,
        /// Negative node.
        n: NodeId,
        /// Resistance in ohms (> 0).
        ohms: f64,
    },
    /// Linear capacitor between `p` and `n`.
    Capacitor {
        /// Instance name.
        name: String,
        /// Positive node.
        p: NodeId,
        /// Negative node.
        n: NodeId,
        /// Capacitance in farads (≥ 0).
        farads: f64,
    },
    /// Independent voltage source; branch current is an MNA unknown.
    VSource {
        /// Instance name.
        name: String,
        /// Positive node.
        p: NodeId,
        /// Negative node.
        n: NodeId,
        /// Source waveform.
        wave: Waveform,
        /// Branch index assigned at construction.
        branch: usize,
    },
    /// Independent current source driving current from `p` to `n`
    /// through itself (SPICE convention).
    ISource {
        /// Instance name.
        name: String,
        /// Positive node.
        p: NodeId,
        /// Negative node.
        n: NodeId,
        /// Source waveform.
        wave: Waveform,
    },
    /// Voltage-controlled voltage source: `v(p,n) = gain · (v(cp) − v(cn))`;
    /// its branch current is an MNA unknown.
    Vcvs {
        /// Instance name.
        name: String,
        /// Output positive node.
        p: NodeId,
        /// Output negative node.
        n: NodeId,
        /// Controlling positive node.
        cp: NodeId,
        /// Controlling negative node.
        cn: NodeId,
        /// Voltage gain.
        gain: f64,
        /// Branch index assigned at construction.
        branch: usize,
    },
    /// Voltage-controlled current source: `i(p→n) = gm · (v(cp) − v(cn))`.
    Vccs {
        /// Instance name.
        name: String,
        /// Output positive node.
        p: NodeId,
        /// Output negative node.
        n: NodeId,
        /// Controlling positive node.
        cp: NodeId,
        /// Controlling negative node.
        cn: NodeId,
        /// Transconductance in siemens.
        gm: f64,
    },
}

impl Element {
    /// Instance name of the element.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor { name, .. }
            | Element::Capacitor { name, .. }
            | Element::VSource { name, .. }
            | Element::ISource { name, .. }
            | Element::Vcvs { name, .. }
            | Element::Vccs { name, .. } => name,
        }
    }
}

/// A circuit under construction or simulation.
///
/// ```
/// use ferrotcam_spice::netlist::Circuit;
/// use ferrotcam_spice::waveform::Waveform;
///
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let out = ckt.node("out");
/// ckt.vsource("V1", vin, Circuit::gnd(), Waveform::dc(1.0));
/// ckt.resistor("R1", vin, out, 1e3);
/// ckt.resistor("R2", out, Circuit::gnd(), 1e3);
/// assert_eq!(ckt.num_nodes(), 3); // ground + 2
/// ```
#[derive(Debug, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    node_index: HashMap<String, NodeId>,
    elements: Vec<Element>,
    devices: Vec<Box<dyn NonlinearDevice>>,
    num_branches: usize,
    initial_conditions: Vec<(NodeId, f64)>,
}

impl Circuit {
    /// Create an empty circuit containing only the ground node.
    #[must_use]
    pub fn new() -> Self {
        let mut c = Self {
            node_names: Vec::new(),
            node_index: HashMap::new(),
            elements: Vec::new(),
            devices: Vec::new(),
            num_branches: 0,
            initial_conditions: Vec::new(),
        };
        c.node_names.push("0".to_string());
        c.node_index.insert("0".to_string(), NodeId::GROUND);
        c
    }

    /// The reference node.
    #[must_use]
    pub fn gnd() -> NodeId {
        NodeId::GROUND
    }

    /// Get or create the node named `name`.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.node_index.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len() as u32);
        self.node_names.push(name.to_string());
        self.node_index.insert(name.to_string(), id);
        id
    }

    /// Look up an existing node by name.
    #[must_use]
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_index.get(name).copied()
    }

    /// Name of a node.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this circuit.
    #[must_use]
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.index()]
    }

    /// Total node count including ground.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of branch-current unknowns (one per voltage source).
    #[must_use]
    pub fn num_branches(&self) -> usize {
        self.num_branches
    }

    /// Linear elements in insertion order.
    #[must_use]
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Mutable access to the linear elements (e.g. to rewrite source
    /// waveforms for burst/periodic experiments).
    pub fn elements_mut(&mut self) -> &mut [Element] {
        &mut self.elements
    }

    /// Nonlinear devices in insertion order.
    #[must_use]
    pub fn devices(&self) -> &[Box<dyn NonlinearDevice>] {
        &self.devices
    }

    /// Mutable access to the nonlinear devices (used by the transient
    /// engine to commit state).
    pub fn devices_mut(&mut self) -> &mut [Box<dyn NonlinearDevice>] {
        &mut self.devices
    }

    /// Node-level initial conditions declared with
    /// [`Circuit::initial_condition`].
    #[must_use]
    pub fn initial_conditions(&self) -> &[(NodeId, f64)] {
        &self.initial_conditions
    }

    /// Add a resistor.
    ///
    /// # Errors
    /// Rejects non-positive or non-finite resistance.
    pub fn resistor(&mut self, name: &str, p: NodeId, n: NodeId, ohms: f64) -> Result<()> {
        if !(ohms.is_finite() && ohms > 0.0) {
            return Err(Error::InvalidParameter {
                what: format!("resistor {name} ohms"),
                value: ohms,
            });
        }
        self.check_nodes(&[p, n])?;
        self.elements.push(Element::Resistor {
            name: name.to_string(),
            p,
            n,
            ohms,
        });
        Ok(())
    }

    /// Add a capacitor.
    ///
    /// # Errors
    /// Rejects negative or non-finite capacitance.
    pub fn capacitor(&mut self, name: &str, p: NodeId, n: NodeId, farads: f64) -> Result<()> {
        if !(farads.is_finite() && farads >= 0.0) {
            return Err(Error::InvalidParameter {
                what: format!("capacitor {name} farads"),
                value: farads,
            });
        }
        self.check_nodes(&[p, n])?;
        self.elements.push(Element::Capacitor {
            name: name.to_string(),
            p,
            n,
            farads,
        });
        Ok(())
    }

    /// Add an independent voltage source. Its branch current becomes an
    /// MNA unknown retrievable from traces as `i(<name>)`.
    pub fn vsource(&mut self, name: &str, p: NodeId, n: NodeId, wave: Waveform) -> usize {
        let branch = self.num_branches;
        self.num_branches += 1;
        self.elements.push(Element::VSource {
            name: name.to_string(),
            p,
            n,
            wave,
            branch,
        });
        branch
    }

    /// Add an independent current source (current flows `p → n` through
    /// the source).
    pub fn isource(&mut self, name: &str, p: NodeId, n: NodeId, wave: Waveform) {
        self.elements.push(Element::ISource {
            name: name.to_string(),
            p,
            n,
            wave,
        });
    }

    /// Add a voltage-controlled voltage source; returns its branch
    /// index (its current is an MNA unknown like an independent source).
    pub fn vcvs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gain: f64,
    ) -> usize {
        let branch = self.num_branches;
        self.num_branches += 1;
        self.elements.push(Element::Vcvs {
            name: name.to_string(),
            p,
            n,
            cp,
            cn,
            gain,
            branch,
        });
        branch
    }

    /// Add a voltage-controlled current source.
    pub fn vccs(&mut self, name: &str, p: NodeId, n: NodeId, cp: NodeId, cn: NodeId, gm: f64) {
        self.elements.push(Element::Vccs {
            name: name.to_string(),
            p,
            n,
            cp,
            cn,
            gm,
        });
    }

    /// Register a nonlinear device.
    pub fn device(&mut self, dev: Box<dyn NonlinearDevice>) {
        self.devices.push(dev);
    }

    /// Remove the first linear element named `name`, returning it.
    ///
    /// Branch indices of remaining sources are *not* renumbered: a
    /// removed voltage source leaves its branch unknown behind with no
    /// stamps, which the ERC matching pass reports as structurally
    /// singular. Intended for fault-injection and mutation testing, not
    /// incremental netlist editing.
    pub fn remove_element(&mut self, name: &str) -> Option<Element> {
        let idx = self.elements.iter().position(|e| e.name() == name)?;
        Some(self.elements.remove(idx))
    }

    /// Declare a node initial condition used by `uic` transient runs.
    pub fn initial_condition(&mut self, node: NodeId, volts: f64) {
        self.initial_conditions.push((node, volts));
    }

    /// Names of all nodes except ground, in id order (the trace layout).
    #[must_use]
    pub fn signal_nodes(&self) -> Vec<&str> {
        self.node_names.iter().skip(1).map(String::as_str).collect()
    }

    /// Render the circuit as a SPICE-compatible netlist (for debugging
    /// and interop with external simulators). Linear elements map to
    /// native SPICE cards; nonlinear devices are emitted as `X`
    /// subcircuit calls with their terminal nodes, to be bound to model
    /// cards externally.
    #[must_use]
    pub fn to_spice(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut s = format!("* {title}\n");
        let node = |n: NodeId| {
            if n.is_ground() {
                "0".to_string()
            } else {
                self.node_name(n).to_string()
            }
        };
        for e in &self.elements {
            match e {
                Element::Resistor { name, p, n, ohms } => {
                    let _ = writeln!(s, "R{name} {} {} {ohms:.6e}", node(*p), node(*n));
                }
                Element::Capacitor { name, p, n, farads } => {
                    let _ = writeln!(s, "C{name} {} {} {farads:.6e}", node(*p), node(*n));
                }
                Element::VSource {
                    name, p, n, wave, ..
                } => {
                    let _ = writeln!(s, "V{name} {} {} {}", node(*p), node(*n), spice_wave(wave));
                }
                Element::ISource { name, p, n, wave } => {
                    let _ = writeln!(s, "I{name} {} {} {}", node(*p), node(*n), spice_wave(wave));
                }
                Element::Vcvs {
                    name,
                    p,
                    n,
                    cp,
                    cn,
                    gain,
                    ..
                } => {
                    let _ = writeln!(
                        s,
                        "E{name} {} {} {} {} {gain:.6e}",
                        node(*p),
                        node(*n),
                        node(*cp),
                        node(*cn)
                    );
                }
                Element::Vccs {
                    name,
                    p,
                    n,
                    cp,
                    cn,
                    gm,
                } => {
                    let _ = writeln!(
                        s,
                        "G{name} {} {} {} {} {gm:.6e}",
                        node(*p),
                        node(*n),
                        node(*cp),
                        node(*cn)
                    );
                }
            }
        }
        for d in &self.devices {
            let terms: Vec<String> = d.terminals().iter().map(|&t| node(t)).collect();
            let _ = writeln!(s, "X{} {} {}_model", d.name(), terms.join(" "), d.name());
        }
        s.push_str(".end\n");
        s
    }

    fn check_nodes(&self, nodes: &[NodeId]) -> Result<()> {
        for &nd in nodes {
            if nd.index() >= self.node_names.len() {
                return Err(Error::UnknownNode { index: nd.index() });
            }
        }
        Ok(())
    }
}

/// Render a waveform as a SPICE source description.
fn spice_wave(w: &Waveform) -> String {
    match w {
        Waveform::Dc(v) => format!("DC {v:.6e}"),
        Waveform::Pulse {
            v1,
            v2,
            delay,
            rise,
            fall,
            width,
        } => format!("PULSE({v1:.4e} {v2:.4e} {delay:.4e} {rise:.4e} {fall:.4e} {width:.4e})"),
        Waveform::PulseTrain {
            v1,
            v2,
            delay,
            rise,
            fall,
            width,
            period,
        } => format!(
            "PULSE({v1:.4e} {v2:.4e} {delay:.4e} {rise:.4e} {fall:.4e} {width:.4e} {period:.4e})"
        ),
        Waveform::Pwl(points) => {
            let body: Vec<String> = points
                .iter()
                .map(|&(t, v)| format!("{t:.4e} {v:.4e}"))
                .collect();
            format!("PWL({})", body.join(" "))
        }
        Waveform::Sine {
            offset,
            ampl,
            freq,
            delay,
        } => {
            format!("SIN({offset:.4e} {ampl:.4e} {freq:.4e} {delay:.4e})")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_interned() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        let b = c.node("b");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(c.num_nodes(), 3);
        assert_eq!(c.node_name(a), "a");
        assert!(Circuit::gnd().is_ground());
        assert!(!a.is_ground());
    }

    #[test]
    fn invalid_resistor_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        assert!(c.resistor("R1", a, Circuit::gnd(), 0.0).is_err());
        assert!(c.resistor("R2", a, Circuit::gnd(), -5.0).is_err());
        assert!(c.resistor("R3", a, Circuit::gnd(), f64::NAN).is_err());
        assert!(c.resistor("R4", a, Circuit::gnd(), 1e3).is_ok());
    }

    #[test]
    fn negative_capacitor_rejected_zero_allowed() {
        let mut c = Circuit::new();
        let a = c.node("a");
        assert!(c.capacitor("C1", a, Circuit::gnd(), -1e-15).is_err());
        assert!(c.capacitor("C2", a, Circuit::gnd(), 0.0).is_ok());
    }

    #[test]
    fn branches_count_voltage_sources() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        let b0 = c.vsource("V1", a, Circuit::gnd(), Waveform::dc(1.0));
        let b1 = c.vsource("V2", b, Circuit::gnd(), Waveform::dc(2.0));
        assert_eq!((b0, b1), (0, 1));
        assert_eq!(c.num_branches(), 2);
    }

    #[test]
    fn spice_export_contains_all_cards() {
        let mut c = Circuit::new();
        let a = c.node("in");
        let b = c.node("out");
        c.vsource("V1", a, Circuit::gnd(), Waveform::dc(1.0));
        c.resistor("R1", a, b, 1e3).unwrap();
        c.capacitor("C1", b, Circuit::gnd(), 1e-12).unwrap();
        c.isource(
            "I1",
            Circuit::gnd(),
            b,
            Waveform::pulse(0.0, 1e-3, 0.0, 1e-9, 1e-9, 1e-8),
        );
        c.vccs("G1", b, Circuit::gnd(), a, Circuit::gnd(), 1e-3);
        let s = c.to_spice("test circuit");
        assert!(s.starts_with("* test circuit\n"));
        assert!(s.contains("RR1 in out 1.000000e3"));
        assert!(s.contains("VV1 in 0 DC 1.000000e0"));
        assert!(s.contains("CC1 out 0 1.000000e-12"));
        assert!(s.contains("II1 0 out PULSE("));
        assert!(s.contains("GG1 out 0 in 0 1.000000e-3"));
        assert!(s.trim_end().ends_with(".end"));
    }

    #[test]
    fn find_node_only_returns_existing() {
        let mut c = Circuit::new();
        c.node("x");
        assert!(c.find_node("x").is_some());
        assert!(c.find_node("y").is_none());
    }
}
