//! Interface implemented by nonlinear, possibly state-holding devices
//! (MOSFETs, FeFETs, diodes).
//!
//! The engine linearises each device at every Newton iteration from the
//! currents/charges and their Jacobians reported through [`DeviceStamps`].
//! Charge storage uses the charge formulation (`Q(v)` rather than `C`),
//! which is what lets the ferroelectric hysteresis integrate correctly.

use crate::netlist::NodeId;
use std::fmt;

/// How aggressively the Newton loop may skip [`NonlinearDevice::eval`]
/// calls for devices whose terminal voltages have not moved since their
/// cached evaluation (the classic SPICE "bypass" optimisation).
///
/// Bypassing only skips the *evaluation*; the device is always restamped
/// from its cached linearisation, and hysteretic state is untouched
/// because state only ever advances in [`NonlinearDevice::commit`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BypassPolicy {
    /// Never bypass: every device is evaluated at every iteration.
    /// The default — bypass is strictly opt-in via `FERROTCAM_BYPASS`
    /// or explicit solver options.
    #[default]
    Off,
    /// Bypass within a Newton solve only. Every solve (every timestep,
    /// every gmin/source-stepping stage) starts with a full evaluation
    /// of all devices, so a device can only be bypassed against a cache
    /// built earlier in the *same* solve.
    Safe,
    /// Let caches persist across accepted timesteps: a quiescent device
    /// skips evaluation even on the first iteration of a step. Caches
    /// are still dropped after rejected steps and whenever the gmin or
    /// source-stepping stage changes.
    Aggressive,
}

impl BypassPolicy {
    /// Parse an `off|safe|aggressive` policy string.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(Self::Off),
            "safe" => Some(Self::Safe),
            "aggressive" => Some(Self::Aggressive),
            _ => None,
        }
    }

    /// Resolve the policy from `FERROTCAM_BYPASS`, defaulting to
    /// [`BypassPolicy::Off`] when unset. Unknown values fall back to
    /// `Off` too — a typo must never silently enable approximation.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("FERROTCAM_BYPASS") {
            Ok(v) => Self::parse(&v).unwrap_or(Self::Off),
            Err(_) => Self::Off,
        }
    }

    /// Whether this policy permits any bypassing at all.
    #[must_use]
    pub fn enabled(self) -> bool {
        !matches!(self, Self::Off)
    }
}

/// Evaluation context shared by all devices.
#[derive(Debug, Clone)]
pub struct EvalCtx {
    /// Simulation temperature in kelvin.
    pub temp: f64,
    /// Extra conductance from ground to every node (gmin stepping).
    pub gmin: f64,
    /// Current simulation time (0 for DC).
    pub time: f64,
}

impl Default for EvalCtx {
    fn default() -> Self {
        Self {
            temp: crate::units::TEMP_NOMINAL,
            gmin: 1e-12,
            time: 0.0,
        }
    }
}

/// Output buffers a device fills during [`NonlinearDevice::eval`].
///
/// All quantities use the *into-device* sign convention: `i[t]` is the
/// static current flowing from node `terminals()[t]` into the device and
/// `q[t]` the charge stored on that terminal.
#[derive(Debug, Clone, Default)]
pub struct DeviceStamps {
    /// Static terminal currents (A), length `T`.
    pub i: Vec<f64>,
    /// Terminal charges (C), length `T`.
    pub q: Vec<f64>,
    /// `di[t]/dv[u]` row-major `T × T` (S).
    pub gi: Vec<f64>,
    /// `dq[t]/dv[u]` row-major `T × T` (F).
    pub cq: Vec<f64>,
}

impl DeviceStamps {
    /// Allocate buffers for a `t`-terminal device.
    #[must_use]
    pub fn new(t: usize) -> Self {
        Self {
            i: vec![0.0; t],
            q: vec![0.0; t],
            gi: vec![0.0; t * t],
            cq: vec![0.0; t * t],
        }
    }

    /// Zero all buffers (engine calls this before each `eval`).
    pub fn clear(&mut self) {
        self.i.fill(0.0);
        self.q.fill(0.0);
        self.gi.fill(0.0);
        self.cq.fill(0.0);
    }

    /// Number of terminals these buffers were sized for.
    #[must_use]
    pub fn terminals(&self) -> usize {
        self.i.len()
    }

    /// Accumulate a conductance `g` between terminal indices `a` and `b`
    /// plus the current `i` it carries from `a` to `b` (helper for
    /// two-terminal branches inside multi-terminal devices).
    pub fn add_branch_current(&mut self, a: usize, b: usize, i: f64, g: f64) {
        let t = self.terminals();
        self.i[a] += i;
        self.i[b] -= i;
        self.gi[a * t + a] += g;
        self.gi[a * t + b] -= g;
        self.gi[b * t + a] -= g;
        self.gi[b * t + b] += g;
    }

    /// Accumulate a charge branch: charge `q` stored from `a` to `b` with
    /// incremental capacitance `c`.
    pub fn add_branch_charge(&mut self, a: usize, b: usize, q: f64, c: f64) {
        let t = self.terminals();
        self.q[a] += q;
        self.q[b] -= q;
        self.cq[a * t + a] += c;
        self.cq[a * t + b] -= c;
        self.cq[b * t + a] -= c;
        self.cq[b * t + b] += c;
    }
}

/// A nonlinear device living in a [`crate::netlist::Circuit`].
///
/// Implementations evaluate currents/charges as pure functions of the
/// terminal voltages; history-dependent devices (ferroelectrics) keep
/// internal state which is only advanced in [`NonlinearDevice::commit`],
/// called once per *accepted* time step.
///
/// # Bypass safety
///
/// The Newton loop may *skip* [`NonlinearDevice::eval`] for devices
/// whose terminal voltages are within tolerance of a cached operating
/// point (see [`BypassPolicy`]), reusing the cached [`DeviceStamps`].
/// Two properties make this sound, and implementations must preserve
/// them:
///
/// 1. `eval` takes `&self` and must be a *pure function* of
///    `(v, ctx.temp)` and committed state — deterministic, no interior
///    mutability, no dependence on `ctx.time` or `ctx.gmin` (the engine
///    stamps gmin itself). Re-evaluating at the cached voltages must
///    reproduce the cached stamps bit for bit.
/// 2. History (e.g. Preisach hysteresis) advances **only** in `commit`,
///    which the engine calls exactly once per accepted timestep with a
///    freshly evaluated operating point — never from a bypassed
///    iteration. A skipped `eval` therefore can never advance or skip
///    ferroelectric state.
pub trait NonlinearDevice: fmt::Debug + Send + Sync {
    /// Instance name (unique within a circuit by convention).
    fn name(&self) -> &str;

    /// Terminal nodes, in the device's canonical order.
    fn terminals(&self) -> &[NodeId];

    /// Evaluate currents, charges and Jacobians at terminal voltages `v`
    /// (same order as [`Self::terminals`]). Buffers arrive zeroed.
    /// Must be pure — see the trait-level *Bypass safety* notes.
    fn eval(&self, v: &[f64], out: &mut DeviceStamps, ctx: &EvalCtx);

    /// Accept the state at the end of a converged time step. Default: no-op.
    fn commit(&mut self, v: &[f64], ctx: &EvalCtx) {
        let _ = (v, ctx);
    }

    /// Whether [`Self::commit`] can change what a later `eval` returns at
    /// the *same* voltages (the device holds history). State-holding
    /// devices **must** return `true`; the engine drops their bypass
    /// caches across commits so an aggressive policy never stamps a
    /// stale pre-commit linearisation. Default: stateless (`false`).
    fn has_history(&self) -> bool {
        false
    }

    /// Expose a named internal state (e.g. `"polarization"`) for probing.
    fn state(&self, key: &str) -> Option<f64> {
        let _ = key;
        None
    }

    /// Terminal-index pairs between which the device conducts at DC
    /// (used by the ERC connectivity pass). The default — every pair —
    /// is conservative: it can only hide a missing-DC-path defect, never
    /// invent one. Transistor-like devices should narrow this to the
    /// channel (e.g. drain–source) so floating gates are caught.
    fn dc_paths(&self) -> Vec<(usize, usize)> {
        let t = self.terminals().len();
        let mut pairs = Vec::new();
        for a in 0..t {
            for b in (a + 1)..t {
                pairs.push((a, b));
            }
        }
        pairs
    }

    /// Model parameters exposed for ERC domain checking. Default: none.
    fn erc_params(&self) -> Vec<crate::erc::ErcParam> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_current_is_antisymmetric() {
        let mut s = DeviceStamps::new(3);
        s.add_branch_current(0, 2, 1e-3, 1e-4);
        assert_eq!(s.i[0], 1e-3);
        assert_eq!(s.i[2], -1e-3);
        assert_eq!(s.i[1], 0.0);
        assert_eq!(s.gi[0], 1e-4);
        assert_eq!(s.gi[2], -1e-4);
        assert_eq!(s.gi[2 * 3 + 2], 1e-4);
        // Row sums zero (floating device: no net current creation).
        let i_sum: f64 = s.i.iter().sum();
        assert!(i_sum.abs() < 1e-18);
    }

    #[test]
    fn branch_charge_mirrors_current_layout() {
        let mut s = DeviceStamps::new(2);
        s.add_branch_charge(0, 1, 2e-15, 1e-15);
        assert_eq!(s.q[0], 2e-15);
        assert_eq!(s.q[1], -2e-15);
        assert_eq!(s.cq[0], 1e-15);
        assert_eq!(s.cq[3], 1e-15);
        assert_eq!(s.cq[1], -1e-15);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = DeviceStamps::new(2);
        s.add_branch_current(0, 1, 1.0, 1.0);
        s.add_branch_charge(0, 1, 1.0, 1.0);
        s.clear();
        assert!(s
            .i
            .iter()
            .chain(&s.q)
            .chain(&s.gi)
            .chain(&s.cq)
            .all(|&x| x == 0.0));
    }
}
