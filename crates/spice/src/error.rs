//! Error types for circuit construction and simulation.

use std::error::Error as StdError;
use std::fmt;

/// Worst-residual attribution attached to [`Error::NonConvergence`].
///
/// Computed from the last assembled Newton system: the KCL residual
/// `r = b − A·x` is scanned for its largest-magnitude entry (node rows
/// first — node and branch rows carry different units), the row is
/// mapped back to its node or branch-current name, and the nonlinear
/// device contributing the largest stamp current at that row is blamed.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceForensics {
    /// Name of the MNA variable with the worst residual (a node name,
    /// or `i(<source>)` for a branch current).
    pub node: String,
    /// Instance name of the device/element contributing most to that
    /// residual (empty when nothing stamps the row).
    pub device: String,
    /// Final residual max-norm `max|b − A·x|` over node rows.
    pub f_norm: f64,
    /// Final Newton update max-norm `max|dx|` (infinite when the solve
    /// produced non-finite values).
    pub dx_norm: f64,
}

/// Errors produced while building or simulating a circuit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A matrix factorisation found a zero (or numerically negligible) pivot.
    SingularMatrix {
        /// Row/column index at which factorisation failed.
        index: usize,
    },
    /// Newton–Raphson failed to converge within the iteration limit,
    /// even after gmin and source stepping.
    NonConvergence {
        /// Analysis that failed (`"dc"` or `"transient"`).
        analysis: &'static str,
        /// Simulation time at which convergence failed (seconds; 0 for DC).
        time: f64,
        /// Iterations spent in the final attempt.
        iterations: usize,
        /// Worst-residual attribution, when the engine could compute it.
        forensics: Option<Box<ConvergenceForensics>>,
    },
    /// A node id referenced an element that does not exist in the circuit.
    UnknownNode {
        /// The offending node index.
        index: usize,
    },
    /// An element parameter was out of its valid domain
    /// (e.g. a non-positive capacitance).
    InvalidParameter {
        /// Element or parameter name.
        what: String,
        /// Offending value.
        value: f64,
    },
    /// The transient time step shrank below the resolvable minimum.
    TimeStepTooSmall {
        /// Simulation time at which the step collapsed.
        time: f64,
        /// The rejected step size.
        dt: f64,
    },
    /// A probe referenced a signal that was never recorded.
    UnknownSignal {
        /// Requested signal name.
        name: String,
    },
    /// The circuit has no unknowns to solve for (no non-ground nodes and
    /// no branch currents).
    EmptyCircuit,
    /// Two elements or devices share one instance name, which breaks
    /// signal probing and ERC attribution.
    DuplicateName {
        /// The duplicated instance name.
        name: String,
    },
    /// The ERC pre-flight ran in deny mode and found error-severity
    /// diagnostics.
    ErcRejected {
        /// Number of error-severity diagnostics.
        errors: usize,
        /// Rendering of the first error diagnostic.
        first: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::SingularMatrix { index } => {
                write!(f, "singular matrix: zero pivot at index {index}")
            }
            Error::NonConvergence {
                analysis,
                time,
                iterations,
                forensics,
            } => {
                write!(
                    f,
                    "{analysis} analysis failed to converge at t = {time:.3e} s after {iterations} iterations"
                )?;
                if let Some(fo) = forensics {
                    write!(
                        f,
                        " (worst residual {:.3e} at node {:?}, device {:?}, |dx| = {:.3e})",
                        fo.f_norm, fo.node, fo.device, fo.dx_norm
                    )?;
                }
                Ok(())
            }
            Error::UnknownNode { index } => write!(f, "unknown node index {index}"),
            Error::InvalidParameter { what, value } => {
                write!(f, "invalid parameter {what} = {value:.3e}")
            }
            Error::TimeStepTooSmall { time, dt } => write!(
                f,
                "transient time step {dt:.3e} s collapsed below minimum at t = {time:.3e} s"
            ),
            Error::UnknownSignal { name } => write!(f, "unknown signal {name:?}"),
            Error::EmptyCircuit => write!(f, "circuit has no unknowns to solve for"),
            Error::DuplicateName { name } => {
                write!(f, "duplicate instance name {name:?}")
            }
            Error::ErcRejected { errors, first } => {
                write!(f, "erc rejected circuit: {errors} error(s); first: {first}")
            }
        }
    }
}

impl StdError for Error {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            Error::SingularMatrix { index: 3 },
            Error::NonConvergence {
                analysis: "dc",
                time: 0.0,
                iterations: 100,
                forensics: Some(Box::new(ConvergenceForensics {
                    node: "ml".into(),
                    device: "XF1".into(),
                    f_norm: 3.2e-3,
                    dx_norm: 0.7,
                })),
            },
            Error::UnknownNode { index: 9 },
            Error::InvalidParameter {
                what: "capacitance".into(),
                value: -1.0,
            },
            Error::TimeStepTooSmall {
                time: 1e-9,
                dt: 1e-21,
            },
            Error::UnknownSignal { name: "ml".into() },
            Error::EmptyCircuit,
            Error::DuplicateName { name: "R1".into() },
            Error::ErcRejected {
                errors: 2,
                first: "error[floating-node]: island".into(),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
