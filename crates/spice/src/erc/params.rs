//! Parameter-domain pass: non-finite values, non-positive geometry,
//! and source amplitudes beyond the device write-voltage presets.

use super::{ErcDiagnostic, ErcParam, ParamKind, Rule};
use crate::netlist::{Circuit, Element};
use crate::waveform::Waveform;

/// Headroom allowed above the largest device write voltage before a
/// source amplitude is flagged (covers boosted write pulses and HV
/// driver overdrive in the ±2 V / ±4 V presets).
const WRITE_MARGIN: f64 = 1.15;

fn wave_finite(w: &Waveform) -> bool {
    w.amplitude().is_finite() && w.value(0.0).is_finite()
}

fn flag_value(diags: &mut Vec<ErcDiagnostic>, owner: &str, what: &str, value: f64) {
    diags.push(
        ErcDiagnostic::new(
            Rule::NonFiniteParameter,
            format!("{owner}: {what} = {value:e} is outside its domain"),
        )
        .with_devices(vec![owner.to_string()]),
    );
}

pub(super) fn run(ckt: &Circuit, diags: &mut Vec<ErcDiagnostic>) {
    for e in ckt.elements() {
        match e {
            Element::Resistor { name, ohms, .. } => {
                if !(ohms.is_finite() && *ohms > 0.0) {
                    flag_value(diags, name, "resistance", *ohms);
                }
            }
            Element::Capacitor { name, farads, .. } => {
                if !(farads.is_finite() && *farads >= 0.0) {
                    flag_value(diags, name, "capacitance", *farads);
                }
            }
            Element::VSource { name, wave, .. } | Element::ISource { name, wave, .. } => {
                if !wave_finite(wave) {
                    flag_value(diags, name, "source waveform", wave.value(0.0));
                }
            }
            Element::Vcvs { name, gain, .. } => {
                if !gain.is_finite() {
                    flag_value(diags, name, "gain", *gain);
                }
            }
            Element::Vccs { name, gm, .. } => {
                if !gm.is_finite() {
                    flag_value(diags, name, "transconductance", *gm);
                }
            }
        }
    }

    // Device model parameters, as declared through `erc_params`.
    let mut max_write: f64 = 0.0;
    for d in ckt.devices() {
        for ErcParam { name, value, kind } in d.erc_params() {
            match kind {
                ParamKind::Geometry => {
                    if !value.is_finite() {
                        flag_value(diags, d.name(), name, value);
                    } else if value <= 0.0 {
                        diags.push(
                            ErcDiagnostic::new(
                                Rule::NonPositiveGeometry,
                                format!(
                                    "{}: geometry {name} = {value:e} must be positive",
                                    d.name()
                                ),
                            )
                            .with_devices(vec![d.name().to_string()]),
                        );
                    }
                }
                ParamKind::Value => {
                    if !value.is_finite() {
                        flag_value(diags, d.name(), name, value);
                    }
                }
                ParamKind::WriteVoltage => {
                    if !(value.is_finite() && value > 0.0) {
                        flag_value(diags, d.name(), name, value);
                    } else {
                        max_write = max_write.max(value);
                    }
                }
            }
        }
    }

    // Drive-range check: only meaningful when some device declared its
    // programming preset (CMOS-only netlists have no write ceiling).
    if max_write > 0.0 {
        let limit = WRITE_MARGIN * max_write;
        for e in ckt.elements() {
            if let Element::VSource { name, wave, .. } = e {
                let amp = wave.amplitude();
                if amp.is_finite() && amp > limit {
                    diags.push(
                        ErcDiagnostic::new(
                            Rule::WriteVoltageRange,
                            format!(
                                "{name} drives {amp:.3} V but the largest device \
                                 write preset is {max_write:.3} V (limit {limit:.3} V)"
                            ),
                        )
                        .with_devices(vec![name.to_string()]),
                    );
                }
            }
        }
    }
}
