//! Structural-singularity prediction: maximum bipartite matching on the
//! gmin-free DC MNA pattern.
//!
//! A square sparse matrix can only be nonsingular if there is a perfect
//! matching between rows and columns over its nonzero pattern (the
//! coarse Dulmage–Mendelsohn criterion — a zero-free transversal). The
//! engine always adds a gmin shunt on node diagonals, which hides the
//! deficiency numerically: Newton then "converges" to gmin-scaled
//! garbage, or the pivot threshold trips mid-factorisation. Predicting
//! the deficiency on the raw pattern names the offending unknowns
//! instead.
//!
//! The pattern is assembled *conservatively*: capacitors are open (DC),
//! devices contribute all terminal-pair entries (a superset of any real
//! linearisation, so a deficiency found here is real while extra
//! entries can only hide one — no false positives).

use super::{ErcDiagnostic, Rule};
use crate::netlist::{Circuit, Element, NodeId};

pub(super) fn run(ckt: &Circuit, diags: &mut Vec<ErcDiagnostic>) {
    let nnodes = ckt.num_nodes() - 1;
    let nvars = nnodes + ckt.num_branches();
    let mut rows: Vec<Vec<usize>> = vec![Vec::new(); nvars];

    let var = |nd: NodeId| -> Option<usize> {
        let i = nd.index();
        (i != 0).then(|| i - 1)
    };

    for e in ckt.elements() {
        match e {
            Element::Resistor { p, n, .. } => {
                let (a, b) = (var(*p), var(*n));
                if let Some(a) = a {
                    rows[a].push(a);
                }
                if let Some(b) = b {
                    rows[b].push(b);
                }
                if let (Some(a), Some(b)) = (a, b) {
                    rows[a].push(b);
                    rows[b].push(a);
                }
            }
            Element::Capacitor { .. } | Element::ISource { .. } => {}
            Element::VSource { p, n, branch, .. } => {
                let bv = nnodes + branch;
                for (t, _sign) in [(p, 1.0), (n, -1.0)] {
                    if let Some(v) = var(*t) {
                        rows[v].push(bv);
                        rows[bv].push(v);
                    }
                }
                if var(*p).is_none() && var(*n).is_none() {
                    rows[bv].push(bv);
                }
            }
            Element::Vcvs {
                p,
                n,
                cp,
                cn,
                branch,
                ..
            } => {
                let bv = nnodes + branch;
                for t in [p, n] {
                    if let Some(v) = var(*t) {
                        rows[v].push(bv);
                        rows[bv].push(v);
                    }
                }
                for c in [cp, cn] {
                    if let Some(v) = var(*c) {
                        rows[bv].push(v);
                    }
                }
                if var(*p).is_none() && var(*n).is_none() {
                    rows[bv].push(bv);
                }
            }
            Element::Vccs { p, n, cp, cn, .. } => {
                for out in [p, n] {
                    let Some(r) = var(*out) else { continue };
                    for ctrl in [cp, cn] {
                        if let Some(c) = var(*ctrl) {
                            rows[r].push(c);
                        }
                    }
                }
            }
        }
    }

    for d in ckt.devices() {
        let terms = d.terminals();
        for ta in terms {
            let Some(r) = var(*ta) else { continue };
            for tb in terms {
                if let Some(c) = var(*tb) {
                    rows[r].push(c);
                }
            }
        }
    }

    for row in &mut rows {
        row.sort_unstable();
        row.dedup();
    }

    // Kuhn's augmenting-path maximum matching, rows -> columns.
    let mut col_match: Vec<Option<usize>> = vec![None; nvars];
    let mut unmatched_rows = Vec::new();
    let mut visited = vec![usize::MAX; nvars];
    for r in 0..nvars {
        if !augment(r, r, &rows, &mut col_match, &mut visited) {
            unmatched_rows.push(r);
        }
    }

    if unmatched_rows.is_empty() {
        return;
    }

    let mut nodes = Vec::new();
    let mut devices = Vec::new();
    for &r in &unmatched_rows {
        if r < nnodes {
            nodes.push(ckt.node_name(NodeId((r + 1) as u32)).to_string());
        } else {
            let b = r - nnodes;
            let name = ckt
                .elements()
                .iter()
                .find_map(|e| match e {
                    Element::VSource { name, branch, .. } | Element::Vcvs { name, branch, .. }
                        if *branch == b =>
                    {
                        Some(name.clone())
                    }
                    _ => None,
                })
                .unwrap_or_else(|| format!("branch#{b}"));
            devices.push(name);
        }
    }
    diags.push(
        ErcDiagnostic::new(
            Rule::StructurallySingular,
            format!(
                "MNA matrix is structurally singular without gmin: \
                 {} of {} unknowns have no pivot assignment",
                unmatched_rows.len(),
                nvars
            ),
        )
        .with_nodes(nodes)
        .with_devices(devices),
    );
}

/// Try to match row `r` (depth-first over alternating paths). `stamp`
/// marks columns visited during this row's search.
fn augment(
    r: usize,
    stamp: usize,
    rows: &[Vec<usize>],
    col_match: &mut [Option<usize>],
    visited: &mut [usize],
) -> bool {
    for &c in &rows[r] {
        if visited[c] == stamp {
            continue;
        }
        visited[c] = stamp;
        let free = match col_match[c] {
            None => true,
            Some(prev) => augment(prev, stamp, rows, col_match, visited),
        };
        if free {
            col_match[c] = Some(r);
            return true;
        }
    }
    false
}
