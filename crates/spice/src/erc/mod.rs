//! Electrical rule checking (ERC): a static analyzer over [`Circuit`]
//! netlists that runs *before* simulation.
//!
//! A malformed netlist — floating gate, voltage-source loop, no DC path
//! to ground — otherwise only surfaces as a Newton non-convergence or a
//! singular pivot deep inside the sparse solver, with no indication of
//! which circuit construct is at fault. The ERC passes diagnose these
//! structurally:
//!
//! * **connectivity** (`graph`): nodes unreachable from ground,
//!   dangling terminals, capacitor-only islands with no DC path to
//!   ground, current sources driving into DC-isolated islands;
//! * **KVL/KCL structure** (`graph`, `matching`): loops of
//!   zero-impedance branches (voltage sources, VCVS outputs),
//!   driver conflicts (parallel low-impedance drivers with differing
//!   waveforms on one node), and structurally-singular MNA prediction
//!   via maximum matching on the gmin-free DC pattern
//!   (Dulmage–Mendelsohn coarse test);
//! * **parameter domain** (`params`): NaN/non-finite element and
//!   device parameters, non-positive geometry (W, L, film area), and
//!   source amplitudes beyond the FeFET write-voltage presets.
//!
//! Every engine entry point (`dc`, `transient`, `sweep`, `ac`) runs a
//! [`preflight`] whose behaviour is selected by [`ErcMode`]: warn
//! (default — diagnostics to stderr, once per distinct report), deny
//! (error-severity diagnostics abort with [`Error::ErcRejected`]) or
//! off. The `FERROTCAM_ERC` environment variable (`off`/`warn`/`deny`)
//! sets the default; options structs can override it per run.
//!
//! Degenerate netlists (no unknowns, out-of-range node ids, duplicate
//! instance names) are rejected with typed errors by [`validate`]
//! regardless of mode — these would previously panic inside the solver.

mod graph;
mod matching;
mod params;

use crate::error::{Error, Result};
use crate::netlist::{Circuit, Element};
use std::collections::HashSet;
use std::fmt;
use std::sync::Mutex;

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but simulable; never blocks a run.
    Warning,
    /// The circuit is structurally or numerically defective; blocks the
    /// run under [`ErcMode::Deny`].
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The rule catalogue. Each rule has a stable kebab-case id used in
/// JSON output and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Rule {
    /// A node (island) with no connection of any kind to ground.
    FloatingNode,
    /// A node touched by exactly one element terminal.
    DanglingTerminal,
    /// A node island connected only through capacitors (or device
    /// gates): no DC conduction path to ground.
    NoDcPath,
    /// Zero-impedance branches (V sources, VCVS outputs) form a loop.
    VoltageSourceLoop,
    /// A current source drives into an island with no DC path out.
    CurrentSourceCutset,
    /// Maximum matching on the gmin-free DC pattern is deficient: the
    /// MNA matrix is structurally singular.
    StructurallySingular,
    /// A parameter is NaN or infinite.
    NonFiniteParameter,
    /// A geometric parameter (W, L, film area) is zero or negative.
    NonPositiveGeometry,
    /// A source amplitude exceeds the device write-voltage presets.
    WriteVoltageRange,
    /// Two low-impedance drivers with differing waveforms share a node.
    DriverConflict,
}

impl Rule {
    /// Stable kebab-case identifier.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::FloatingNode => "floating-node",
            Rule::DanglingTerminal => "dangling-terminal",
            Rule::NoDcPath => "no-dc-path",
            Rule::VoltageSourceLoop => "voltage-source-loop",
            Rule::CurrentSourceCutset => "current-source-cutset",
            Rule::StructurallySingular => "structurally-singular",
            Rule::NonFiniteParameter => "non-finite-parameter",
            Rule::NonPositiveGeometry => "non-positive-geometry",
            Rule::WriteVoltageRange => "write-voltage-range",
            Rule::DriverConflict => "driver-conflict",
        }
    }

    /// Severity class of the rule.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            Rule::DanglingTerminal => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding: the violated rule plus the circuit objects involved.
#[derive(Debug, Clone, PartialEq)]
pub struct ErcDiagnostic {
    /// Violated rule.
    pub rule: Rule,
    /// Severity (derived from the rule).
    pub severity: Severity,
    /// Names of the nodes involved.
    pub nodes: Vec<String>,
    /// Names of the elements/devices involved.
    pub devices: Vec<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl ErcDiagnostic {
    pub(crate) fn new(rule: Rule, message: impl Into<String>) -> Self {
        Self {
            rule,
            severity: rule.severity(),
            nodes: Vec::new(),
            devices: Vec::new(),
            message: message.into(),
        }
    }

    pub(crate) fn with_nodes(mut self, nodes: Vec<String>) -> Self {
        self.nodes = nodes;
        self
    }

    pub(crate) fn with_devices(mut self, devices: Vec<String>) -> Self {
        self.devices = devices;
        self
    }
}

impl fmt::Display for ErcDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.rule, self.message)?;
        if !self.nodes.is_empty() {
            write!(f, " | nodes: {}", self.nodes.join(", "))?;
        }
        if !self.devices.is_empty() {
            write!(f, " | devices: {}", self.devices.join(", "))?;
        }
        Ok(())
    }
}

/// Result of running every ERC pass on a circuit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ErcReport {
    diagnostics: Vec<ErcDiagnostic>,
}

impl ErcReport {
    /// All diagnostics, errors first.
    #[must_use]
    pub fn diagnostics(&self) -> &[ErcDiagnostic] {
        &self.diagnostics
    }

    /// Number of error-severity diagnostics.
    #[must_use]
    pub fn num_errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    #[must_use]
    pub fn num_warnings(&self) -> usize {
        self.diagnostics.len() - self.num_errors()
    }

    /// Whether any error-severity diagnostic is present.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.num_errors() > 0
    }

    /// Whether the report is entirely empty (no errors, no warnings).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any diagnostic matches `rule`.
    #[must_use]
    pub fn has_rule(&self, rule: Rule) -> bool {
        self.diagnostics.iter().any(|d| d.rule == rule)
    }

    /// Multi-line human-readable rendering with a summary line.
    #[must_use]
    pub fn render_human(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(s, "{d}");
        }
        let _ = writeln!(
            s,
            "erc: {} error(s), {} warning(s)",
            self.num_errors(),
            self.num_warnings()
        );
        s
    }

    /// JSON rendering (object with `diagnostics`, `errors`, `warnings`).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"rule\":{},\"severity\":{},\"nodes\":[{}],\"devices\":[{}],\"message\":{}}}",
                json_str(d.rule.id()),
                json_str(&d.severity.to_string()),
                d.nodes
                    .iter()
                    .map(|n| json_str(n))
                    .collect::<Vec<_>>()
                    .join(","),
                d.devices
                    .iter()
                    .map(|n| json_str(n))
                    .collect::<Vec<_>>()
                    .join(","),
                json_str(&d.message),
            );
        }
        let _ = write!(
            s,
            "],\"errors\":{},\"warnings\":{}}}",
            self.num_errors(),
            self.num_warnings()
        );
        s
    }

    fn sort(&mut self) {
        // Errors first, then by rule id, then by first node, keeping
        // output deterministic for tests and diffing.
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.rule.id().cmp(b.rule.id()))
                .then_with(|| a.nodes.cmp(&b.nodes))
        });
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// What the engine pre-flight does with ERC findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErcMode {
    /// Skip the rule passes (degenerate-netlist validation still runs).
    Off,
    /// Print diagnostics to stderr (once per distinct report), then run.
    #[default]
    Warn,
    /// Abort with [`Error::ErcRejected`] on any error-severity finding.
    Deny,
}

impl ErcMode {
    /// Resolve the mode from the `FERROTCAM_ERC` environment variable
    /// (`off` / `warn` / `deny`, default warn).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("FERROTCAM_ERC").as_deref() {
            Ok("off") | Ok("0") => ErcMode::Off,
            Ok("deny") => ErcMode::Deny,
            _ => ErcMode::Warn,
        }
    }
}

/// Kind of a device parameter reported through
/// [`crate::nonlinear::NonlinearDevice::erc_params`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// Physical geometry: must be finite and strictly positive.
    Geometry,
    /// Any model value: must be finite.
    Value,
    /// Programming voltage preset: finite and positive; also bounds the
    /// allowed source amplitudes ([`Rule::WriteVoltageRange`]).
    WriteVoltage,
}

/// A named device parameter exposed for ERC domain checking.
#[derive(Debug, Clone, PartialEq)]
pub struct ErcParam {
    /// Parameter name (e.g. `"w"`, `"v_write"`).
    pub name: &'static str,
    /// Current value.
    pub value: f64,
    /// Domain class.
    pub kind: ParamKind,
}

impl ErcParam {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: &'static str, value: f64, kind: ParamKind) -> Self {
        Self { name, value, kind }
    }
}

/// Reject netlists the solver cannot even index: no unknowns, node ids
/// out of range (e.g. imported from another circuit), duplicate
/// instance names. These used to panic inside assembly/probing.
///
/// # Errors
/// [`Error::EmptyCircuit`], [`Error::UnknownNode`] or
/// [`Error::DuplicateName`].
pub fn validate(ckt: &Circuit) -> Result<()> {
    let nvars = (ckt.num_nodes() - 1) + ckt.num_branches();
    if nvars == 0 {
        return Err(Error::EmptyCircuit);
    }
    let n = ckt.num_nodes();
    let check = |idx: usize| -> Result<()> {
        if idx >= n {
            return Err(Error::UnknownNode { index: idx });
        }
        Ok(())
    };
    for e in ckt.elements() {
        match e {
            Element::Resistor { p, n, .. }
            | Element::Capacitor { p, n, .. }
            | Element::VSource { p, n, .. }
            | Element::ISource { p, n, .. } => {
                check(p.index())?;
                check(n.index())?;
            }
            Element::Vcvs { p, n, cp, cn, .. } | Element::Vccs { p, n, cp, cn, .. } => {
                check(p.index())?;
                check(n.index())?;
                check(cp.index())?;
                check(cn.index())?;
            }
        }
    }
    for d in ckt.devices() {
        for t in d.terminals() {
            check(t.index())?;
        }
    }
    for &(node, _) in ckt.initial_conditions() {
        check(node.index())?;
    }
    // Duplicate names break signal probing (`i(name)`, `<dev>.<state>`).
    let mut seen = HashSet::new();
    for name in ckt
        .elements()
        .iter()
        .map(Element::name)
        .chain(ckt.devices().iter().map(|d| d.name()))
    {
        if !seen.insert(name) {
            return Err(Error::DuplicateName {
                name: name.to_string(),
            });
        }
    }
    Ok(())
}

/// Run every ERC pass on `ckt` and return the full report.
///
/// # Errors
/// Degenerate netlists are rejected with the typed errors of
/// [`validate`] before any rule pass runs.
pub fn check(ckt: &Circuit) -> Result<ErcReport> {
    validate(ckt)?;
    let mut report = ErcReport::default();
    graph::run(ckt, &mut report.diagnostics);
    params::run(ckt, &mut report.diagnostics);
    // The matching pass predicts structural singularity; connectivity /
    // loop errors already imply it, so only run it on otherwise-sound
    // structure (keeps one seeded fault mapping to one rule id).
    if !report.has_errors() {
        matching::run(ckt, &mut report.diagnostics);
    }
    report.sort();
    Ok(report)
}

/// Engine pre-flight: validate, then apply `mode` (falling back to the
/// `FERROTCAM_ERC` environment default when `None`).
///
/// # Errors
/// Typed validation errors always; [`Error::ErcRejected`] when `mode`
/// resolves to [`ErcMode::Deny`] and error-severity diagnostics exist.
pub fn preflight(ckt: &Circuit, mode: Option<ErcMode>) -> Result<()> {
    let mode = mode.unwrap_or_else(ErcMode::from_env);
    if mode == ErcMode::Off {
        return validate(ckt);
    }
    let report = check(ckt)?;
    match mode {
        ErcMode::Off => unreachable!("handled above"),
        ErcMode::Warn => {
            if !report.is_clean() {
                warn_once(&report);
            }
            Ok(())
        }
        ErcMode::Deny => {
            if report.has_errors() {
                let first = report
                    .diagnostics
                    .iter()
                    .find(|d| d.severity == Severity::Error)
                    .map(ToString::to_string)
                    .unwrap_or_default();
                return Err(Error::ErcRejected {
                    errors: report.num_errors(),
                    first,
                });
            }
            Ok(())
        }
    }
}

/// Print a report to stderr at most once per distinct rendering, so
/// sweeps and Monte-Carlo loops don't repeat the same warning thousands
/// of times.
fn warn_once(report: &ErcReport) {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    static SEEN: Mutex<Option<HashSet<u64>>> = Mutex::new(None);
    let rendered = report.render_human();
    let mut h = DefaultHasher::new();
    rendered.hash(&mut h);
    let key = h.finish();
    let mut guard = SEEN
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let seen = guard.get_or_insert_with(HashSet::new);
    if seen.insert(key) {
        eprint!("{rendered}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NodeId;
    use crate::waveform::Waveform;

    fn divider() -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::gnd(), Waveform::dc(1.0));
        ckt.resistor("R1", a, b, 1e3).unwrap();
        ckt.resistor("R2", b, Circuit::gnd(), 1e3).unwrap();
        ckt
    }

    #[test]
    fn clean_divider_has_no_diagnostics() {
        let report = check(&divider()).unwrap();
        assert!(report.is_clean(), "{}", report.render_human());
    }

    #[test]
    fn empty_circuit_is_a_typed_error() {
        let ckt = Circuit::new();
        assert_eq!(check(&ckt).unwrap_err(), Error::EmptyCircuit);
    }

    #[test]
    fn foreign_node_id_is_a_typed_error() {
        let mut big = Circuit::new();
        for i in 0..10 {
            big.node(&format!("n{i}"));
        }
        let foreign = big.node("n9");
        let mut small = Circuit::new();
        let a = small.node("a");
        small.vsource("V1", a, Circuit::gnd(), Waveform::dc(1.0));
        small.isource("I1", foreign, Circuit::gnd(), Waveform::dc(1e-6));
        assert!(matches!(
            check(&small),
            Err(Error::UnknownNode { index: 10 })
        ));
    }

    #[test]
    fn duplicate_names_are_a_typed_error() {
        let mut ckt = divider();
        let b = ckt.find_node("b").unwrap();
        ckt.resistor("R1", b, Circuit::gnd(), 2e3).unwrap();
        assert_eq!(
            check(&ckt).unwrap_err(),
            Error::DuplicateName { name: "R1".into() }
        );
    }

    #[test]
    fn floating_island_is_flagged() {
        let mut ckt = divider();
        let x = ckt.node("x");
        let y = ckt.node("y");
        ckt.resistor("RX", x, y, 1e3).unwrap();
        let report = check(&ckt).unwrap();
        assert!(
            report.has_rule(Rule::FloatingNode),
            "{}",
            report.render_human()
        );
        assert!(report.has_errors());
    }

    #[test]
    fn cap_only_island_has_no_dc_path() {
        let mut ckt = divider();
        let b = ckt.find_node("b").unwrap();
        let x = ckt.node("x");
        ckt.capacitor("CX", x, b, 1e-15).unwrap();
        let report = check(&ckt).unwrap();
        assert!(report.has_rule(Rule::NoDcPath), "{}", report.render_human());
    }

    #[test]
    fn parallel_identical_sources_form_a_loop() {
        let mut ckt = divider();
        let a = ckt.find_node("a").unwrap();
        ckt.vsource("V2", a, Circuit::gnd(), Waveform::dc(1.0));
        let report = check(&ckt).unwrap();
        assert!(
            report.has_rule(Rule::VoltageSourceLoop),
            "{}",
            report.render_human()
        );
        assert!(!report.has_rule(Rule::DriverConflict));
    }

    #[test]
    fn parallel_conflicting_sources_are_a_driver_conflict() {
        let mut ckt = divider();
        let a = ckt.find_node("a").unwrap();
        ckt.vsource("V2", a, Circuit::gnd(), Waveform::dc(0.5));
        let report = check(&ckt).unwrap();
        assert!(
            report.has_rule(Rule::DriverConflict),
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn isolated_current_source_is_a_cutset() {
        let mut ckt = divider();
        let x = ckt.node("x");
        ckt.isource("IX", Circuit::gnd(), x, Waveform::dc(1e-6));
        let report = check(&ckt).unwrap();
        assert!(
            report.has_rule(Rule::CurrentSourceCutset),
            "{}",
            report.render_human()
        );
        assert!(!report.has_rule(Rule::NoDcPath));
    }

    #[test]
    fn nan_parameter_is_flagged() {
        let mut ckt = divider();
        for e in ckt.elements_mut() {
            if let Element::Resistor { name, ohms, .. } = e {
                if name == "R2" {
                    *ohms = f64::NAN;
                }
            }
        }
        let report = check(&ckt).unwrap();
        assert!(
            report.has_rule(Rule::NonFiniteParameter),
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn dangling_terminal_is_a_warning_only() {
        let mut ckt = divider();
        let b = ckt.find_node("b").unwrap();
        let x = ckt.node("x");
        ckt.resistor("RX", b, x, 1e3).unwrap();
        let report = check(&ckt).unwrap();
        assert!(report.has_rule(Rule::DanglingTerminal));
        assert!(!report.has_errors(), "{}", report.render_human());
    }

    #[test]
    fn removed_source_leaves_structurally_singular_branch() {
        let mut ckt = divider();
        // Keep every node grounded through resistors, then remove the
        // source: its branch row/column is empty -> deficient matching.
        let a = ckt.find_node("a").unwrap();
        ckt.resistor("RG", a, Circuit::gnd(), 1e4).unwrap();
        ckt.remove_element("V1").unwrap();
        let report = check(&ckt).unwrap();
        assert!(
            report.has_rule(Rule::StructurallySingular),
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn json_rendering_is_wellformed_enough() {
        let mut ckt = divider();
        let x = ckt.node("x\"esc");
        let y = ckt.node("y");
        ckt.resistor("RX", x, y, 1e3).unwrap();
        let report = check(&ckt).unwrap();
        let js = report.to_json();
        assert!(js.starts_with('{') && js.ends_with('}'));
        assert!(js.contains("\"rule\":\"floating-node\""));
        assert!(js.contains("x\\\"esc"));
        assert_eq!(js.matches('{').count(), js.matches('}').count());
    }

    #[test]
    fn deny_mode_rejects_warn_mode_passes() {
        let mut ckt = divider();
        let x = ckt.node("x");
        let y = ckt.node("y");
        ckt.resistor("RX", x, y, 1e3).unwrap();
        assert!(preflight(&ckt, Some(ErcMode::Warn)).is_ok());
        assert!(preflight(&ckt, Some(ErcMode::Off)).is_ok());
        let err = preflight(&ckt, Some(ErcMode::Deny)).unwrap_err();
        assert!(matches!(err, Error::ErcRejected { errors, .. } if errors >= 1));
    }

    #[test]
    fn ground_vsource_degenerate_but_legal() {
        // Both terminals grounded: assemble keeps the branch row scaled;
        // ERC must not flag a loop (the edge is gnd-gnd, a self-loop on
        // the reference node is tolerated by the engine).
        let mut ckt = divider();
        ckt.vsource("VZ", Circuit::gnd(), Circuit::gnd(), Waveform::dc(0.0));
        let report = check(&ckt).unwrap();
        // Self-loop on ground is still a loop of zero-impedance branches.
        assert!(report.has_rule(Rule::VoltageSourceLoop));
    }

    #[test]
    fn vccs_output_island_flagged_as_cutset() {
        let mut ckt = divider();
        let a = ckt.find_node("a").unwrap();
        let x = ckt.node("x");
        ckt.vccs("GX", x, Circuit::gnd(), a, Circuit::gnd(), 1e-3);
        ckt.capacitor("CX", x, Circuit::gnd(), 1e-15).unwrap();
        let report = check(&ckt).unwrap();
        assert!(
            report.has_rule(Rule::CurrentSourceCutset),
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn write_voltage_range_uses_device_presets() {
        use crate::nonlinear::{DeviceStamps, EvalCtx, NonlinearDevice};

        #[derive(Debug)]
        struct FakeFe {
            nodes: [NodeId; 2],
        }
        impl NonlinearDevice for FakeFe {
            fn name(&self) -> &str {
                "FE1"
            }
            fn terminals(&self) -> &[NodeId] {
                &self.nodes
            }
            fn eval(&self, _v: &[f64], _out: &mut DeviceStamps, _ctx: &EvalCtx) {}
            fn erc_params(&self) -> Vec<ErcParam> {
                vec![ErcParam::new("v_write", 3.0, ParamKind::WriteVoltage)]
            }
        }

        let mut ckt = divider();
        let a = ckt.find_node("a").unwrap();
        let b = ckt.find_node("b").unwrap();
        ckt.device(Box::new(FakeFe { nodes: [a, b] }));
        assert!(check(&ckt).unwrap().is_clean());

        let hv = ckt.node("hv");
        ckt.vsource("VHV", hv, Circuit::gnd(), Waveform::dc(10.0));
        ckt.resistor("RHV", hv, Circuit::gnd(), 1e3).unwrap();
        let report = check(&ckt).unwrap();
        assert!(
            report.has_rule(Rule::WriteVoltageRange),
            "{}",
            report.render_human()
        );
    }
}
