//! Connectivity and KVL-structure passes: floating islands, dangling
//! terminals, DC-path analysis, zero-impedance loops, driver conflicts.

use super::{ErcDiagnostic, Rule};
use crate::netlist::{Circuit, Element, NodeId};
use crate::waveform::Waveform;
use std::collections::BTreeMap;

/// Union-find with path halving (no ranks: circuits are small and the
/// sequential unions keep trees shallow in practice).
pub(super) struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    pub(super) fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    pub(super) fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Join the sets of `a` and `b`; returns `false` when they were
    /// already in the same set (the new edge closes a cycle).
    pub(super) fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }

    pub(super) fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

fn node_name(ckt: &Circuit, idx: usize) -> String {
    ckt.node_name(NodeId(idx as u32)).to_string()
}

/// Register a zero-impedance edge (voltage source or VCVS output) and
/// diagnose the cycle it may close: a direct parallel partner with a
/// different waveform is a driver conflict, anything else a loop.
#[allow(clippy::too_many_arguments)]
fn zero_edge<'c>(
    ckt: &Circuit,
    p: usize,
    q: usize,
    name: &'c str,
    wave: Option<&'c Waveform>,
    zero: &mut UnionFind,
    zero_edges: &mut Vec<(usize, usize, &'c str, Option<&'c Waveform>)>,
    diags: &mut Vec<ErcDiagnostic>,
) {
    let closes_cycle = p == q || !zero.union(p, q);
    if closes_cycle {
        let key = (p.min(q), p.max(q));
        let parallel = zero_edges.iter().find(|&&(lo, hi, _, _)| (lo, hi) == key);
        let diag = match parallel {
            Some(&(_, _, other, other_wave))
                if wave.is_some() && other_wave.is_some() && wave != other_wave =>
            {
                ErcDiagnostic::new(
                    Rule::DriverConflict,
                    format!(
                        "low-impedance drivers {other} and {name} share a node \
                         with different waveforms"
                    ),
                )
                .with_devices(vec![other.to_string(), name.to_string()])
            }
            Some(&(_, _, other, _)) => ErcDiagnostic::new(
                Rule::VoltageSourceLoop,
                format!("{name} is connected in parallel with {other}"),
            )
            .with_devices(vec![other.to_string(), name.to_string()]),
            None => ErcDiagnostic::new(
                Rule::VoltageSourceLoop,
                format!("{name} closes a loop of zero-impedance branches"),
            )
            .with_devices(vec![name.to_string()]),
        };
        diags.push(diag.with_nodes(vec![node_name(ckt, p), node_name(ckt, q)]));
    }
    zero_edges.push((p.min(q), p.max(q), name, wave));
}

pub(super) fn run(ckt: &Circuit, diags: &mut Vec<ErcDiagnostic>) {
    let n = ckt.num_nodes();

    // Incidence degree per node (every element terminal, including the
    // high-impedance control terminals of controlled sources).
    let mut degree = vec![0usize; n];
    // Any-coupling connectivity: does a node connect to ground at all?
    let mut full = UnionFind::new(n);
    // DC conduction only: resistors, voltage-source branches, VCVS
    // outputs, and the channel paths devices declare via `dc_paths`.
    let mut dc = UnionFind::new(n);
    // Zero-impedance subgraph for voltage-source loop detection.
    let mut zero = UnionFind::new(n);
    // Zero-impedance edges seen so far: (lo, hi, name, waveform).
    let mut zero_edges: Vec<(usize, usize, &str, Option<&Waveform>)> = Vec::new();
    // Current-source attachments (independent sources + VCCS outputs).
    let mut isrc_nodes: Vec<(usize, &str)> = Vec::new();

    for e in ckt.elements() {
        match e {
            Element::Resistor { p, n, .. } => {
                degree[p.index()] += 1;
                degree[n.index()] += 1;
                full.union(p.index(), n.index());
                dc.union(p.index(), n.index());
            }
            Element::Capacitor { p, n, .. } => {
                degree[p.index()] += 1;
                degree[n.index()] += 1;
                full.union(p.index(), n.index());
            }
            Element::VSource {
                name, p, n, wave, ..
            } => {
                degree[p.index()] += 1;
                degree[n.index()] += 1;
                full.union(p.index(), n.index());
                dc.union(p.index(), n.index());
                zero_edge(
                    ckt,
                    p.index(),
                    n.index(),
                    name,
                    Some(wave),
                    &mut zero,
                    &mut zero_edges,
                    diags,
                );
            }
            Element::ISource { name, p, n, .. } => {
                degree[p.index()] += 1;
                degree[n.index()] += 1;
                full.union(p.index(), n.index());
                isrc_nodes.push((p.index(), name));
                isrc_nodes.push((n.index(), name));
            }
            Element::Vcvs {
                name, p, n, cp, cn, ..
            } => {
                for t in [p, n, cp, cn] {
                    degree[t.index()] += 1;
                }
                full.union(p.index(), n.index());
                dc.union(p.index(), n.index());
                zero_edge(
                    ckt,
                    p.index(),
                    n.index(),
                    name,
                    None,
                    &mut zero,
                    &mut zero_edges,
                    diags,
                );
            }
            Element::Vccs {
                name, p, n, cp, cn, ..
            } => {
                for t in [p, n, cp, cn] {
                    degree[t.index()] += 1;
                }
                full.union(p.index(), n.index());
                isrc_nodes.push((p.index(), name));
                isrc_nodes.push((n.index(), name));
            }
        }
    }

    for d in ckt.devices() {
        let terms = d.terminals();
        for t in terms {
            degree[t.index()] += 1;
        }
        // Any two terminals of one device are coupled (at least
        // capacitively) for reachability purposes.
        for w in terms.windows(2) {
            full.union(w[0].index(), w[1].index());
        }
        for (a, b) in d.dc_paths() {
            if a < terms.len() && b < terms.len() {
                dc.union(terms[a].index(), terms[b].index());
            }
        }
    }

    // --- Floating islands: unreachable from ground by any coupling. ---
    let mut floating: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for v in 1..n {
        if !full.connected(v, 0) {
            floating.entry(full.find(v)).or_default().push(v);
        }
    }
    let mut floating_nodes = vec![false; n];
    for members in floating.values() {
        for &v in members {
            floating_nodes[v] = true;
        }
        diags.push(
            ErcDiagnostic::new(
                Rule::FloatingNode,
                format!(
                    "island of {} node(s) has no connection to ground",
                    members.len()
                ),
            )
            .with_nodes(members.iter().map(|&v| node_name(ckt, v)).collect()),
        );
    }

    // --- DC islands: reachable, but only through caps/gates. ----------
    let mut dc_islands: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for v in 1..n {
        if full.connected(v, 0) && !dc.connected(v, 0) {
            dc_islands.entry(dc.find(v)).or_default().push(v);
        }
    }
    for members in dc_islands.values() {
        let mut feeders: Vec<String> = isrc_nodes
            .iter()
            .filter(|&&(v, _)| members.contains(&v))
            .map(|&(_, name)| name.to_string())
            .collect();
        feeders.dedup();
        let nodes: Vec<String> = members.iter().map(|&v| node_name(ckt, v)).collect();
        if feeders.is_empty() {
            diags.push(
                ErcDiagnostic::new(
                    Rule::NoDcPath,
                    "no DC conduction path to ground (capacitor/gate-only island)",
                )
                .with_nodes(nodes),
            );
        } else {
            diags.push(
                ErcDiagnostic::new(
                    Rule::CurrentSourceCutset,
                    "current source drives an island with no DC path to carry its current",
                )
                .with_nodes(nodes)
                .with_devices(feeders),
            );
        }
    }

    // --- Dangling terminals (warning). --------------------------------
    for v in 1..n {
        if degree[v] == 1 && !floating_nodes[v] {
            diags.push(
                ErcDiagnostic::new(
                    Rule::DanglingTerminal,
                    "node is touched by exactly one terminal",
                )
                .with_nodes(vec![node_name(ckt, v)]),
            );
        }
    }
}
