//! Physical constants and SI-prefix helpers.
//!
//! All quantities in this workspace are plain SI `f64` values (volts, amps,
//! seconds, farads, ohms, metres). These helpers exist so netlists and
//! device cards read like their SPICE counterparts:
//!
//! ```
//! use ferrotcam_spice::units::{femto, nano, pico};
//! let c_ml = femto(2.5);   // 2.5 fF
//! let t_stop = nano(3.0);  // 3 ns
//! let dt = pico(1.0);      // 1 ps
//! assert!(c_ml < dt); // both are just f64 seconds/farads
//! ```

/// Boltzmann constant (J/K).
pub const BOLTZMANN: f64 = 1.380_649e-23;
/// Elementary charge (C).
pub const Q_ELECTRON: f64 = 1.602_176_634e-19;
/// Vacuum permittivity (F/m).
pub const EPS0: f64 = 8.854_187_812_8e-12;
/// Relative permittivity of SiO2.
pub const EPS_SIO2: f64 = 3.9;
/// Relative permittivity of ferroelectric HfO2 (doped HfZrO, typical).
pub const EPS_FE_HFO2: f64 = 30.0;
/// Default simulation temperature (K) — 300 K ≈ 27 °C.
pub const TEMP_NOMINAL: f64 = 300.0;

/// Thermal voltage kT/q at temperature `t_kelvin` (volts).
///
/// ```
/// let ut = ferrotcam_spice::units::thermal_voltage(300.0);
/// assert!((ut - 0.02585).abs() < 1e-4);
/// ```
#[must_use]
pub fn thermal_voltage(t_kelvin: f64) -> f64 {
    BOLTZMANN * t_kelvin / Q_ELECTRON
}

macro_rules! prefix_fn {
    ($(#[$doc:meta] $name:ident => $scale:expr;)*) => {
        $(
            #[$doc]
            #[must_use]
            pub fn $name(x: f64) -> f64 { x * $scale }
        )*
    };
}

prefix_fn! {
    /// Multiply by 1e-18 (atto).
    atto => 1e-18;
    /// Multiply by 1e-15 (femto).
    femto => 1e-15;
    /// Multiply by 1e-12 (pico).
    pico => 1e-12;
    /// Multiply by 1e-9 (nano).
    nano => 1e-9;
    /// Multiply by 1e-6 (micro).
    micro => 1e-6;
    /// Multiply by 1e-3 (milli).
    milli => 1e-3;
    /// Multiply by 1e3 (kilo).
    kilo => 1e3;
    /// Multiply by 1e6 (mega).
    mega => 1e6;
    /// Multiply by 1e9 (giga).
    giga => 1e9;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixes_scale() {
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * b.abs();
        assert!(close(femto(1.0), 1e-15));
        assert!(close(pico(2.0), 2e-12));
        assert!(close(nano(3.0), 3e-9));
        assert!(close(micro(4.0), 4e-6));
        assert!(close(milli(5.0), 5e-3));
        assert!(close(kilo(6.0), 6e3));
        assert!(close(mega(7.0), 7e6));
        assert!(close(giga(8.0), 8e9));
        assert!(close(atto(9.0), 9e-18));
    }

    #[test]
    fn thermal_voltage_at_room_temp() {
        let ut = thermal_voltage(TEMP_NOMINAL);
        assert!(ut > 0.0258 && ut < 0.0259, "ut = {ut}");
    }
}
