//! Property tests for the Newton device-evaluation bypass: with zero
//! bypass tolerances the `safe` policy must be *bit-identical* to
//! `off` on arbitrary nonlinear netlists (a bypass hit then requires
//! bitwise-equal terminal voltages, where replaying the cached stamps
//! and re-evaluating produce the same bits), and with the default
//! tolerances the waveforms must agree to well under a microvolt while
//! actually skipping work.

use ferrotcam_spice::prelude::*;
use proptest::prelude::*;

/// A smooth cubic conductor with a voltage-dependent charge: nonlinear
/// enough to exercise multi-iteration Newton solves, tame enough to
/// converge from anywhere. `eval` is a pure function of `v`, as the
/// bypass contract requires.
#[derive(Debug)]
struct CubicConductor {
    name: String,
    nodes: [NodeId; 2],
    g1: f64,
    g3: f64,
    c0: f64,
    c1: f64,
}

impl NonlinearDevice for CubicConductor {
    fn name(&self) -> &str {
        &self.name
    }

    fn terminals(&self) -> &[NodeId] {
        &self.nodes
    }

    fn eval(&self, v: &[f64], out: &mut DeviceStamps, _ctx: &EvalCtx) {
        let vd = v[0] - v[1];
        let i = self.g1 * vd + self.g3 * vd * vd * vd;
        let g = self.g1 + 3.0 * self.g3 * vd * vd;
        out.add_branch_current(0, 1, i, g);
        let q = self.c0 * vd + 0.5 * self.c1 * vd * vd;
        let c = self.c0 + self.c1 * vd;
        out.add_branch_charge(0, 1, q, c);
    }
}

/// Parameters for one random RC + cubic-conductor ladder.
#[derive(Debug, Clone)]
struct Ladder {
    stages: usize,
    res: Vec<f64>,
    caps: Vec<f64>,
    g1s: Vec<f64>,
    g3s: Vec<f64>,
    v_hi: f64,
}

fn ladder() -> impl Strategy<Value = Ladder> {
    (2usize..=5).prop_flat_map(|stages| {
        let res = proptest::collection::vec(500.0f64..20e3, stages);
        let caps = proptest::collection::vec(1e-14f64..5e-13, stages);
        let g1s = proptest::collection::vec(1e-5f64..1e-3, stages);
        let g3s = proptest::collection::vec(1e-6f64..5e-4, stages);
        (Just(stages), res, caps, g1s, g3s, 0.3f64..1.5).prop_map(
            |(stages, res, caps, g1s, g3s, v_hi)| Ladder {
                stages,
                res,
                caps,
                g1s,
                g3s,
                v_hi,
            },
        )
    })
}

/// Build the ladder: a pulsed source drives a resistor chain; every
/// stage node has a capacitor and a cubic conductor to ground.
fn build(l: &Ladder) -> Circuit {
    let mut ckt = Circuit::new();
    let gnd = Circuit::gnd();
    let src = ckt.node("src");
    ckt.vsource(
        "VIN",
        src,
        gnd,
        Waveform::pulse(0.0, l.v_hi, 100e-12, 50e-12, 50e-12, 400e-12),
    );
    let mut prev = src;
    for s in 0..l.stages {
        let node = ckt.node(&format!("n{s}"));
        ckt.resistor(&format!("R{s}"), prev, node, l.res[s])
            .unwrap();
        ckt.capacitor(&format!("C{s}"), node, gnd, l.caps[s])
            .unwrap();
        ckt.device(Box::new(CubicConductor {
            name: format!("X{s}"),
            nodes: [node, gnd],
            g1: l.g1s[s],
            g3: l.g3s[s],
            c0: 1e-14,
            c1: 2e-15,
        }));
        prev = node;
    }
    ckt
}

fn run(l: &Ladder, bypass: BypassPolicy, reltol: f64, vntol: f64) -> (Trace, SimStats) {
    let mut ckt = build(l);
    let mut opts = TranOpts::to_time(1e-9);
    opts.dt_max = 10e-12;
    opts.newton.bypass = bypass;
    opts.newton.bypass_reltol = reltol;
    opts.newton.bypass_vntol = vntol;
    opts.newton.ordering = Ordering::Amd;
    let tr = transient(&mut ckt, &opts).expect("transient");
    let stats = tr.stats();
    (tr, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn safe_bypass_with_zero_tolerances_is_bit_identical(l in ladder()) {
        let (off, s_off) = run(&l, BypassPolicy::Off, 0.0, 0.0);
        let (safe, _s_safe) = run(&l, BypassPolicy::Safe, 0.0, 0.0);
        prop_assert_eq!(s_off.bypass_hits, 0);
        prop_assert_eq!(off.time(), safe.time());
        for name in off.signal_names() {
            let a = off.signal(name).expect("off signal");
            let b = safe.signal(name).expect("safe signal");
            prop_assert_eq!(a, b, "signal {} diverged", name);
        }
    }

    #[test]
    fn safe_bypass_stays_under_a_microvolt_and_skips_work(l in ladder()) {
        let (off, _) = run(&l, BypassPolicy::Off, 0.0, 0.0);
        // Default bypass tolerances: a decade under the Newton tolerances.
        let (safe, stats) = run(&l, BypassPolicy::Safe, 1e-5, 1e-7);
        prop_assert!(stats.bypass_hits > 0, "bypass never engaged: {stats:?}");
        prop_assert_eq!(off.time(), safe.time());
        for name in off.signal_names() {
            if !name.starts_with("v(") {
                continue;
            }
            let a = off.signal(name).expect("off signal");
            let b = safe.signal(name).expect("safe signal");
            for (x, y) in a.iter().zip(b) {
                prop_assert!((x - y).abs() <= 1e-6, "{}: {x} vs {y}", name);
            }
        }
    }
}
