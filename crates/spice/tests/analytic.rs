//! Analytic-answer integration tests for the simulator: circuits with
//! closed-form solutions that pin down the engine's physics.

use ferrotcam_spice::prelude::*;

/// Charge sharing: C1 precharged to V0, switched onto C2 through R.
/// Final voltage V0·C1/(C1+C2); energy (½C1V0² − ½(C1+C2)Vf²) burns in R.
#[test]
fn capacitive_charge_sharing() {
    let c1 = 2e-15;
    let c2 = 1e-15;
    let v0 = 1.2;
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.capacitor("C1", a, Circuit::gnd(), c1).unwrap();
    ckt.capacitor("C2", b, Circuit::gnd(), c2).unwrap();
    ckt.resistor("R1", a, b, 10e3).unwrap();
    ckt.initial_condition(a, v0);
    let mut opts = TranOpts::to_time(2e-9); // ≫ τ = R·C1C2/(C1+C2) ≈ 6.7 ps
    opts.uic = true;
    opts.dt_max = 2e-12;
    let tr = transient(&mut ckt, &opts).unwrap();
    let vf = v0 * c1 / (c1 + c2);
    let va = tr.final_value("v(a)").unwrap();
    let vb = tr.final_value("v(b)").unwrap();
    assert!((va - vf).abs() < 0.01 * vf, "va = {va}, want {vf}");
    assert!((vb - vf).abs() < 0.01 * vf, "vb = {vb}");
}

/// Two-pole RC ladder step response: v2(t) has no overshoot and settles
/// to the source value.
#[test]
fn two_pole_ladder_settles_monotonically() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let m = ckt.node("m");
    let o = ckt.node("o");
    ckt.vsource(
        "V1",
        a,
        Circuit::gnd(),
        Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0),
    );
    ckt.resistor("R1", a, m, 1e3).unwrap();
    ckt.capacitor("C1", m, Circuit::gnd(), 1e-12).unwrap();
    ckt.resistor("R2", m, o, 1e3).unwrap();
    ckt.capacitor("C2", o, Circuit::gnd(), 1e-12).unwrap();
    let mut opts = TranOpts::to_time(20e-9);
    opts.dt_max = 20e-12;
    let tr = transient(&mut ckt, &opts).unwrap();
    let y = tr.signal("v(o)").unwrap();
    assert!(
        y.windows(2).all(|w| w[1] >= w[0] - 1e-6),
        "overshoot/ringing"
    );
    assert!((tr.final_value("v(o)").unwrap() - 1.0).abs() < 1e-3);
}

/// Steady sinusoidal drive of an RC divider: transient amplitude matches
/// the AC analysis at the same frequency.
#[test]
fn transient_agrees_with_ac_at_one_frequency() {
    let r = 1e3;
    let c = 1e-9;
    let f = 1.0 / (2.0 * std::f64::consts::PI * r * c); // the pole
    let build = || {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(
            "V1",
            a,
            Circuit::gnd(),
            Waveform::Sine {
                offset: 0.0,
                ampl: 1.0,
                freq: f,
                delay: 0.0,
            },
        );
        ckt.resistor("R1", a, b, r).unwrap();
        ckt.capacitor("C1", b, Circuit::gnd(), c).unwrap();
        (ckt, b)
    };
    // AC: |H| = 1/√2 at the pole.
    let (ckt_ac, b_ac) = build();
    let ac = ac_analysis(&ckt_ac, "V1", &[f]).unwrap();
    let mag_ac = ac.voltage(0, b_ac).mag();
    assert!((mag_ac - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);

    // Transient: measure the steady-state amplitude over the last cycle.
    let (mut ckt_tr, _) = build();
    let period = 1.0 / f;
    let mut opts = TranOpts::to_time(8.0 * period);
    opts.dt_max = period / 200.0;
    opts.integrator = Integrator::Trapezoidal;
    let tr = transient(&mut ckt_tr, &opts).unwrap();
    let y = tr.signal("v(b)").unwrap();
    let t = tr.time();
    let last_cycle: Vec<f64> = t
        .iter()
        .zip(y)
        .filter(|(&ti, _)| ti > 7.0 * period)
        .map(|(_, &v)| v)
        .collect();
    let amp = last_cycle.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    assert!(
        (amp - mag_ac).abs() < 0.03 * mag_ac,
        "transient amp {amp:.4} vs AC {mag_ac:.4}"
    );
}

/// KCL sanity on a loaded nonlinear circuit: the sum of all source
/// branch currents into ground equals zero at DC.
#[test]
fn dc_source_currents_balance() {
    use ferrotcam_spice::netlist::Circuit as C;
    let mut ckt = C::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    let b1 = ckt.vsource("V1", a, C::gnd(), Waveform::dc(1.0));
    let b2 = ckt.vsource("V2", b, C::gnd(), Waveform::dc(0.4));
    ckt.resistor("R1", a, b, 1e3).unwrap();
    ckt.resistor("R2", b, C::gnd(), 2e3).unwrap();
    let sol = operating_point(&ckt, &DcOpts::default()).unwrap();
    // i(V1) = −(1−0.4)/1k; i(V2) = +0.6mA − 0.2mA = the rest.
    let i1 = sol.branch_current(b1);
    let i2 = sol.branch_current(b2);
    assert!((i1 + 0.6e-3).abs() < 1e-7, "i1 = {i1}");
    // Node b: 0.6 mA in from R1, 0.2 mA out via R2 → 0.4 mA into V2.
    assert!((i2 - 0.4e-3).abs() < 1e-7, "i2 = {i2}");
}
