//! Error-path coverage: the simulator must fail loudly and precisely,
//! never hang or return garbage.

use ferrotcam_spice::prelude::*;

/// A floating voltage-source loop (two ideal sources in parallel with
/// different values) is structurally contradictory.
#[test]
fn contradictory_sources_do_not_produce_garbage() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.vsource("V1", a, Circuit::gnd(), Waveform::dc(1.0));
    ckt.vsource("V2", a, Circuit::gnd(), Waveform::dc(2.0));
    // The MNA system is singular (two branch rows forcing one node);
    // either a singular-matrix error or — if gmin regularises it — a
    // solution splitting the difference is acceptable, but a silent
    // nonsensical voltage is not.
    match operating_point(&ckt, &DcOpts::default()) {
        Err(Error::SingularMatrix { .. }) | Err(Error::NonConvergence { .. }) => {}
        Ok(sol) => {
            let v = sol.voltage(a);
            assert!((1.0..=2.0).contains(&v), "nonsense voltage {v}");
        }
        Err(e) => panic!("unexpected error class: {e}"),
    }
}

#[test]
fn unknown_sweep_source_is_reported() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.resistor("R", a, Circuit::gnd(), 1e3).unwrap();
    let err = dc_sweep(&ckt, "VMISSING", &[0.0, 1.0], &NewtonOpts::default()).unwrap_err();
    assert!(matches!(err, Error::UnknownSignal { ref name } if name == "VMISSING"));
}

#[test]
fn trace_reports_unknown_signals_by_name() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.vsource("V1", a, Circuit::gnd(), Waveform::dc(1.0));
    ckt.resistor("R", a, Circuit::gnd(), 1e3).unwrap();
    let tr = transient(&mut ckt, &TranOpts::to_time(1e-9)).unwrap();
    let err = tr.signal("v(nope)").unwrap_err();
    assert_eq!(err.to_string(), "unknown signal \"v(nope)\"");
}

#[test]
fn invalid_elements_rejected_at_construction() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        assert!(
            matches!(
                ckt.resistor("R", a, Circuit::gnd(), bad),
                Err(Error::InvalidParameter { .. })
            ),
            "resistance {bad} accepted"
        );
    }
    assert!(ckt.capacitor("C", a, Circuit::gnd(), -1e-15).is_err());
    // The circuit stays usable after rejected inserts.
    ckt.resistor("R", a, Circuit::gnd(), 1e3).unwrap();
    assert!(operating_point(&ckt, &DcOpts::default()).is_ok());
}

#[test]
fn empty_circuit_is_a_typed_error() {
    let ckt = Circuit::new();
    // Ground only: zero unknowns. This used to reach the solver and
    // rely on every downstream loop tolerating n = 0; it is now rejected
    // up front by the ERC validation pass.
    let err = operating_point(&ckt, &DcOpts::default()).unwrap_err();
    assert_eq!(err, Error::EmptyCircuit);
}

#[test]
fn duplicate_instance_names_are_a_typed_error() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.vsource("V1", a, Circuit::gnd(), Waveform::dc(1.0));
    ckt.resistor("V1", a, Circuit::gnd(), 1e3).unwrap();
    let err = operating_point(&ckt, &DcOpts::default()).unwrap_err();
    assert!(matches!(err, Error::DuplicateName { ref name } if name == "V1"));
}

#[test]
fn ac_rejects_unknown_source() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.resistor("R", a, Circuit::gnd(), 1e3).unwrap();
    assert!(matches!(
        ac_analysis(&ckt, "nothere", &[1e6]),
        Err(Error::UnknownSignal { .. })
    ));
}
