//! Integration tests for the trace collector, convergence forensics and
//! the transient-stepper defect fixes (breakpoint-clamped `dt` cuts,
//! singular-pivot propagation, breakpoint dedup tolerance).
//!
//! The trace collector is process-global, so every test that records
//! into it serialises on [`TRACE_LOCK`] and resets the collector while
//! holding the lock.

use ferrotcam_spice::engine::transient::collect_breakpoints;
use ferrotcam_spice::prelude::*;
use ferrotcam_spice::trace::{self, Event, TraceLevel};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn trace_lock() -> MutexGuard<'static, ()> {
    // A panicking test must not wedge the others behind a poisoned lock.
    TRACE_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A linear conductor that poisons exactly one Newton solve: the first
/// `eval` at `t >= trip_after` reports a NaN terminal current, forcing
/// the stepper to reject that step; every later call behaves again.
#[derive(Debug)]
struct FailOnce {
    nodes: [NodeId; 2],
    ohms: f64,
    trip_after: f64,
    armed: AtomicBool,
}

impl FailOnce {
    fn new(p: NodeId, n: NodeId, ohms: f64, trip_after: f64) -> Self {
        Self {
            nodes: [p, n],
            ohms,
            trip_after,
            armed: AtomicBool::new(true),
        }
    }
}

impl NonlinearDevice for FailOnce {
    fn name(&self) -> &str {
        "XTRIP"
    }

    fn terminals(&self) -> &[NodeId] {
        &self.nodes
    }

    fn eval(&self, v: &[f64], out: &mut DeviceStamps, ctx: &EvalCtx) {
        if ctx.time >= self.trip_after && self.armed.swap(false, Ordering::SeqCst) {
            out.i[0] = f64::NAN;
            return;
        }
        let g = 1.0 / self.ohms;
        out.add_branch_current(0, 1, (v[0] - v[1]) * g, g);
    }
}

/// A device whose terminal current is always NaN: every Newton solve
/// containing it fails with a poisoned residual on its first node.
#[derive(Debug)]
struct NanDevice {
    nodes: [NodeId; 2],
}

impl NonlinearDevice for NanDevice {
    fn name(&self) -> &str {
        "XNAN"
    }

    fn terminals(&self) -> &[NodeId] {
        &self.nodes
    }

    fn eval(&self, _v: &[f64], out: &mut DeviceStamps, _ctx: &EvalCtx) {
        out.i[0] = f64::NAN;
    }
}

/// Regression for the breakpoint-rejection defect: a step whose `dt_eff`
/// is clamped to a tiny breakpoint gap gets rejected, and the retry must
/// cut the *pre-clamp* `dt` — quartering the clamped value instead used
/// to collapse the step size for the rest of the run.
///
/// Also pins the Full-level accounting: per-step NDJSON events must sum
/// exactly to `SimStats::{accepted_steps, rejected_steps}`.
#[test]
fn breakpoint_clamped_rejection_recovers_dt() {
    let _guard = trace_lock();
    trace::set_level(TraceLevel::Full);
    trace::reset();

    // Pulse rise of 1e-11 s puts two breakpoints 1e-11 apart at t = 5e-7;
    // the trip device rejects exactly the clamped step between them.
    let bp1 = 5e-7;
    let gap = 1e-11;
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.vsource(
        "V1",
        a,
        Circuit::gnd(),
        Waveform::pulse(0.0, 1.0, bp1, gap, 1e-9, 1e-6),
    );
    ckt.resistor("R1", a, b, 1e3).unwrap();
    ckt.capacitor("C1", b, Circuit::gnd(), 1e-12).unwrap();
    ckt.device(Box::new(FailOnce::new(
        b,
        Circuit::gnd(),
        1e6,
        bp1 + gap / 10.0,
    )));

    let mut opts = TranOpts::to_time(1e-6);
    opts.erc = Some(ErcMode::Off);
    let tr = transient(&mut ckt, &opts).expect("one rejected step must be survivable");
    let stats = tr.stats();
    let events = trace::take_events();
    trace::set_level(TraceLevel::Off);

    // Exact-sum property: every counted step has exactly one event.
    let accepts: Vec<(usize, f64)> = events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match e {
            Event::StepAccept { dt, .. } => Some((i, *dt)),
            _ => None,
        })
        .collect();
    let rejects: Vec<(usize, f64)> = events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match e {
            Event::StepReject { dt, .. } => Some((i, *dt)),
            _ => None,
        })
        .collect();
    assert_eq!(accepts.len() as u64, stats.accepted_steps);
    assert_eq!(rejects.len() as u64, stats.rejected_steps);
    assert_eq!(rejects.len(), 1, "the trip device rejects exactly one step");

    // The rejected attempt was the breakpoint-clamped one.
    let (reject_idx, rejected_dt) = rejects[0];
    assert!(
        rejected_dt <= gap * 1.01,
        "rejection should hit the clamped step, got dt = {rejected_dt:e}"
    );

    // dt must recover to within 2x of its pre-rejection value within
    // 5 accepted steps. Under the old `dt = dt_eff * 0.25` cut the
    // working dt would restart from ~2.5e-12 and still be below 1e-11
    // five growth steps later.
    let dt_pre = accepts
        .iter()
        .filter(|&&(i, _)| i < reject_idx)
        .map(|&(_, dt)| dt)
        .fold(0.0f64, f64::max);
    assert!(
        dt_pre > 1e-9,
        "steady-state dt before the edge, got {dt_pre:e}"
    );
    let recovered = accepts
        .iter()
        .filter(|&&(i, _)| i > reject_idx)
        .take(5)
        .any(|&(_, dt)| dt >= dt_pre / 2.0);
    assert!(
        recovered,
        "dt must recover to >= {:e} within 5 accepted steps",
        dt_pre / 2.0
    );

    // Span events bracket the analyses that ran.
    let span_started = |n: &str| {
        events
            .iter()
            .any(|e| matches!(e, Event::SpanStart { name, .. } if *name == n))
    };
    let span_ended = |n: &str| {
        events
            .iter()
            .any(|e| matches!(e, Event::SpanEnd { name, .. } if *name == n))
    };
    assert!(span_started("transient") && span_ended("transient"));
    assert!(span_started("dc") && span_ended("dc"));

    // Every event renders as one parseable NDJSON line with a kind.
    let body = trace::render_ndjson(&events);
    assert_eq!(body.lines().count(), events.len());
    for line in body.lines() {
        let v: serde_json::JsonValue =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad NDJSON line {line}: {e}"));
        assert!(v.get("kind").and_then(|k| k.as_str()).is_some());
        assert!(v
            .get("seq")
            .and_then(serde_json::JsonValue::as_i64)
            .is_some());
    }
}

/// Regression for the singular-matrix propagation defect: when step
/// shrinking cannot rescue a structural singularity the original error
/// (with its real pivot index) must surface, not a rebuilt `{index: 0}`.
#[test]
fn singular_pivot_propagates_original_index() {
    let _guard = trace_lock();
    trace::set_level(TraceLevel::Summary);
    trace::reset();

    // Two ideal sources forcing different voltages on the same node:
    // duplicate branch rows, structurally singular at every dt.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.vsource("V1", a, Circuit::gnd(), Waveform::dc(1.0));
    ckt.vsource("V2", a, Circuit::gnd(), Waveform::dc(2.0));
    ckt.resistor("R1", a, Circuit::gnd(), 1e3).unwrap();

    let mut opts = TranOpts::to_time(1e-6);
    opts.uic = true; // skip the DC solve: exercise the stepper's arm
    opts.erc = Some(ErcMode::Off);
    let err = transient(&mut ckt, &opts).unwrap_err();
    let summary = trace::summary();
    let events = trace::take_events();
    trace::set_level(TraceLevel::Off);

    let Error::SingularMatrix { index } = err else {
        panic!("expected SingularMatrix, got {err}");
    };
    // Node `a` is variable 0; the conflicting branch rows are 1 and 2.
    // The pre-fix code re-threw `{index: 0}` unconditionally.
    assert!(index >= 1, "pivot index must be the real one, got {index}");

    assert!(summary.singular_pivots >= 1);
    assert!(
        summary.rejected_steps >= 1,
        "shrink attempts count as rejections"
    );
    let named = events.iter().any(|e| {
        matches!(e, Event::SingularPivot { index: i, node, .. }
            if *i == index && node.starts_with("i(V"))
    });
    assert!(
        named,
        "singular pivot event must map the index to a branch name"
    );
}

/// A poisoned residual in DC must surface an enriched `NonConvergence`
/// naming the worst-residual node and the device driving it, through
/// all fallback ladders.
#[test]
fn nonconvergence_names_worst_node_and_device() {
    let _guard = trace_lock();
    trace::set_level(TraceLevel::Summary);
    trace::reset();

    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let ml = ckt.node("ml");
    ckt.vsource("V1", vdd, Circuit::gnd(), Waveform::dc(1.0));
    ckt.resistor("R1", vdd, ml, 1e3).unwrap();
    ckt.device(Box::new(NanDevice {
        nodes: [ml, Circuit::gnd()],
    }));

    let opts = DcOpts {
        erc: Some(ErcMode::Off),
        ..DcOpts::default()
    };
    let err = operating_point(&ckt, &opts).unwrap_err();
    let summary = trace::summary();
    let events = trace::take_events();
    trace::set_level(TraceLevel::Off);

    let Error::NonConvergence {
        forensics: Some(f), ..
    } = &err
    else {
        panic!("expected enriched NonConvergence, got {err}");
    };
    assert_eq!(f.node, "ml");
    assert_eq!(f.device, "XNAN");
    let msg = err.to_string();
    assert!(msg.contains("ml") && msg.contains("XNAN"), "message: {msg}");

    // Plain Newton, the first gmin rung and the first source rung each
    // record one attributed failure before the error escapes.
    assert!(summary.newton_failures >= 3, "{summary:?}");
    let fell_back = events
        .iter()
        .any(|e| matches!(e, Event::Note { name, .. } if *name == "dc.fallback"));
    assert!(fell_back, "fallback ladders must leave note events");
}

/// Pins the breakpoint dedup tolerance: relative to the breakpoint's own
/// value, not to `t_stop`. Under the old `t_stop * 1e-12` absolute
/// tolerance, two real edges 5e-13 s apart early in a 1 s run were
/// silently merged and the stepper skated over the second one.
#[test]
fn breakpoint_dedup_is_relative_to_local_value() {
    let edges = |times: &[f64]| {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        for (k, &t) in times.iter().enumerate() {
            ckt.vsource(
                &format!("V{k}"),
                a,
                Circuit::gnd(),
                Waveform::pwl(vec![(0.0, 0.0), (t, 1.0)]),
            );
        }
        collect_breakpoints(&ckt, 1.0)
    };
    let count_near = |bps: &[f64], t: f64| bps.iter().filter(|&&b| (b - t).abs() < 0.4 * t).count();

    // Two distinct sub-picosecond-spaced edges on a 1 s run: both must
    // survive (the old absolute tolerance 1e-12 merged them).
    let bps = edges(&[1e-7, 1e-7 + 5e-13]);
    assert_eq!(count_near(&bps, 1e-7), 2, "{bps:?}");
    assert_eq!(
        *bps.last().unwrap(),
        1.0,
        "t_stop always terminates the list"
    );

    // Microsecond-spaced edges mid-run survive too.
    let bps = edges(&[0.5, 0.5 + 1e-6]);
    assert_eq!(count_near(&bps, 0.5), 2, "{bps:?}");

    // Float noise from the same edge computed two ways still collapses.
    let bps = edges(&[1e-7, 1e-7 + 1e-17]);
    assert_eq!(count_near(&bps, 1e-7), 1, "{bps:?}");
}
