//! Property tests: the sparse LU must agree with the dense reference on
//! arbitrary diagonally-dominant systems, and transient energy must be
//! conserved on RC networks.

use ferrotcam_spice::matrix::dense::DenseMatrix;
use ferrotcam_spice::matrix::sparse::{
    solve_triplets, Refactorization, ScatterMap, SparseLu, Triplets,
};
use ferrotcam_spice::matrix::{CachedSolver, CscMatrix};
use ferrotcam_spice::prelude::*;
use proptest::prelude::*;

/// Strategy: a random diagonally dominant system of dimension 3..=24
/// with random off-diagonal fill.
fn dd_system() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>, Vec<f64>)> {
    (3usize..=24).prop_flat_map(|n| {
        let entries = proptest::collection::vec((0..n, 0..n, -1.0f64..1.0), 0..4 * n);
        let rhs = proptest::collection::vec(-10.0f64..10.0, n);
        (Just(n), entries, rhs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparse_matches_dense((n, entries, rhs) in dd_system()) {
        let mut t = Triplets::new(n);
        let mut d = DenseMatrix::zeros(n, n);
        for &(r, c, v) in &entries {
            t.add(r, c, v);
            d.add(r, c, v);
        }
        // Make it safely non-singular.
        for i in 0..n {
            t.add(i, i, 8.0);
            d.add(i, i, 8.0);
        }
        let xs = solve_triplets(&t, &rhs).expect("sparse solve");
        let xd = d.solve(&rhs).expect("dense solve");
        for (a, b) in xs.iter().zip(&xd) {
            prop_assert!((a - b).abs() < 1e-8 * (1.0 + b.abs()), "{a} vs {b}");
        }
        // Residual check against the assembled operator.
        let y = t.to_csc().mul_vec(&xs);
        for (yi, bi) in y.iter().zip(&rhs) {
            prop_assert!((yi - bi).abs() < 1e-8 * (1.0 + bi.abs()));
        }
    }

    #[test]
    fn refactor_matches_fresh_factor((n, entries, rhs) in dd_system()) {
        // MNA-shaped: fixed sparsity, several numeric value sets (as in
        // Newton iterations). The numeric refactorization must agree with
        // a from-scratch factorization of the same matrix.
        let build = |scale: f64| {
            let mut t = Triplets::new(n);
            for &(r, c, v) in &entries {
                t.add(r, c, v * scale);
            }
            for i in 0..n {
                t.add(i, i, 8.0 + scale);
            }
            t.to_csc()
        };
        let a0 = build(1.0);
        let mut lu = SparseLu::factor(&a0).expect("factor");
        for step in 1..=4 {
            let a = build(1.0 + 0.3 * step as f64);
            let kind = lu.refactor(&a).expect("refactor");
            prop_assert_eq!(kind, Refactorization::Numeric);
            let fresh = SparseLu::factor(&a).expect("fresh factor");
            let xr = lu.solve(&rhs);
            let xf = fresh.solve(&rhs);
            for (a, b) in xr.iter().zip(&xf) {
                prop_assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn scatter_map_roundtrips_to_csc((n, entries, _rhs) in dd_system()) {
        // Scattering through the cached plan must reproduce to_csc()
        // exactly, including duplicate merging.
        let mut t = Triplets::new(n);
        for &(r, c, v) in &entries {
            t.add(r, c, v);
        }
        for i in 0..n {
            t.add(i, i, 8.0);
        }
        let map = ScatterMap::build(&t);
        prop_assert!(map.matches(&t));
        let mut scattered = CscMatrix::default();
        map.scatter(&t, &mut scattered);
        let direct = t.to_csc();
        prop_assert_eq!(scattered, direct);
    }

    #[test]
    fn amd_ordered_solver_matches_natural((n, entries, rhs) in dd_system()) {
        // The fill-reducing permutation changes the elimination order,
        // not the answer: across refactorisations of the same pattern
        // the AMD-ordered pipeline must track the natural-order one to
        // solver precision.
        let mut amd = CachedSolver::with_ordering(Ordering::Amd);
        let mut nat = CachedSolver::with_ordering(Ordering::Natural);
        for step in 0..3 {
            let scale = 1.0 + 0.5 * f64::from(step);
            let mut t = Triplets::new(n);
            for &(r, c, v) in &entries {
                t.add(r, c, v * scale);
            }
            for i in 0..n {
                t.add(i, i, 8.0 + scale);
            }
            let xa = amd.solve(&t, &rhs).expect("amd solve");
            let xn = nat.solve(&t, &rhs).expect("natural solve");
            for (a, b) in xa.iter().zip(&xn) {
                prop_assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()), "{a} vs {b}");
            }
        }
        // Both rode the numeric-refactor fast path after the first solve.
        prop_assert_eq!(amd.stats().full_factors, 1);
        prop_assert_eq!(amd.stats().refactors, 2);
        prop_assert!(amd.stats().fill_ratio().expect("factored") >= 1.0 - 1e-12);
    }

    #[test]
    fn rc_divider_dc_matches_analytic(
        r1 in 100.0f64..1e6,
        r2 in 100.0f64..1e6,
        v in 0.1f64..5.0,
    ) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::gnd(), Waveform::dc(v));
        ckt.resistor("R1", a, b, r1).expect("r1");
        ckt.resistor("R2", b, Circuit::gnd(), r2).expect("r2");
        let sol = operating_point(&ckt, &DcOpts::default()).expect("op");
        let expect = v * r2 / (r1 + r2);
        prop_assert!((sol.voltage(b) - expect).abs() < 1e-3 * v.max(1.0),
            "{} vs {expect}", sol.voltage(b));
    }

    #[test]
    fn source_energy_nonnegative_for_passive_loads(
        c in 1e-16f64..1e-12,
        r in 100.0f64..1e5,
        v in 0.1f64..2.0,
    ) {
        // A source driving an RC network can only deliver energy.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::gnd(),
            Waveform::pulse(0.0, v, 0.0, 1e-12, 1e-12, 1.0));
        ckt.resistor("R1", a, b, r).expect("r");
        ckt.capacitor("C1", b, Circuit::gnd(), c).expect("c");
        let tau = r * c;
        let mut opts = TranOpts::to_time(5.0 * tau);
        opts.dt_max = tau / 20.0;
        let tr = transient(&mut ckt, &opts).expect("tran");
        let e = tr.source_energy("V1").expect("energy");
        prop_assert!(e >= -1e-20, "negative delivered energy {e}");
        // And it approaches CV² (half stored, half dissipated).
        let cv2 = c * v * v;
        prop_assert!((e - cv2).abs() < 0.12 * cv2, "E {e} vs CV² {cv2}");
    }
}
