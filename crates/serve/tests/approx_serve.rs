//! Approximate-match serving integration: threshold / top-k / range
//! requests answered identically on both execution tiers, per-kind
//! accounting, sense-grounded audit cleanliness, and class-split
//! admission.

use ferrotcam::fom::SearchMetrics;
use ferrotcam::{DesignKind, PackedQuery};
use ferrotcam_serve::{
    reference_search, AdmissionClass, BackendKind, Overloaded, RatePolicy, RequestKind,
    ServiceConfig, ShardedTcam, TcamService,
};
use rand::split_mix64;

const WIDTH: usize = 16;

fn metrics() -> SearchMetrics {
    SearchMetrics {
        design: DesignKind::T15Dg,
        word_len: WIDTH,
        latency_1step: 231e-12,
        latency_2step: Some(481e-12),
        energy_1step: 0.13e-15 * WIDTH as f64,
        energy_2step: Some(0.21e-15 * WIDTH as f64),
    }
}

fn table(rows: u64, shards: usize) -> ShardedTcam {
    let mut t = ShardedTcam::new(WIDTH, shards);
    let mut seed = 0x5eed_0000_0000_0000 ^ rows;
    for _ in 0..rows {
        // A few wildcards so masked distance differs from plain Hamming.
        let v = split_mix64(&mut seed);
        let s: String = (0..WIDTH)
            .map(|b| match (v >> (2 * b)) & 0b11 {
                0b00 => 'X',
                0b01 | 0b10 => '1',
                _ => '0',
            })
            .collect();
        t.store(s.parse().expect("ternary word"));
    }
    t.attach_metrics(metrics());
    t
}

fn rand_query(seed: &mut u64) -> PackedQuery {
    PackedQuery::from_words(WIDTH, &[split_mix64(seed)])
}

/// Every kind, both tiers, fan-out and routed: the served answer must
/// equal the standalone naive reference, tier-invariantly.
#[test]
fn tiers_serve_identical_approximate_answers() {
    let mut seed = 0xa11c_e5ed_dead_beef;
    let queries: Vec<PackedQuery> = (0..12).map(|_| rand_query(&mut seed)).collect();
    let kinds = [
        RequestKind::Threshold { t: 0 },
        RequestKind::Threshold { t: 3 },
        RequestKind::TopK { k: 1 },
        RequestKind::TopK { k: 7 },
        RequestKind::Range,
        RequestKind::Exact,
    ];
    for backend in [BackendKind::Spice, BackendKind::Behavioural] {
        let t = table(96, 3);
        let svc = TcamService::start(
            t,
            &ServiceConfig {
                backend,
                audit_period: 0,
                ..ServiceConfig::default()
            },
        );
        let client = svc.client();
        for (i, q) in queries.iter().enumerate() {
            let kind = kinds[i % kinds.len()];
            let shard = if i % 2 == 0 { None } else { Some(i % 3) };
            let resp = client
                .submit_kind(7, q.clone(), kind, shard)
                .unwrap()
                .wait()
                .expect("no deadline configured");
            let (ref_out, ref_hits) = reference_search(&client.table(), kind, q, shard);
            assert_eq!(resp.matches, ref_out.matches, "{backend} {kind} q{i}");
            assert_eq!(resp.hits, ref_hits, "{backend} {kind} q{i}");
            assert_eq!(resp.step1_misses, ref_out.step1_misses, "{backend} {kind}");
            assert_eq!(resp.kind, kind);
            // Top-k answers are capped and sorted best-first.
            if let RequestKind::TopK { k } = kind {
                assert!(resp.hits.len() <= k);
                assert!(resp.hits.windows(2).all(|w| w[0] < w[1]));
            }
        }
        drop(svc);
    }
}

/// Threshold semantics end to end: t = 0 equals exact-match rows;
/// growing t only ever adds rows.
#[test]
fn threshold_zero_equals_exact_and_grows_monotonically() {
    let svc = TcamService::start(table(64, 2), &ServiceConfig::default());
    let client = svc.client();
    let mut seed = 0x70_70_70;
    for _ in 0..6 {
        let q = rand_query(&mut seed);
        let exact = client
            .submit_packed(0, q.clone(), None)
            .unwrap()
            .wait()
            .expect("no deadline configured");
        let mut prev = Vec::new();
        for t in 0..4u32 {
            let resp = client
                .submit_threshold(0, q.clone(), t, None)
                .unwrap()
                .wait()
                .expect("no deadline configured");
            if t == 0 {
                assert_eq!(resp.matches, exact.matches, "t=0 is exact match");
            }
            assert!(
                prev.iter().all(|m| resp.matches.contains(m)),
                "threshold {t} keeps every t-1 match"
            );
            prev = resp.matches;
        }
    }
    drop(svc);
}

/// Range serving: a level query built from `submit_range` matches
/// exactly the rows whose per-cell windows contain it.
#[test]
fn range_requests_honour_cell_windows() {
    let mut t = ShardedTcam::new(8, 2);
    // Cells (hi, lo): "11XX" = cells [3,3] and [0,3]; "0110" = [1,1],[2,2].
    for s in ["11XX", "0110", "XXXX", "10X1"] {
        let w: String = s
            .chars()
            .flat_map(|c| match c {
                '0' => ['0', '0'],
                '1' => ['1', '1'],
                _ => ['X', 'X'],
            })
            .collect();
        t.store(w.parse().expect("word"));
    }
    let svc = TcamService::start(t, &ServiceConfig::default());
    let client = svc.client();
    // Level 3 in both cells: rows "11XX" (windows [3,3],[0,3]) and
    // "XXXX" ([0,3],[0,3]) contain (3,3); "0110" and "10X1" don't.
    let resp = client
        .submit_range(0, &[3, 3, 3, 3], None)
        .unwrap()
        .wait()
        .expect("no deadline configured");
    assert_eq!(resp.kind, RequestKind::Range);
    let (ref_out, _) = reference_search(
        &client.table(),
        RequestKind::Range,
        &ferrotcam::levels_to_query(&[3, 3, 3, 3]),
        None,
    );
    assert_eq!(resp.matches, ref_out.matches);
    assert!(resp.matches.contains(&client.table().global_row(2, 0)));
    drop(svc);
}

/// The behavioural tier's approximate answers survive a period-1 audit
/// (every query replayed through the sense-time-classified / naive
/// reference) with zero divergences.
#[test]
fn approx_audit_lane_stays_clean_at_period_one() {
    let svc = TcamService::start(
        table(96, 3),
        &ServiceConfig {
            backend: BackendKind::Behavioural,
            audit_period: 1,
            ..ServiceConfig::default()
        },
    );
    let client = svc.client();
    let mut seed = 0xc1ea_0001u64;
    let mut sent = 0u64;
    for i in 0..48usize {
        let q = rand_query(&mut seed);
        let kind = match i % 4 {
            0 => RequestKind::Threshold { t: (i % 5) as u32 },
            1 => RequestKind::TopK { k: 1 + i % 6 },
            2 => RequestKind::Range,
            _ => RequestKind::Exact,
        };
        let _ = client
            .submit_kind(0, q, kind, None)
            .unwrap()
            .wait()
            .expect("no deadline configured");
        sent += 1;
    }
    let m = svc.drain();
    assert_eq!(m.completed, sent);
    assert_eq!(m.audit_sampled, sent, "period-1 lane replays everything");
    assert_eq!(m.audit_match_divergences, 0, "tiers agree on every kind");
    assert_eq!(m.audit_energy_divergences, 0);
    assert_eq!(m.audit_sampled_by_kind.total(), sent);
    assert!(m.audit_sampled_by_kind.threshold > 0);
    assert!(m.audit_sampled_by_kind.range > 0);
}

/// Completed/shed metrics split by kind, and the approximate admission
/// class budgets independently of the exact one.
#[test]
fn per_kind_accounting_and_class_admission() {
    let svc = TcamService::start(table(32, 2), &ServiceConfig::default());
    let client = svc.client();
    // Tenant 4's approximate lane gets 2 tokens and no refill.
    client.set_class_policy(4, AdmissionClass::Approx, RatePolicy::per_second(0.0, 2.0));
    let mut seed = 0xbeef;
    let q = rand_query(&mut seed);
    assert!(client.submit_threshold(4, q.clone(), 1, None).is_ok());
    assert!(client.submit_top_k(4, q.clone(), 3, None).is_ok());
    let shed = client.submit_threshold(4, q.clone(), 1, None).unwrap_err();
    assert_eq!(shed, Overloaded::RateLimited { tenant: 4 });
    // The same tenant's exact traffic rides the unlimited default.
    for _ in 0..8 {
        assert!(client.submit_packed(4, q.clone(), None).is_ok());
    }
    let m = svc.drain();
    assert_eq!(m.completed_by_kind.threshold, 1);
    assert_eq!(m.completed_by_kind.top_k, 1);
    assert_eq!(m.completed_by_kind.exact, 8);
    assert_eq!(m.shed_by_kind.threshold, 1);
    assert_eq!(m.shed_by_kind.exact, 0);
    assert_eq!(m.shed_rate_limited, 1);
}

/// Level round-trip sanity for the public helper the range client path
/// uses.
#[test]
fn levels_round_trip_through_packed_queries() {
    let levels = [0u8, 1, 2, 3, 3, 0, 2, 1];
    let q = ferrotcam::levels_to_query(&levels);
    assert_eq!(q.width(), 16);
    assert_eq!(ferrotcam::approx::query_levels(&q), levels);
}
