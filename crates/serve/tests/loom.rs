//! Exhaustive model checking of the service's two lock-free protocols.
//!
//! Compiled (and run) only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p ferrotcam-serve --test loom
//! ```
//!
//! `loom::model` re-executes each closure under every distinguishable
//! thread interleaving (bounded-preemption DFS), so the assertions
//! below are checked against *all* schedules, not one lucky run:
//!
//! * [`BoundedQueue`] — the Vyukov-style submission ring never loses a
//!   ticket, never duplicates one, and reports full/empty correctly
//!   under concurrent producers.
//! * [`DrainGate`] — the drain-bit/accepted-count shutdown word never
//!   strands an accepted request: once the dispatcher observes
//!   quiescence, no request can have been accepted without also having
//!   been completed.
//! * [`Admission`] — the passthrough fast-flag and the bucket map stay
//!   coherent: a finite bucket is never double-spent by racing admits,
//!   and installing a policy is immediately visible to the installer.
//! * [`EpochCell`] — the snapshot/epoch pair a reader loads is always
//!   consistent (the epoch names exactly the snapshot returned), and
//!   racing updaters serialise without losing a publication.
//! * Work stealing × drain — the per-shard queue topology: a job queued
//!   on one dispatcher's ring is executed exactly once even when the
//!   idle peer steals it, and both dispatchers exit only after the
//!   drained gate is quiescent with every ring empty.
#![cfg(loom)]

use ferrotcam_serve::queue::BoundedQueue;
use ferrotcam_serve::{Admission, AdmissionClass, DrainGate, EpochCell, RatePolicy};
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

/// Two producers race to push distinct values; the parent then drains.
/// Every pushed value must come out exactly once.
#[test]
fn queue_no_lost_or_duplicated_tickets() {
    loom::model(|| {
        let q = Arc::new(BoundedQueue::new(2));
        let handles: Vec<_> = (0..2u32)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.push(p).is_ok())
            })
            .collect();
        let accepted: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Capacity 2 with 2 producers: both pushes must land.
        assert!(accepted.iter().all(|&a| a), "push refused below capacity");
        let mut seen = [false; 2];
        while let Some(v) = q.pop() {
            let v = v as usize;
            assert!(!seen[v], "value {v} popped twice");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "value lost in the ring");
        assert!(q.is_empty());
    });
}

/// A full ring rejects the excess push and hands the value back; the
/// rejected value is the producer's own (no swap with a queued one).
/// Two producers race for the single remaining slot.
///
/// An earlier revision of this model ran a capacity-1 ring and caught
/// a real soundness hole: with one slot, "filled by ticket 0"
/// (`seq = 1`) collides with "freed for ticket 1" (`head + capacity =
/// 1`), so both racing pushes succeeded and one value was silently
/// overwritten. `BoundedQueue::new` now rejects capacities below 2.
#[test]
fn queue_full_ring_rejects_without_corruption() {
    loom::model(|| {
        let q = Arc::new(BoundedQueue::new(2));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || match q2.push(1u32) {
            Ok(()) => None,
            Err(v) => Some(v),
        });
        let mine = match q.push(2u32) {
            Ok(()) => None,
            Err(v) => Some(v),
        };
        let theirs = t.join().unwrap();
        // Exactly one of the two racing pushes fits the last slot.
        match (mine, theirs) {
            (None, Some(v)) => assert_eq!(v, 1, "producer got someone else's value back"),
            (Some(v), None) => assert_eq!(v, 2, "producer got someone else's value back"),
            other => panic!("expected exactly one accepted push, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(0), "FIFO violated");
        let second = q.pop().expect("winning push queued");
        assert!(second == 1 || second == 2);
        assert_eq!(q.pop(), None);
    });
}

/// Concurrent producer and consumer on a ring mid-lap: the consumer
/// sees either nothing or exactly the pushed value, never garbage.
#[test]
fn queue_producer_consumer_handoff() {
    loom::model(|| {
        let q = Arc::new(BoundedQueue::new(2));
        q.push(10u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || q2.push(20u32).unwrap());
        let first = q.pop().expect("pre-filled value is poppable");
        assert_eq!(first, 10, "FIFO violated");
        producer.join().unwrap();
        assert_eq!(q.pop(), Some(20));
        assert_eq!(q.pop(), None);
    });
}

/// The accept/drain race: a client races `try_accept` against the
/// dispatcher's `begin_drain` + quiescence poll. If the dispatcher ever
/// observes quiescence, the client's request must be either already
/// completed or refused — an accept landing after the dispatcher exits
/// would be a lost request.
#[test]
fn drain_never_strands_an_accepted_request() {
    loom::model(|| {
        let gate = Arc::new(DrainGate::new());
        let exited = Arc::new(AtomicUsize::new(0));
        let (g, e) = (Arc::clone(&gate), Arc::clone(&exited));
        let client = thread::spawn(move || {
            if g.try_accept() {
                // The dispatcher cannot have exited: quiescence requires
                // accepted == completed, and our complete() is pending.
                assert_eq!(
                    e.load(Ordering::SeqCst),
                    0,
                    "dispatcher exited with an accepted, uncompleted request"
                );
                g.complete();
                true
            } else {
                false
            }
        });
        gate.begin_drain();
        if gate.quiescent() {
            // Dispatcher would break its loop here.
            exited.store(1, Ordering::SeqCst);
        }
        let accepted = client.join().unwrap();
        // Whatever interleaving ran, the gate must settle quiescent:
        // the request was either refused or accepted-and-completed.
        assert!(gate.quiescent(), "accepted={accepted}, gate not quiescent");
    });
}

/// A retracted accept (queue-full shed path) must not hold quiescence
/// open: the dispatcher never waits for a request that was handed back.
#[test]
fn drain_retract_releases_quiescence() {
    loom::model(|| {
        let gate = Arc::new(DrainGate::new());
        let g = Arc::clone(&gate);
        let client = thread::spawn(move || {
            if g.try_accept() {
                // Simulate the enqueue failing: hand the slot back.
                g.retract();
            }
        });
        gate.begin_drain();
        client.join().unwrap();
        assert!(
            gate.quiescent(),
            "retracted accept still counted against quiescence"
        );
    });
}

/// Two submitters race one tenant's burst-1 bucket: the token must be
/// spent exactly once. A lost update inside the bucket map (or an
/// admit sneaking down the passthrough fast path despite the finite
/// default) would let both racing requests through.
#[test]
fn admission_burst_token_spent_exactly_once() {
    loom::model(|| {
        let t0 = std::time::Instant::now();
        let adm = Arc::new(Admission::new(
            RatePolicy::per_second(0.0, 1.0),
            RatePolicy::unlimited(),
            RatePolicy::unlimited(),
        ));
        let a2 = Arc::clone(&adm);
        let t = thread::spawn(move || a2.admit(1, AdmissionClass::Exact, t0).is_ok());
        let mine = adm.admit(1, AdmissionClass::Exact, t0).is_ok();
        let theirs = t.join().unwrap();
        assert!(
            mine ^ theirs,
            "burst-1 bucket admitted {} of 2 racing submits",
            usize::from(mine) + usize::from(theirs)
        );
    });
}

/// The passthrough flip: `set_policy` stores the flag with `Release`
/// *while still holding* the bucket lock, so the installer's own next
/// admit — and, after a join, anyone else's — must consult the bucket
/// it just installed. A racing admit may still ride the old fast path,
/// but it can never observe `passthrough == false` without also seeing
/// the bucket.
#[test]
fn admission_policy_install_is_immediately_enforced() {
    loom::model(|| {
        let t0 = std::time::Instant::now();
        let adm = Arc::new(Admission::new(
            RatePolicy::unlimited(),
            RatePolicy::unlimited(),
            RatePolicy::unlimited(),
        ));
        let a2 = Arc::clone(&adm);
        // A concurrent admit may win or lose the race with the install;
        // either way it must not panic or corrupt the map.
        let racer = thread::spawn(move || a2.admit(2, AdmissionClass::Exact, t0).is_ok());
        adm.set_policy(2, RatePolicy::per_second(0.0, 0.0));
        assert!(
            adm.admit(2, AdmissionClass::Exact, t0).is_err(),
            "installer's own admit bypassed the empty bucket it installed"
        );
        racer.join().unwrap();
        assert!(
            adm.admit(2, AdmissionClass::Exact, t0).is_err(),
            "post-join admit bypassed the installed policy"
        );
    });
}

/// The epoch/snapshot handoff behind online writes: a reader's
/// `load()` returns a *pair* — the epoch must name exactly the
/// snapshot it came with, under any interleaving with a publishing
/// writer. Here each update publishes `(v, v)` where `v` equals the
/// number of updates applied, so a consistent load has
/// `snap.0 == snap.1 == epoch`; a torn pair (epoch from one
/// publication, Arc from another) would break the equality.
#[test]
fn epoch_cell_pairs_are_never_torn() {
    loom::model(|| {
        let cell = Arc::new(EpochCell::new((0u64, 0u64)));
        let c2 = Arc::clone(&cell);
        let writer = thread::spawn(move || {
            for v in 1..=2u64 {
                c2.update(|_| ((v, v), ()));
            }
        });
        let (snap, epoch) = cell.load();
        assert_eq!(snap.0, snap.1, "reader saw a torn snapshot: {snap:?}");
        assert_eq!(snap.0, epoch, "epoch does not name the loaded snapshot");
        writer.join().unwrap();
        let (fin, e) = cell.load();
        assert_eq!(*fin, (2, 2), "a publication was lost");
        assert_eq!(e, 2);
    });
}

/// Racing updaters serialise: both read-modify-write publications land,
/// none is lost, and the final epoch counts both.
#[test]
fn epoch_cell_racing_updates_both_land() {
    loom::model(|| {
        let cell = Arc::new(EpochCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || c2.update(|v| (v + 1, ())));
        cell.update(|v| (v + 1, ()));
        t.join().unwrap();
        let (snap, epoch) = cell.load();
        assert_eq!(*snap, 2, "an update was lost to the race");
        assert_eq!(epoch, 2);
    });
}

/// The per-shard dispatch topology under drain: one job sits on
/// dispatcher 0's ring while both dispatchers run the real exit
/// protocol (drain own ring, steal from the peer, exit only on
/// `quiescent() && all-empty`). The job must execute exactly once —
/// whether its owner or the stealing peer gets it — and neither
/// dispatcher may exit while it is still queued or in flight.
///
/// The service's idle loop spins (`yield_now` is a free scheduling
/// point), and an unbounded spin under DFS admits infinitely long
/// executions — the scheduler may lawfully starve the peer forever, so
/// the naive model diverges (observed past 30 GiB of schedule state).
/// Each dispatcher therefore gets a *round budget*: enough scan rounds
/// to guarantee the job is popped on every schedule (each dispatcher's
/// first round checks both rings), with the clean-exit safety assert —
/// quiescence implies the job already completed — checked on the exit
/// path itself. Budget exhaustion models scheduler starvation, not a
/// protocol exit, so it carries no assert.
#[test]
fn work_stealing_drain_executes_every_job_exactly_once() {
    loom::model(|| {
        let queues = Arc::new([BoundedQueue::new(2), BoundedQueue::new(2)]);
        let gate = Arc::new(DrainGate::new());
        let done = Arc::new(AtomicUsize::new(0));
        assert!(gate.try_accept(), "gate open before drain");
        queues[0].push(7u32).unwrap();
        gate.begin_drain();
        let dispatchers: Vec<_> = (0..2usize)
            .map(|me| {
                let q = Arc::clone(&queues);
                let g = Arc::clone(&gate);
                let d = Arc::clone(&done);
                thread::spawn(move || {
                    for _ in 0..4 {
                        let job = q[me].pop().or_else(|| q[(me + 1) % 2].pop());
                        if let Some(v) = job {
                            assert_eq!(v, 7, "ring handed back a corrupted job");
                            d.fetch_add(1, Ordering::SeqCst);
                            g.complete();
                        } else if g.quiescent() && q.iter().all(|r| r.is_empty()) {
                            assert_eq!(
                                d.load(Ordering::SeqCst),
                                1,
                                "dispatcher exited with the job still queued or in flight"
                            );
                            return;
                        } else {
                            thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for h in dispatchers {
            h.join().unwrap();
        }
        // Whichever dispatcher won the pop — owner or stealer — the job
        // ran exactly once: both first rounds scan both rings, so it
        // cannot still be queued, and the ring cannot duplicate it.
        assert_eq!(done.load(Ordering::SeqCst), 1, "job executed exactly once");
        assert!(gate.quiescent());
    });
}

/// Two clients race the drain; accepted-but-uncompleted work always
/// blocks quiescence until the matching `complete` lands.
#[test]
fn drain_quiescence_counts_every_accept() {
    loom::model(|| {
        let gate = Arc::new(DrainGate::new());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let g = Arc::clone(&gate);
                thread::spawn(move || {
                    if g.try_accept() {
                        g.complete();
                        1usize
                    } else {
                        0
                    }
                })
            })
            .collect();
        gate.begin_drain();
        let accepted: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(accepted <= 2);
        assert!(gate.quiescent(), "{accepted} accepts, gate not quiescent");
        assert!(!gate.try_accept(), "drained gate accepted new work");
    });
}
