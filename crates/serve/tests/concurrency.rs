//! Serve-layer integration tests: concurrent submission integrity,
//! overload shedding, and energy-true accounting against `core::fom`.

use ferrotcam::fom::SearchMetrics;
use ferrotcam::{program_duration, DesignKind, RowWriteMetrics, TernaryWord};
use ferrotcam_serve::{Overloaded, RatePolicy, ServiceConfig, ShardedTcam, TcamService};
use std::sync::Arc;
use std::time::Duration;

fn bits(v: u64, width: usize) -> Vec<bool> {
    (0..width).rev().map(|b| (v >> b) & 1 == 1).collect()
}

fn metrics() -> SearchMetrics {
    // Table IV-shaped figures for the 1.5T1DG design; the exact values
    // are irrelevant to the invariants, only the accounting formula is.
    SearchMetrics {
        design: DesignKind::T15Dg,
        word_len: 16,
        latency_1step: 231e-12,
        latency_2step: Some(481e-12),
        energy_1step: 0.13e-15 * 16.0,
        energy_2step: Some(0.21e-15 * 16.0),
    }
}

fn table(rows: u64, shards: usize) -> ShardedTcam {
    let mut t = ShardedTcam::new(16, shards);
    for i in 0..rows {
        t.store(TernaryWord::from_u64(
            i.wrapping_mul(2654435761) & 0xFFFF,
            16,
        ));
    }
    t.attach_metrics(metrics());
    t
}

/// N threads submitting concurrently yield exactly N responses, each
/// correct for its own query — nothing lost, nothing duplicated.
#[test]
fn n_threads_yield_exactly_n_responses() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 64;

    let t = table(128, 4);
    let reference: Vec<TernaryWord> = (0..128u64)
        .map(|i| TernaryWord::from_u64(i.wrapping_mul(2654435761) & 0xFFFF, 16))
        .collect();
    let svc = TcamService::start(t, &ServiceConfig::default());
    let client = svc.client();

    let responses: Vec<(u64, ferrotcam_serve::SearchResponse)> = {
        let handles: Vec<_> = (0..THREADS)
            .map(|p| {
                let client = client.clone();
                std::thread::spawn(move || {
                    let mut out = Vec::with_capacity(PER_THREAD);
                    for i in 0..PER_THREAD {
                        let key = (p * PER_THREAD + i) as u64 & 0xFFFF;
                        let ticket = client
                            .submit(p as u32, bits(key, 16), None)
                            .expect("unlimited tenants, roomy queue");
                        out.push((key, ticket.wait().expect("no deadline configured")));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("no panics"))
            .collect()
    };

    assert_eq!(responses.len(), THREADS * PER_THREAD);
    // Each response matches the single-threaded reference for its query.
    let flat = {
        let mut f = ferrotcam::BehavioralTcam::new(16);
        for w in &reference {
            f.store(w.clone());
        }
        f
    };
    for (key, resp) in &responses {
        assert_eq!(
            &resp.matches,
            &flat.search_naive(&bits(*key, 16)),
            "key {key}"
        );
        assert_eq!(resp.rows_searched, 128);
    }

    let m = svc.drain();
    assert_eq!(m.submitted, (THREADS * PER_THREAD) as u64);
    assert_eq!(m.completed, (THREADS * PER_THREAD) as u64);
    assert_eq!(
        m.shed_queue_full + m.shed_rate_limited + m.shed_shutting_down,
        0
    );
    // Energy was attributed to every response.
    assert!(m.energy_total_j > 0.0);
    assert_eq!(m.wall_latency_ns.count, (THREADS * PER_THREAD) as u64);
}

/// Offered load beyond capacity is shed with typed errors; the queue
/// never grows beyond its bound and the service never panics.
#[test]
fn overload_sheds_and_queue_stays_bounded() {
    let cfg = ServiceConfig {
        queue_capacity: 16,
        max_batch: 4,
        ..ServiceConfig::default()
    };
    let svc = TcamService::start(table(512, 2), &cfg);
    let client = svc.client();

    let mut accepted = 0u64;
    let mut shed = 0u64;
    let mut tickets = Vec::new();
    // Blast far more submissions than a 16-deep queue can hold while
    // the dispatcher chews 512-row fan-out scans.
    for i in 0..2000u64 {
        match client.submit(0, bits(i & 0xFFFF, 16), None) {
            Ok(t) => {
                accepted += 1;
                tickets.push(t);
            }
            Err(Overloaded::QueueFull) => shed += 1,
            Err(e) => panic!("unexpected shed kind: {e}"),
        }
    }
    assert!(shed > 0, "a 16-deep queue must shed under a 2000-burst");
    let m = svc.drain();
    assert_eq!(m.completed, accepted);
    assert_eq!(m.shed_queue_full, shed);
    assert!(
        m.max_queue_depth <= cfg.queue_capacity,
        "queue depth {} exceeded bound {}",
        m.max_queue_depth,
        cfg.queue_capacity
    );
    for t in tickets {
        let _ = t.wait();
    }
}

/// Every response's energy equals the standalone `core::fom` figure
/// for the same query — rows × energy_avg(measured miss rate) — to
/// within 1e-9 relative.
#[test]
fn response_energy_matches_standalone_fom() {
    let m = metrics();
    for shards in [1usize, 2, 4] {
        let svc = TcamService::start(table(96, shards), &ServiceConfig::default());
        let client = svc.client();
        for q in 0..32u64 {
            let resp = client
                .submit(0, bits((q * 37) & 0xFFFF, 16), None)
                .unwrap()
                .wait()
                .expect("no deadline configured");
            let total = resp.matches.len() + resp.step1_misses + resp.step2_misses;
            assert_eq!(total, resp.rows_searched);
            let miss_rate = resp.step1_misses as f64 / total as f64;
            let standalone = total as f64 * m.energy_avg(miss_rate);
            let served = resp.energy_j.expect("metrics attached");
            let tol = 1e-9 * standalone.abs().max(1e-30);
            assert!(
                (served - standalone).abs() < tol,
                "shards={shards} q={q}: served {served:.12e} vs fom {standalone:.12e}"
            );
        }
        drop(svc);
    }
}

/// Rate limits shed per tenant without touching other tenants, and a
/// drain mid-traffic still answers everything accepted.
#[test]
fn tenant_isolation_under_concurrency() {
    let svc = TcamService::start(table(64, 2), &ServiceConfig::default());
    let client = svc.client();
    client.set_policy(9, RatePolicy::per_second(0.0, 4.0));

    let throttled = Arc::new(client.clone());
    let free = Arc::new(client);
    let h1 = std::thread::spawn({
        let c = Arc::clone(&throttled);
        move || {
            let mut ok = 0;
            let mut limited = 0;
            for i in 0..64u64 {
                match c.submit(9, bits(i, 16), None) {
                    Ok(t) => {
                        let _ = t.wait();
                        ok += 1;
                    }
                    Err(Overloaded::RateLimited { tenant: 9 }) => limited += 1,
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
            (ok, limited)
        }
    });
    let h2 = std::thread::spawn({
        let c = Arc::clone(&free);
        move || {
            for i in 0..64u64 {
                let _ = c.submit(1, bits(i, 16), None).unwrap().wait();
            }
        }
    });
    let (ok, limited) = h1.join().unwrap();
    h2.join().unwrap();
    assert_eq!(ok, 4, "burst of 4, zero refill");
    assert_eq!(limited, 60);
    let m = svc.drain();
    assert_eq!(m.completed, 64 + 4);
    assert_eq!(m.shed_rate_limited, 60);
}

/// The torn-word detector: one writer flips row 0 between all-zeros and
/// all-ones while searchers probe the half-and-half pattern 0x00FF. A
/// snapshot-consistent table can only ever hold one of the two extremes,
/// so the torn pattern must never match — a single hit would mean a
/// search observed a row mid-program. The sampled audit lane replays
/// against the same captured snapshot and must stay divergence-free.
#[test]
fn concurrent_writes_never_expose_a_torn_word() {
    const FLIPS: usize = 400;
    const PROBES: usize = 400;

    let mut t = ShardedTcam::new(16, 1);
    t.store(TernaryWord::from_u64(0, 16));
    t.attach_metrics(metrics());
    let cfg = ServiceConfig {
        backend: ferrotcam_serve::BackendKind::Behavioural,
        audit_period: 4,
        ..ServiceConfig::default()
    };
    let svc = TcamService::start(t, &cfg);
    let client = svc.client();

    let writer = std::thread::spawn({
        let c = client.clone();
        move || {
            for i in 0..FLIPS {
                let v = if i % 2 == 0 { 0xFFFFu64 } else { 0 };
                let ack = c
                    .submit_update(0, 0, TernaryWord::from_u64(v, 16))
                    .expect("unlimited write policy")
                    .wait()
                    .expect("writes are never deadline-shed");
                assert_eq!(ack.matches, vec![0], "update acks the addressed row");
            }
        }
    });
    let searchers: Vec<_> = (0..2)
        .map(|p| {
            let c = client.clone();
            std::thread::spawn(move || {
                for _ in 0..PROBES {
                    let resp = c
                        .submit(p + 1, bits(0x00FF, 16), None)
                        .expect("roomy queue")
                        .wait()
                        .expect("no deadline configured");
                    assert!(
                        resp.matches.is_empty(),
                        "torn word observed: half-zeros/half-ones probe matched {:?}",
                        resp.matches
                    );
                    assert_eq!(resp.rows_searched, 1);
                }
            })
        })
        .collect();
    writer.join().expect("writer");
    for s in searchers {
        s.join().expect("searcher");
    }

    let m = svc.drain();
    assert_eq!(m.completed, (FLIPS + 2 * PROBES) as u64);
    assert!(m.audit_sampled > 0, "audit lane sampled under writes");
    assert_eq!(
        m.audit_match_divergences, 0,
        "audit replays agree on the snapshot"
    );
    assert_eq!(m.audit_energy_divergences, 0);
}

/// With an already-expired deadline every *search* is shed at dispatch
/// (its ticket resolves `None`) while writes — which are never
/// deadline-shed — still land and still answer.
#[test]
fn expired_deadline_sheds_searches_but_never_writes() {
    let cfg = ServiceConfig {
        deadline: Some(Duration::ZERO),
        ..ServiceConfig::default()
    };
    let svc = TcamService::start(table(64, 2), &cfg);
    let client = svc.client();

    let mut searches = Vec::new();
    for i in 0..32u64 {
        searches.push(client.submit(0, bits(i, 16), None).unwrap());
    }
    let ack = client
        .submit_insert(0, TernaryWord::from_u64(0xBEEF, 16))
        .unwrap()
        .wait()
        .expect("writes bypass the deadline");
    assert_eq!(ack.matches.len(), 1, "insert acks the assigned slot");

    let mut shed = 0u64;
    for t in searches {
        if t.wait().is_none() {
            shed += 1;
        }
    }
    assert_eq!(shed, 32, "a zero deadline has always expired at dispatch");

    let m = svc.drain();
    assert_eq!(m.shed_deadline, 32);
    assert_eq!(m.completed, 1, "only the write completed");
}

/// Write responses are priced by the calibrated 3-step program: energy
/// is `energy_per_cell x width` and the modelled latency is the fixed
/// program schedule, independent of table size or shard count.
#[test]
fn write_responses_price_the_three_step_program() {
    let wm = RowWriteMetrics {
        design: DesignKind::T15Dg,
        word_len: 16,
        energy_per_cell: 0.3816e-15,
        energy: 0.3816e-15 * 16.0,
        latency: program_duration(),
    };
    let mut t = table(32, 2);
    t.attach_write_metrics(wm);
    let svc = TcamService::start(t, &ServiceConfig::default());
    let client = svc.client();

    let ins = client
        .submit_insert(0, TernaryWord::from_u64(0x1234, 16))
        .unwrap()
        .wait()
        .expect("answered");
    let energy = ins.energy_j.expect("write metrics attached");
    assert!(
        (energy - wm.energy).abs() < 1e-30,
        "3-step energy: {energy:e}"
    );

    let del = client
        .submit_delete(0, ins.matches[0])
        .unwrap()
        .wait()
        .expect("answered");
    assert_eq!(del.matches, vec![ins.matches[0]]);
    assert_eq!(del.energy_j, Some(wm.energy));

    let m = svc.drain();
    assert_eq!(m.completed, 2);
    let writes = (m.energy_total_j - 2.0 * wm.energy).abs();
    assert!(
        writes < 1e-28,
        "drained energy is the two programs: {writes:e}"
    );
}
