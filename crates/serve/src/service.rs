//! The associative-search service: submission, dispatch, drain.
//!
//! ```text
//!  clients ──submit──▶ [admission] ──▶ [bounded queue] ──▶ dispatcher
//!                          │shed                │shed          │
//!                          ▼                    ▼              ▼
//!                      Overloaded           Overloaded   batch planner
//!                                                             │
//!                                     ExecBackend (spice | behav) over shards
//!                                                             │
//!                                            merge + energy/latency attribution
//!                                                             │
//!                                  sampled audit replay ◀─────┤
//!                                                             │
//!                                                  tickets resolve ◀┘
//! ```
//!
//! One dispatcher thread owns the drain side of the queue. It pulls up
//! to `max_batch` requests, plans them into per-bank work lists,
//! executes them on the configured [`ExecBackend`] tier — the
//! circuit-order [`SpiceBackend`] or the bit-parallel
//! [`BehaviouralBackend`] — charges each query its modelled bank wait
//! (from `arch::sched`) and its silicon energy (from the attached
//! `core::fom` metrics), and resolves the per-request tickets.
//!
//! Queries answered on the behavioural tier pass through a **sampled
//! audit lane**: a deterministic 1-in-`audit_period` subset (SplitMix64
//! over an accept counter, so the sample is reproducible and
//! ungameable by arrival order) is replayed on the Spice tier. Match
//! sets must be bit-identical and energies must agree within
//! `audit_tolerance`; divergences are counted in [`ServiceMetrics`]
//! and emitted as typed `spice::trace` audit events.
//!
//! Shutdown is a *drain*: new submissions are refused with
//! [`Overloaded::ShuttingDown`] while every request already accepted
//! is still executed and answered. The accept counter and the drain
//! flag share one atomic word, so a request is either atomically
//! accepted before the drain (and will be answered) or refused — no
//! request can fall between.

use crate::admission::{Admission, Overloaded, RatePolicy, TenantId};
use crate::backend::{
    audit_compare, reference_search, BackendKind, BatchSpec, BehaviouralBackend, ExecBackend,
    ExecResult, SpiceBackend,
};
use crate::drain::DrainGate;
use crate::metrics::{MetricsCollector, ResponseSample, ServiceMetrics};
use crate::queue::BoundedQueue;
use crate::request::{AdmissionClass, RequestKind};
use crate::shard::{hash_packed, ShardedTcam};
use ferrotcam::{
    levels_to_query, row_distance, row_in_windows, ApproxHit, PackedQuery, PackedRows,
    SearchOutcome, SenseModel,
};
use ferrotcam_spice::parallel::default_jobs;
use ferrotcam_spice::trace::{self, TraceLevel};
use rand::split_mix64;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bounded submission-queue capacity (the backpressure horizon).
    pub queue_capacity: usize,
    /// Most queries the dispatcher coalesces into one batch; 0 means
    /// the backend's preferred batch size.
    pub max_batch: usize,
    /// Worker threads for the per-bank batch execution; 0 means the
    /// `spice::parallel` default (`FERROTCAM_JOBS` or the core count).
    pub jobs: usize,
    /// Rate policy for tenants without an explicit one (exact traffic).
    pub default_policy: RatePolicy,
    /// Rate policy for a tenant's *approximate* traffic (threshold /
    /// top-k / range) when no explicit class policy was installed.
    /// Approximate queries drive every row fully in parallel — no
    /// early termination — so they budget separately by default.
    pub approx_policy: RatePolicy,
    /// Override for the modelled per-bank busy time (s); defaults to
    /// the attached metrics' two-step latency, else 1 ns.
    pub t_bank: Option<f64>,
    /// Which execution tier answers queries.
    pub backend: BackendKind,
    /// Audit lane sampling period for behavioural queries: on average
    /// one in `audit_period` accepted queries is replayed on the Spice
    /// tier. 0 disables the lane.
    pub audit_period: u64,
    /// Relative energy-agreement bound the audit lane enforces.
    pub audit_tolerance: f64,
    /// Seed of the deterministic audit sampler.
    pub audit_seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            max_batch: 64,
            jobs: 0,
            default_policy: RatePolicy::unlimited(),
            approx_policy: RatePolicy::unlimited(),
            t_bank: None,
            backend: BackendKind::Spice,
            audit_period: 10_000,
            audit_tolerance: 1e-9,
            audit_seed: 0xfe77_0ca3_a0d1_7001,
        }
    }
}

/// A resolved search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResponse {
    /// What this response answers.
    pub kind: RequestKind,
    /// Matching rows as global slot ids, ascending.
    pub matches: Vec<usize>,
    /// Ranked `(distance, row)` hits for threshold and top-k requests,
    /// best-first with ties toward the lowest row; empty otherwise.
    pub hits: Vec<ApproxHit>,
    /// Rows early-terminated after step 1.
    pub step1_misses: usize,
    /// Rows that survived step 1 but missed in step 2.
    pub step2_misses: usize,
    /// Rows scanned to answer this query.
    pub rows_searched: usize,
    /// Silicon energy this query burned (J); `None` without metrics.
    pub energy_j: Option<f64>,
    /// Modelled silicon latency: bank wait + bank busy time (s).
    pub model_latency_s: f64,
    /// Wall-clock submit→response latency (ns).
    pub wall_latency_ns: u64,
}

/// Handle to one in-flight request.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<SearchResponse>,
}

impl Ticket {
    /// Block until the response arrives. Every accepted request is
    /// answered, even across a drain.
    ///
    /// # Panics
    /// Panics if the service was torn down without drain (a bug — the
    /// service's `Drop` drains).
    #[must_use]
    pub fn wait(self) -> SearchResponse {
        self.rx
            .recv()
            .expect("dispatcher answers every accepted request")
    }

    /// Non-blocking poll.
    #[must_use]
    pub fn try_wait(&self) -> Option<SearchResponse> {
        self.rx.try_recv().ok()
    }
}

/// One accepted request travelling through the queue. `tx: None` is a
/// fire-and-forget submission: the search still runs and is accounted,
/// but no response object is built or delivered (open-loop load).
#[derive(Debug)]
struct Job {
    query: PackedQuery,
    kind: RequestKind,
    shard: Option<usize>,
    enqueued: Instant,
    tx: Option<mpsc::Sender<SearchResponse>>,
}

/// Shared state between clients and the dispatcher.
#[derive(Debug)]
struct Inner {
    table: ShardedTcam,
    queue: BoundedQueue<Job>,
    admission: Admission,
    metrics: MetricsCollector,
    /// Drain flag + accepted/completed request accounting.
    gate: DrainGate,
    max_batch: usize,
    jobs: usize,
    t_bank: f64,
    /// Circuit-grounded sense-time model (from the attached metrics'
    /// one-step latency): feeds the batch planner's per-kind cost and
    /// the audit lane's sense-classified threshold reference.
    sense: Option<SenseModel>,
    /// Per-shard packed snapshot for the audit lane's scalar replay:
    /// straight `row_distance` / `row_in_windows` walks stay
    /// independent of the block-scan kernels' masking and bounds but
    /// are cheap enough to run inline on the dispatcher thread.
    audit_packed: Vec<PackedRows>,
    backend_kind: BackendKind,
    spice: SpiceBackend,
    behav: Option<BehaviouralBackend>,
    audit_period: u64,
    audit_tolerance: f64,
    audit_seed: u64,
}

impl Inner {
    fn backend(&self) -> &dyn ExecBackend {
        match &self.behav {
            Some(b) if self.backend_kind == BackendKind::Behavioural => b,
            _ => &self.spice,
        }
    }
}

/// Cloneable client handle: submit requests, read metrics.
#[derive(Debug, Clone)]
pub struct ServiceClient {
    inner: Arc<Inner>,
}

impl ServiceClient {
    /// Submit a query. `shard: None` fans out over every bank and
    /// merges; `Some(s)` pins the query to bank `s` (key-partitioned
    /// tables — see [`ServiceClient::submit_routed`]).
    ///
    /// # Errors
    /// Typed [`Overloaded`] sheds: draining, tenant throttled, or the
    /// bounded queue is full. Sheds are counted in the metrics.
    ///
    /// # Panics
    /// Panics on query-width mismatch or out-of-range shard
    /// (programmer errors, consistent with the core layer).
    pub fn submit(
        &self,
        tenant: TenantId,
        query: Vec<bool>,
        shard: Option<usize>,
    ) -> Result<Ticket, Overloaded> {
        self.submit_packed(tenant, PackedQuery::from_bits(&query), shard)
    }

    /// [`Self::submit`] over an already bit-packed query — the
    /// allocation-light hot path (no `Vec<bool>` unpacking anywhere).
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit`].
    ///
    /// # Panics
    /// Panics on query-width mismatch or out-of-range shard.
    pub fn submit_packed(
        &self,
        tenant: TenantId,
        query: PackedQuery,
        shard: Option<usize>,
    ) -> Result<Ticket, Overloaded> {
        self.submit_kind(tenant, query, RequestKind::Exact, shard)
    }

    /// Submit any request kind over a packed query: exact match,
    /// Hamming [`RequestKind::Threshold`] / [`RequestKind::TopK`]
    /// search, or multi-bit [`RequestKind::Range`] match (the query
    /// then carries one 2-digit level per cell — see
    /// [`ServiceClient::submit_range`]).
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit`]; approximate kinds are
    /// admitted against the tenant's *approx* token bucket.
    ///
    /// # Panics
    /// Panics on query-width mismatch, out-of-range shard, or a range
    /// request against an odd-width table.
    pub fn submit_kind(
        &self,
        tenant: TenantId,
        query: PackedQuery,
        kind: RequestKind,
        shard: Option<usize>,
    ) -> Result<Ticket, Overloaded> {
        let (tx, rx) = mpsc::channel();
        self.enqueue(tenant, query, kind, shard, Some(tx))?;
        Ok(Ticket { rx })
    }

    /// All rows within Hamming distance `t` of `query` (wildcarded
    /// cells never mismatch), with per-row distances in the response's
    /// `hits`.
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit_kind`].
    pub fn submit_threshold(
        &self,
        tenant: TenantId,
        query: PackedQuery,
        t: u32,
        shard: Option<usize>,
    ) -> Result<Ticket, Overloaded> {
        self.submit_kind(tenant, query, RequestKind::Threshold { t }, shard)
    }

    /// The `k` nearest rows to `query` by masked Hamming distance,
    /// ties broken toward the lowest row id.
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit_kind`].
    pub fn submit_top_k(
        &self,
        tenant: TenantId,
        query: PackedQuery,
        k: usize,
        shard: Option<usize>,
    ) -> Result<Ticket, Overloaded> {
        self.submit_kind(tenant, query, RequestKind::TopK { k }, shard)
    }

    /// FeCAM-style range match: every row whose per-cell `[lo, hi]`
    /// windows all contain the corresponding query level (one 4-ary
    /// level per 2-digit cell).
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit_kind`].
    ///
    /// # Panics
    /// Panics if a level exceeds 3 or `levels` does not cover the
    /// table width (one level per two digits).
    pub fn submit_range(
        &self,
        tenant: TenantId,
        levels: &[u8],
        shard: Option<usize>,
    ) -> Result<Ticket, Overloaded> {
        self.submit_kind(tenant, levels_to_query(levels), RequestKind::Range, shard)
    }

    /// Fire-and-forget submission: the query runs, is fully accounted
    /// in metrics and the audit lane, but no response is delivered.
    /// This is the open-loop load-generation path — it skips the
    /// per-request channel entirely.
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit`].
    ///
    /// # Panics
    /// Panics on query-width mismatch or out-of-range shard.
    pub fn submit_noreply(
        &self,
        tenant: TenantId,
        query: PackedQuery,
        shard: Option<usize>,
    ) -> Result<(), Overloaded> {
        self.enqueue(tenant, query, RequestKind::Exact, shard, None)
    }

    /// [`Self::submit_noreply`] for any request kind (open-loop
    /// approximate load).
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit_kind`].
    pub fn submit_noreply_kind(
        &self,
        tenant: TenantId,
        query: PackedQuery,
        kind: RequestKind,
        shard: Option<usize>,
    ) -> Result<(), Overloaded> {
        self.enqueue(tenant, query, kind, shard, None)
    }

    fn enqueue(
        &self,
        tenant: TenantId,
        query: PackedQuery,
        kind: RequestKind,
        shard: Option<usize>,
        tx: Option<mpsc::Sender<SearchResponse>>,
    ) -> Result<(), Overloaded> {
        let inner = &*self.inner;
        assert_eq!(query.width(), inner.table.width(), "query width mismatch");
        if let Some(s) = shard {
            assert!(s < inner.table.shard_count(), "shard {s} out of range");
        }
        if kind == RequestKind::Range {
            assert!(
                inner.table.width().is_multiple_of(2),
                "range queries need an even word width"
            );
        }
        let now = Instant::now();
        if let Err(e) = inner.admission.admit(tenant, kind.class(), now) {
            inner.metrics.on_shed(e, kind);
            return Err(e);
        }
        // Accept atomically against the drain flag: either this bumps
        // the accepted count before the drain begins (the dispatcher
        // will then wait for it) or the service is already draining.
        if !inner.gate.try_accept() {
            inner.metrics.on_shed(Overloaded::ShuttingDown, kind);
            return Err(Overloaded::ShuttingDown);
        }
        let job = Job {
            query,
            kind,
            shard,
            enqueued: now,
            tx,
        };
        if inner.queue.push(job).is_err() {
            // Give the acceptance back before reporting the shed.
            inner.gate.retract();
            inner.metrics.on_shed(Overloaded::QueueFull, kind);
            return Err(Overloaded::QueueFull);
        }
        inner.metrics.on_submit(inner.queue.len());
        Ok(())
    }

    /// Submit a key-partitioned query: the shard is chosen by the
    /// table's deterministic hash route.
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit`].
    pub fn submit_routed(&self, tenant: TenantId, query: Vec<bool>) -> Result<Ticket, Overloaded> {
        self.submit_packed_routed(tenant, PackedQuery::from_bits(&query))
    }

    /// [`Self::submit_routed`] over a packed query: routed by
    /// [`ShardedTcam::route_packed`], which hashes the packed words
    /// directly (identical route to the boolean path).
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit`].
    pub fn submit_packed_routed(
        &self,
        tenant: TenantId,
        query: PackedQuery,
    ) -> Result<Ticket, Overloaded> {
        let shard = self.inner.table.route_packed(&query);
        self.submit_packed(tenant, query, Some(shard))
    }

    /// Install a per-tenant rate policy for *exact* traffic.
    pub fn set_policy(&self, tenant: TenantId, policy: RatePolicy) {
        self.inner.admission.set_policy(tenant, policy);
    }

    /// Install a per-tenant rate policy for one admission class
    /// (exact vs approximate traffic budget independently).
    pub fn set_class_policy(&self, tenant: TenantId, class: AdmissionClass, policy: RatePolicy) {
        self.inner.admission.set_class_policy(tenant, class, policy);
    }

    /// Snapshot the service metrics.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        self.inner.metrics.snapshot(self.inner.queue.len())
    }

    /// The served table (shape and attached metrics).
    #[must_use]
    pub fn table(&self) -> &ShardedTcam {
        &self.inner.table
    }

    /// The execution tier this service answers on.
    #[must_use]
    pub fn backend(&self) -> BackendKind {
        self.inner.backend_kind
    }
}

/// The running service: owns the dispatcher thread.
#[derive(Debug)]
pub struct TcamService {
    inner: Arc<Inner>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl TcamService {
    /// Start serving `table` under `config`; spawns the dispatcher.
    /// A behavioural-tier service transposes the table into bit-sliced
    /// match planes here, once.
    ///
    /// # Panics
    /// Panics if the dispatcher thread cannot be spawned.
    #[must_use]
    pub fn start(table: ShardedTcam, config: &ServiceConfig) -> Self {
        let t_bank = config
            .t_bank
            .or_else(|| table.model_latency())
            .unwrap_or(1e-9);
        let jobs = if config.jobs == 0 {
            default_jobs()
        } else {
            config.jobs
        };
        let behav =
            (config.backend == BackendKind::Behavioural).then(|| BehaviouralBackend::build(&table));
        let max_batch = if config.max_batch == 0 {
            match &behav {
                Some(b) => b.preferred_batch(),
                None => SpiceBackend.preferred_batch(),
            }
        } else {
            config.max_batch
        };
        let sense = table
            .metrics()
            .map(|m| SenseModel::analytic(m.latency_1step));
        let audit_packed = (0..table.shard_count())
            .map(|s| {
                let mut p = PackedRows::new(table.width());
                for row in table.shard(s).rows() {
                    p.push(row);
                }
                p
            })
            .collect();
        let inner = Arc::new(Inner {
            table,
            queue: BoundedQueue::new(config.queue_capacity),
            admission: Admission::new(config.default_policy, config.approx_policy),
            metrics: MetricsCollector::new(),
            gate: DrainGate::new(),
            max_batch: max_batch.max(1),
            jobs,
            t_bank,
            sense,
            audit_packed,
            backend_kind: config.backend,
            spice: SpiceBackend,
            behav,
            audit_period: config.audit_period,
            audit_tolerance: config.audit_tolerance,
            audit_seed: config.audit_seed,
        });
        let worker_inner = Arc::clone(&inner);
        let worker = std::thread::Builder::new()
            .name("ferrotcam-serve".into())
            .spawn(move || dispatch_loop(&worker_inner))
            .expect("spawn dispatcher");
        Self {
            inner,
            worker: Some(worker),
        }
    }

    /// A cloneable client handle.
    #[must_use]
    pub fn client(&self) -> ServiceClient {
        ServiceClient {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Snapshot the service metrics.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        self.inner.metrics.snapshot(self.inner.queue.len())
    }

    /// Graceful shutdown: refuse new work, answer everything already
    /// accepted, stop the dispatcher, and return the final metrics.
    #[must_use]
    pub fn drain(mut self) -> ServiceMetrics {
        self.begin_drain_and_join();
        self.inner.metrics.snapshot(self.inner.queue.len())
    }

    fn begin_drain_and_join(&mut self) {
        self.inner.gate.begin_drain();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for TcamService {
    fn drop(&mut self) {
        self.begin_drain_and_join();
    }
}

/// Dispatcher main loop: coalesce, execute, answer; exit only when
/// draining and every accepted request has been answered.
fn dispatch_loop(inner: &Inner) {
    // The audit sampler's own monotone counter: advancing it per
    // *accepted behavioural job* makes the 1-in-`period` sample
    // deterministic for a given seed, independent of batching.
    let mut audit_counter: u64 = 0;
    // One batch buffer for the dispatcher's lifetime: `execute_batch`
    // drains it in place, so the hot loop allocates nothing per
    // iteration (the analyzer's hot-path-alloc rule keeps it that way).
    let mut batch: Vec<Job> = Vec::with_capacity(inner.max_batch);
    loop {
        inner.queue.drain_into(&mut batch, inner.max_batch);
        if batch.is_empty() {
            if inner.gate.quiescent() && inner.queue.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_micros(20));
            continue;
        }
        execute_batch(inner, &mut batch, &mut audit_counter);
    }
}

/// Per-kind bank-occupancy multiplier for the batch planner. With a
/// sense-time model attached, a threshold query's bank time is its
/// sense time (high thresholds sense late, low ones early) and a range
/// query senses at the one-mismatch discharge point; exact and top-k
/// queries keep the two-step unit cost. Clamped so a degenerate model
/// can never starve or flood the schedule.
fn kind_cost(kind: RequestKind, sense: Option<&SenseModel>, t_bank: f64) -> f64 {
    let Some(model) = sense else {
        return 1.0;
    };
    if t_bank <= 0.0 {
        return 1.0;
    }
    match kind {
        RequestKind::Exact | RequestKind::TopK { .. } => 1.0,
        RequestKind::Threshold { t } => (model.sense_time(t) / t_bank).clamp(0.05, 4.0),
        RequestKind::Range => (model.discharge_time(1) / t_bank).clamp(0.05, 4.0),
    }
}

/// Run one batch: plan per-bank work, execute on the configured tier,
/// model the bank schedule, attribute energy, audit a sample, resolve
/// tickets. Drains `jobs` in place so the dispatcher's batch buffer is
/// reused across iterations.
fn execute_batch(inner: &Inner, jobs: &mut Vec<Job>, audit_counter: &mut u64) {
    let tracing = trace::level() != TraceLevel::Off;
    let _span = tracing.then(|| trace::span("serve.batch"));
    let backend = inner.backend();

    // Split the Sync part (queries/kinds/targets) from the send side
    // (tickets) so the worker pool only ever sees the former.
    let targets: Vec<Option<usize>> = jobs.iter().map(|j| j.shard).collect();
    let queries: Vec<PackedQuery> = jobs.iter().map(|j| j.query.clone()).collect();
    let kinds: Vec<RequestKind> = jobs.iter().map(|j| j.kind).collect();
    let costs: Vec<f64> = kinds
        .iter()
        .map(|&k| kind_cost(k, inner.sense.as_ref(), inner.t_bank))
        .collect();
    let spec = BatchSpec {
        queries: &queries,
        kinds: &kinds,
        targets: &targets,
        costs: &costs,
    };

    let ExecResult {
        mut outcomes,
        hits: mut all_hits,
        per_job_latency_s,
        sched,
    } = backend.execute(&inner.table, &spec, inner.jobs, inner.t_bank);
    inner.metrics.on_batch(jobs.len(), &sched);

    // One clock read for the whole batch: per-job wall latency is pure
    // arithmetic against it.
    let now = Instant::now();
    let audit = backend.kind() == BackendKind::Behavioural && inner.audit_period > 0;
    let mut samples: Vec<ResponseSample> = Vec::with_capacity(jobs.len());
    for (j, job) in jobs.drain(..).enumerate() {
        let outcome = std::mem::replace(&mut outcomes[j], SearchOutcome::empty());
        let hits = std::mem::take(&mut all_hits[j]);
        let rows_searched = match job.shard {
            Some(s) => inner.table.shard(s).len(),
            None => inner.table.len(),
        };
        let energy_j = inner.table.energy_of_kind(job.kind, &outcome);
        let wall_latency_ns = u64::try_from(now.saturating_duration_since(job.enqueued).as_nanos())
            .unwrap_or(u64::MAX);
        if tracing {
            trace::sample("serve.queue_wait_ns", wall_latency_ns);
        }
        if audit {
            // Deterministic 1-in-`period` sample over the accept
            // counter (SplitMix64-whitened so the sample is spread, not
            // periodic in arrival order).
            let mut state = inner.audit_seed ^ *audit_counter;
            *audit_counter += 1;
            if split_mix64(&mut state).is_multiple_of(inner.audit_period) {
                audit_replay(inner, &job, &outcome, &hits, energy_j);
            }
        }
        samples.push(ResponseSample {
            kind: job.kind,
            wall_ns: wall_latency_ns,
            model_latency_s: Some(per_job_latency_s[j]),
            rows: rows_searched,
            step1_misses: outcome.step1_misses,
            step2_misses: outcome.step2_misses,
            matches: outcome.matches.len(),
            energy_j,
        });
        if let Some(tx) = job.tx {
            // A dropped ticket is fine — the work was still done and
            // accounted; only the delivery is skipped.
            let _ = tx.send(SearchResponse {
                kind: job.kind,
                matches: outcome.matches,
                hits,
                step1_misses: outcome.step1_misses,
                step2_misses: outcome.step2_misses,
                rows_searched,
                energy_j,
                model_latency_s: per_job_latency_s[j],
                wall_latency_ns,
            });
        }
        inner.gate.complete();
    }
    inner.metrics.on_responses(&samples);
}

/// The audit lane's sense-classified threshold reference: every row is
/// accepted iff its modelled match-line discharge time falls *after*
/// the threshold's sense point — the decision the analog sense
/// amplifier makes, computed from the SPICE-fitted [`SenseModel`].
/// Nominally this agrees bit-for-bit with the digital `d <= t` rule
/// (the sense point sits strictly between the `t` and `t+1` discharge
/// curves), so any disagreement is a served-kernel bug.
fn sense_reference(
    inner: &Inner,
    job: &Job,
    t: u32,
    model: &SenseModel,
) -> (SearchOutcome, Vec<ApproxHit>) {
    let sense_at = model.sense_time(t);
    let mut outcome = SearchOutcome::empty();
    let mut hits = Vec::new();
    for s in audit_shards(inner, job) {
        let p = &inner.audit_packed[s];
        for l in 0..p.rows() {
            let d = row_distance(p, l, &job.query);
            if model.discharge_time(d) > sense_at {
                let g = inner.table.global_row(s, l);
                outcome.matches.push(g);
                hits.push(ApproxHit {
                    row: g,
                    distance: d,
                });
            } else {
                outcome.step1_misses += 1;
            }
        }
    }
    outcome.matches.sort_unstable();
    hits.sort_unstable();
    (outcome, hits)
}

/// The shards a job's audit replay must cover.
fn audit_shards(inner: &Inner, job: &Job) -> Vec<usize> {
    match job.shard {
        Some(s) => vec![s],
        None => (0..inner.table.shard_count()).collect(),
    }
}

/// Scalar packed reference for the audit lane's approximate kinds:
/// straight per-row [`row_distance`] / [`row_in_windows`] walks over
/// the shard snapshots — no block masking, no bound bookkeeping —
/// producing the same outcome shape the serving tiers converge to.
fn packed_reference(inner: &Inner, job: &Job) -> (SearchOutcome, Vec<ApproxHit>) {
    let mut outcome = SearchOutcome::empty();
    let mut hits = Vec::new();
    match job.kind {
        RequestKind::Exact => {
            return reference_search(&inner.table, job.kind, &job.query, job.shard);
        }
        RequestKind::Threshold { t } => {
            for s in audit_shards(inner, job) {
                let p = &inner.audit_packed[s];
                for l in 0..p.rows() {
                    let d = row_distance(p, l, &job.query);
                    if d <= t {
                        let g = inner.table.global_row(s, l);
                        outcome.matches.push(g);
                        hits.push(ApproxHit {
                            row: g,
                            distance: d,
                        });
                    } else {
                        outcome.step1_misses += 1;
                    }
                }
            }
            outcome.matches.sort_unstable();
            hits.sort_unstable();
        }
        RequestKind::TopK { k } => {
            let mut examined = 0usize;
            for s in audit_shards(inner, job) {
                let p = &inner.audit_packed[s];
                examined += p.rows();
                for l in 0..p.rows() {
                    hits.push(ApproxHit {
                        row: inner.table.global_row(s, l),
                        distance: row_distance(p, l, &job.query),
                    });
                }
            }
            hits.sort_unstable();
            hits.truncate(k);
            outcome.matches = hits.iter().map(|h| h.row).collect();
            outcome.matches.sort_unstable();
            outcome.step1_misses = examined - hits.len();
        }
        RequestKind::Range => {
            for s in audit_shards(inner, job) {
                let p = &inner.audit_packed[s];
                for l in 0..p.rows() {
                    if row_in_windows(p, l, &job.query) {
                        outcome.matches.push(inner.table.global_row(s, l));
                    } else {
                        outcome.step1_misses += 1;
                    }
                }
            }
            outcome.matches.sort_unstable();
        }
    }
    (outcome, hits)
}

/// Replay one sampled behavioural answer on the reference tier and
/// record the verdict. Exact requests replay through the naive
/// row-order kernel ([`reference_search`]); top-k / range requests
/// replay through the scalar packed reference; threshold requests
/// replay through the sense-time classifier when a model is attached,
/// grounding the audit in the circuit's analog decision.
fn audit_replay(
    inner: &Inner,
    job: &Job,
    fast: &SearchOutcome,
    fast_hits: &[ApproxHit],
    fast_energy: Option<f64>,
) {
    let (reference, ref_hits) = match (job.kind, inner.sense.as_ref()) {
        (RequestKind::Threshold { t }, Some(model)) => sense_reference(inner, job, t, model),
        _ => packed_reference(inner, job),
    };
    let ref_energy = inner.table.energy_of_kind(job.kind, &reference);
    let verdict = audit_compare(
        fast,
        fast_hits,
        fast_energy,
        &reference,
        &ref_hits,
        ref_energy,
        inner.audit_tolerance,
    );
    inner.metrics.on_audit(&verdict, job.kind);
    if !verdict.clean() {
        let lane = if verdict.match_divergence {
            "match"
        } else {
            "energy"
        };
        trace::audit_divergence(
            lane,
            hash_packed(&job.query),
            verdict.energy_rel,
            verdict.detail.clone().unwrap_or_default(),
        );
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use ferrotcam::TernaryWord;

    fn table(rows: u64, shards: usize) -> ShardedTcam {
        let mut t = ShardedTcam::new(8, shards);
        for i in 0..rows {
            t.store(TernaryWord::from_u64(i * 3, 8));
        }
        t
    }

    fn bits(v: u64) -> Vec<bool> {
        (0..8).rev().map(|b| (v >> b) & 1 == 1).collect()
    }

    #[test]
    fn single_query_roundtrip() {
        let svc = TcamService::start(table(16, 2), &ServiceConfig::default());
        let client = svc.client();
        let resp = client.submit(0, bits(9), None).unwrap().wait();
        // 9 = 3*3 is stored; fan-out scans all 16 rows.
        assert!(!resp.matches.is_empty());
        assert_eq!(resp.rows_searched, 16);
        assert!(resp.model_latency_s > 0.0);
        let m = svc.drain();
        assert_eq!(m.completed, 1);
        assert_eq!(m.submitted, 1);
    }

    #[test]
    fn fanout_equals_unsharded_search() {
        let t = table(32, 4);
        let reference = {
            let mut r = ferrotcam::BehavioralTcam::new(8);
            for i in 0..32u64 {
                r.store(TernaryWord::from_u64(i * 3, 8));
            }
            r
        };
        let svc = TcamService::start(t, &ServiceConfig::default());
        let client = svc.client();
        for v in [0u64, 3, 30, 93, 200] {
            let resp = client.submit(0, bits(v), None).unwrap().wait();
            assert_eq!(resp.matches, reference.search_naive(&bits(v)), "v={v}");
        }
        drop(svc);
    }

    #[test]
    fn backends_answer_identically() {
        for backend in [BackendKind::Spice, BackendKind::Behavioural] {
            let config = ServiceConfig {
                backend,
                ..ServiceConfig::default()
            };
            let svc = TcamService::start(table(32, 4), &config);
            let client = svc.client();
            assert_eq!(client.backend(), backend);
            let reference = {
                let mut r = ferrotcam::BehavioralTcam::new(8);
                for i in 0..32u64 {
                    r.store(TernaryWord::from_u64(i * 3, 8));
                }
                r
            };
            for v in [0u64, 3, 30, 93, 200, 255] {
                let resp = client.submit(0, bits(v), None).unwrap().wait();
                let flat = reference.search(&bits(v));
                assert_eq!(resp.matches, flat.matches, "{backend} v={v}");
                assert_eq!(resp.step1_misses, flat.step1_misses, "{backend} v={v}");
                assert_eq!(resp.step2_misses, flat.step2_misses, "{backend} v={v}");
            }
            drop(svc);
        }
    }

    #[test]
    fn audit_lane_samples_and_stays_clean() {
        // Period 1 audits *every* behavioural query; any kernel bug
        // would surface as a divergence here.
        let config = ServiceConfig {
            backend: BackendKind::Behavioural,
            audit_period: 1,
            ..ServiceConfig::default()
        };
        let svc = TcamService::start(table(48, 3), &config);
        let client = svc.client();
        for v in 0..64u64 {
            let _ = client.submit(0, bits(v * 5), None).unwrap().wait();
        }
        let m = svc.drain();
        assert_eq!(m.completed, 64);
        assert_eq!(m.audit_sampled, 64, "period-1 lane replays everything");
        assert_eq!(m.audit_match_divergences, 0);
        assert_eq!(m.audit_energy_divergences, 0);
        assert!(m.audit_worst_energy_rel <= 1e-9);
    }

    #[test]
    fn noreply_submissions_are_counted_not_answered() {
        let config = ServiceConfig {
            backend: BackendKind::Behavioural,
            audit_period: 0,
            ..ServiceConfig::default()
        };
        let svc = TcamService::start(table(16, 2), &config);
        let client = svc.client();
        for v in 0..32u64 {
            client
                .submit_noreply(0, PackedQuery::from_bits(&bits(v * 7)), None)
                .unwrap();
        }
        let m = svc.drain();
        assert_eq!(m.completed, 32);
        assert_eq!(m.audit_sampled, 0, "audit lane disabled at period 0");
        assert_eq!(m.rows_searched, 32 * 16);
    }

    #[test]
    fn drain_answers_everything_accepted() {
        let svc = TcamService::start(table(8, 2), &ServiceConfig::default());
        let client = svc.client();
        let tickets: Vec<Ticket> = (0..50)
            .map(|i| client.submit(0, bits(i % 256), None).unwrap())
            .collect();
        let m = svc.drain();
        assert_eq!(m.completed, 50);
        for t in tickets {
            let _ = t.wait(); // must not hang or panic
        }
        // After drain, new submissions shed as ShuttingDown.
        assert_eq!(
            client.submit(0, bits(1), None).unwrap_err(),
            Overloaded::ShuttingDown
        );
        assert_eq!(client.metrics().shed_shutting_down, 1);
    }

    #[test]
    fn rate_limited_tenant_sheds_but_others_proceed() {
        let svc = TcamService::start(table(8, 1), &ServiceConfig::default());
        let client = svc.client();
        client.set_policy(1, RatePolicy::per_second(0.0, 1.0));
        assert!(client.submit(1, bits(0), None).is_ok());
        assert_eq!(
            client.submit(1, bits(0), None).unwrap_err(),
            Overloaded::RateLimited { tenant: 1 }
        );
        assert!(client.submit(2, bits(0), None).is_ok());
        let m = svc.drain();
        assert_eq!(m.shed_rate_limited, 1);
        assert_eq!(m.completed, 2);
    }

    #[test]
    fn partitioned_submit_scans_one_shard() {
        let mut t = ShardedTcam::new(8, 4);
        // Key-partitioned fill: every word lives on its hash shard.
        for i in 0..64u64 {
            let word = TernaryWord::from_u64(i, 8);
            let shard = t.route(&bits(i));
            t.store_in(shard, word);
        }
        let svc = TcamService::start(t, &ServiceConfig::default());
        let client = svc.client();
        for i in [0u64, 17, 42, 63] {
            let resp = client.submit_routed(0, bits(i)).unwrap().wait();
            assert_eq!(resp.matches.len(), 1, "key {i} found on its shard");
            assert!(resp.rows_searched < 64, "scans one shard, not the table");
        }
        drop(svc);
    }

    #[test]
    fn packed_routed_equals_boolean_routed() {
        let mut t = ShardedTcam::new(8, 4);
        for i in 0..64u64 {
            let shard = t.route(&bits(i));
            t.store_in(shard, TernaryWord::from_u64(i, 8));
        }
        let svc = TcamService::start(t, &ServiceConfig::default());
        let client = svc.client();
        for i in [0u64, 17, 42, 63] {
            let a = client.submit_routed(0, bits(i)).unwrap().wait();
            let b = client
                .submit_packed_routed(0, PackedQuery::from_bits(&bits(i)))
                .unwrap()
                .wait();
            assert_eq!(a.matches, b.matches, "key {i}");
            assert_eq!(a.rows_searched, b.rows_searched, "same shard routed");
        }
        drop(svc);
    }
}
