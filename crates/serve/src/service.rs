//! The associative-search service: submission, dispatch, writes, drain.
//!
//! ```text
//!  clients ──submit──▶ [admission] ──▶ [queue 0] ──▶ dispatcher 0 ─┐
//!                          │shed       [queue 1] ──▶ dispatcher 1 ─┤ work-
//!                          ▼              ⋮               ⋮        │ stealing
//!                      Overloaded      [queue n] ──▶ dispatcher n ─┘
//!                                                         │
//!                                 writes → LiveTable::apply (epoch bump)
//!                                                         │
//!                                     capture SnapView ───┤
//!                                                         │
//!                            deadline shed ◀──────────────┤
//!                                                         │
//!                             ExecBackend (spice | behav) over the view
//!                                                         │
//!                            merge + energy/latency attribution
//!                                                         │
//!                            sampled audit replay (same view) ◀─┤
//!                                                         │
//!                                              tickets resolve ◀┘
//! ```
//!
//! Dispatch is **per-shard**: one bounded queue and one dispatcher
//! thread per shard. Pinned (key-routed) queries and row-addressed
//! writes land on their shard's queue; fan-out queries round-robin.
//! An idle dispatcher **steals** from its peers' queues before
//! sleeping, so a hot shard's backlog spreads over the whole pool. A
//! dispatcher pulls up to `max_batch` requests, applies the batch's
//! writes through [`crate::shard::LiveTable`] (publishing one fresh
//! epoch per touched shard), then captures a [`crate::shard::SnapView`]
//! and executes every search of the batch against that immutable view
//! — a search can observe the table before or after any write, never a
//! torn word. Writes are priced by the calibrated 3-step program
//! ([`ferrotcam::RowWriteMetrics`]); searches charge their modelled
//! bank wait (from `arch::sched`) and silicon energy (from the
//! attached `core::fom` metrics).
//!
//! With a [`ServiceConfig::deadline`] configured, queries whose
//! submit-to-dispatch wait already exceeds it are **shed at dispatch**
//! instead of executed: their tickets resolve to `None` and the drop is
//! counted per kind in [`ServiceMetrics::shed_deadline`]. Writes are
//! never deadline-shed — an accepted mutation must land.
//!
//! Queries answered on the behavioural tier pass through a **sampled
//! audit lane**: a deterministic 1-in-`audit_period` subset (SplitMix64
//! over a per-dispatcher accept counter, so the sample is reproducible
//! and ungameable by arrival order) is replayed on the Spice tier
//! *against the same captured view* the fast tier answered from —
//! exact under concurrent writes by construction. Match sets must be
//! bit-identical and energies must agree within `audit_tolerance`;
//! divergences are counted in [`ServiceMetrics`] and emitted as typed
//! `spice::trace` audit events.
//!
//! Shutdown is a *drain*: new submissions are refused with
//! [`Overloaded::ShuttingDown`] while every request already accepted
//! is still executed and answered. The accept counter and the drain
//! flag share one atomic word, so a request is either atomically
//! accepted before the drain (and will be answered) or refused — no
//! request can fall between.

use crate::admission::{Admission, Overloaded, RatePolicy, TenantId};
use crate::backend::{
    audit_compare, reference_search, BackendKind, BatchSpec, BehaviouralBackend, ExecBackend,
    ExecResult, SpiceBackend,
};
use crate::drain::DrainGate;
use crate::metrics::{MetricsCollector, ResponseSample, ServiceMetrics};
use crate::queue::BoundedQueue;
use crate::request::{AdmissionClass, RequestKind};
use crate::shard::{hash_packed, LiveTable, ShardedTcam, SnapView, WriteAck, WriteOp};
use crate::sync::{self, AtomicUsize, Ordering};
use ferrotcam::{
    levels_to_query, program_duration, row_distance, row_in_windows, ApproxHit, PackedQuery,
    SearchOutcome, SenseModel, TernaryWord,
};
use ferrotcam_spice::parallel::default_jobs;
use ferrotcam_spice::trace::{self, TraceLevel};
use rand::split_mix64;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Total bounded submission capacity (the backpressure horizon),
    /// split evenly across the per-shard rings — so the aggregate
    /// buffering, and with it the worst-case queue wait, does not grow
    /// with the shard count. Each ring gets at least 2 slots.
    pub queue_capacity: usize,
    /// Most queries the dispatcher coalesces into one batch; 0 means
    /// the backend's preferred batch size.
    pub max_batch: usize,
    /// Worker threads for the per-bank batch execution; 0 means the
    /// `spice::parallel` default (`FERROTCAM_JOBS` or the core count).
    pub jobs: usize,
    /// Rate policy for tenants without an explicit one (exact traffic).
    pub default_policy: RatePolicy,
    /// Rate policy for a tenant's *approximate* traffic (threshold /
    /// top-k / range) when no explicit class policy was installed.
    /// Approximate queries drive every row fully in parallel — no
    /// early termination — so they budget separately by default.
    pub approx_policy: RatePolicy,
    /// Rate policy for a tenant's *write* traffic (insert / delete /
    /// update) when no explicit class policy was installed, so a
    /// bulk-load cannot starve the search path.
    pub write_policy: RatePolicy,
    /// Queries whose submit-to-dispatch wait already exceeds this are
    /// shed at dispatch (their SLO has expired; answering late helps
    /// nobody and steals bank time from queries that can still make
    /// it). `None` disables shedding; writes are never deadline-shed.
    pub deadline: Option<Duration>,
    /// Override for the modelled per-bank busy time (s); defaults to
    /// the attached metrics' two-step latency, else 1 ns.
    pub t_bank: Option<f64>,
    /// Which execution tier answers queries.
    pub backend: BackendKind,
    /// Audit lane sampling period for behavioural queries: on average
    /// one in `audit_period` accepted queries is replayed on the Spice
    /// tier. 0 disables the lane.
    pub audit_period: u64,
    /// Relative energy-agreement bound the audit lane enforces.
    pub audit_tolerance: f64,
    /// Seed of the deterministic audit sampler.
    pub audit_seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            max_batch: 64,
            jobs: 0,
            default_policy: RatePolicy::unlimited(),
            approx_policy: RatePolicy::unlimited(),
            write_policy: RatePolicy::unlimited(),
            deadline: None,
            t_bank: None,
            backend: BackendKind::Spice,
            audit_period: 10_000,
            audit_tolerance: 1e-9,
            audit_seed: 0xfe77_0ca3_a0d1_7001,
        }
    }
}

/// A resolved request. For write kinds, `matches` carries the affected
/// global row (the assigned slot for an insert, the addressed row for
/// an applied update/delete) and is empty when the addressed row was
/// out of range; the search counters are zero.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResponse {
    /// What this response answers.
    pub kind: RequestKind,
    /// Matching rows as global slot ids, ascending.
    pub matches: Vec<usize>,
    /// Ranked `(distance, row)` hits for threshold and top-k requests,
    /// best-first with ties toward the lowest row; empty otherwise.
    pub hits: Vec<ApproxHit>,
    /// Rows early-terminated after step 1.
    pub step1_misses: usize,
    /// Rows that survived step 1 but missed in step 2.
    pub step2_misses: usize,
    /// Rows scanned to answer this query.
    pub rows_searched: usize,
    /// Silicon energy this query burned (J); `None` without metrics.
    pub energy_j: Option<f64>,
    /// Modelled silicon latency: bank wait + bank busy time (s).
    pub model_latency_s: f64,
    /// Wall-clock submit→response latency (ns).
    pub wall_latency_ns: u64,
}

/// Handle to one in-flight request.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<SearchResponse>,
}

impl Ticket {
    /// Block until the request resolves. `None` means the query was
    /// deadline-shed at dispatch ([`ServiceConfig::deadline`]) — the
    /// request was accepted and accounted, but its SLO expired before a
    /// dispatcher reached it, so no answer was computed. Every accepted
    /// request resolves one way or the other, even across a drain.
    #[must_use]
    pub fn wait(self) -> Option<SearchResponse> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll.
    #[must_use]
    pub fn try_wait(&self) -> Option<SearchResponse> {
        self.rx.try_recv().ok()
    }
}

/// One accepted request travelling through the queue. `tx: None` is a
/// fire-and-forget submission: the search still runs and is accounted,
/// but no response object is built or delivered (open-loop load).
#[derive(Debug)]
struct Job {
    query: PackedQuery,
    kind: RequestKind,
    /// Write kinds carry their row payload here (insert/update word);
    /// searches carry `None`.
    word: Option<TernaryWord>,
    shard: Option<usize>,
    enqueued: Instant,
    tx: Option<mpsc::Sender<SearchResponse>>,
}

/// Shared state between clients and the dispatchers.
#[derive(Debug)]
struct Inner {
    table: LiveTable,
    /// One bounded queue per shard: pinned queries and row-addressed
    /// writes land on their shard's queue, fan-out queries round-robin.
    /// Any dispatcher may drain any queue (work stealing), which the
    /// MPMC queue is built for.
    queues: Vec<BoundedQueue<Job>>,
    /// Round-robin cursor spreading fan-out queries over the queues.
    /// Pure load-balancing state — no ordering is derived from it.
    route_counter: AtomicUsize,
    admission: Admission,
    metrics: MetricsCollector,
    /// Drain flag + accepted/completed request accounting, global
    /// across every queue and dispatcher.
    gate: DrainGate,
    max_batch: usize,
    jobs: usize,
    t_bank: f64,
    /// Queries older than this at dispatch are shed unanswered.
    deadline: Option<Duration>,
    /// Circuit-grounded sense-time model (from the attached metrics'
    /// one-step latency): feeds the batch planner's per-kind cost and
    /// the audit lane's sense-classified threshold reference.
    sense: Option<SenseModel>,
    backend_kind: BackendKind,
    spice: SpiceBackend,
    behav: BehaviouralBackend,
    audit_period: u64,
    audit_tolerance: f64,
    audit_seed: u64,
}

impl Inner {
    fn backend(&self) -> &dyn ExecBackend {
        match self.backend_kind {
            BackendKind::Behavioural => &self.behav,
            BackendKind::Spice => &self.spice,
        }
    }

    /// Total backlog across every per-shard queue.
    fn queue_depth(&self) -> usize {
        self.queues.iter().map(BoundedQueue::len).sum()
    }
}

/// Cloneable client handle: submit requests, read metrics.
#[derive(Debug, Clone)]
pub struct ServiceClient {
    inner: Arc<Inner>,
}

impl ServiceClient {
    /// Submit a query. `shard: None` fans out over every bank and
    /// merges; `Some(s)` pins the query to bank `s` (key-partitioned
    /// tables — see [`ServiceClient::submit_routed`]).
    ///
    /// # Errors
    /// Typed [`Overloaded`] sheds: draining, tenant throttled, or the
    /// bounded queue is full. Sheds are counted in the metrics.
    ///
    /// # Panics
    /// Panics on query-width mismatch or out-of-range shard
    /// (programmer errors, consistent with the core layer).
    pub fn submit(
        &self,
        tenant: TenantId,
        query: Vec<bool>,
        shard: Option<usize>,
    ) -> Result<Ticket, Overloaded> {
        self.submit_packed(tenant, PackedQuery::from_bits(&query), shard)
    }

    /// [`Self::submit`] over an already bit-packed query — the
    /// allocation-light hot path (no `Vec<bool>` unpacking anywhere).
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit`].
    ///
    /// # Panics
    /// Panics on query-width mismatch or out-of-range shard.
    pub fn submit_packed(
        &self,
        tenant: TenantId,
        query: PackedQuery,
        shard: Option<usize>,
    ) -> Result<Ticket, Overloaded> {
        self.submit_kind(tenant, query, RequestKind::Exact, shard)
    }

    /// Submit any request kind over a packed query: exact match,
    /// Hamming [`RequestKind::Threshold`] / [`RequestKind::TopK`]
    /// search, or multi-bit [`RequestKind::Range`] match (the query
    /// then carries one 2-digit level per cell — see
    /// [`ServiceClient::submit_range`]).
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit`]; approximate kinds are
    /// admitted against the tenant's *approx* token bucket.
    ///
    /// # Panics
    /// Panics on query-width mismatch, out-of-range shard, or a range
    /// request against an odd-width table.
    pub fn submit_kind(
        &self,
        tenant: TenantId,
        query: PackedQuery,
        kind: RequestKind,
        shard: Option<usize>,
    ) -> Result<Ticket, Overloaded> {
        let (tx, rx) = mpsc::channel();
        self.enqueue(tenant, query, kind, None, shard, Some(tx))?;
        Ok(Ticket { rx })
    }

    /// Program `word` into a fresh row of the least-loaded shard. The
    /// response's `matches` carries the assigned global slot id.
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit`]; writes are admitted
    /// against the tenant's *write* token bucket.
    ///
    /// # Panics
    /// Panics on a word-width mismatch.
    pub fn submit_insert(&self, tenant: TenantId, word: TernaryWord) -> Result<Ticket, Overloaded> {
        self.submit_write(tenant, RequestKind::Insert, word, None)
    }

    /// Re-program global row `row` with `word`. The response's
    /// `matches` echoes the row when applied and is empty when the row
    /// was out of range.
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit_insert`].
    ///
    /// # Panics
    /// Panics on a word-width mismatch.
    pub fn submit_update(
        &self,
        tenant: TenantId,
        row: usize,
        word: TernaryWord,
    ) -> Result<Ticket, Overloaded> {
        self.submit_write(tenant, RequestKind::Update { row }, word, Some(row))
    }

    /// Retire global row `row` (slot-reuse delete: the shard's last
    /// local row moves into the freed slot, so *that* row's global id
    /// changes). The response's `matches` echoes the row when applied
    /// and is empty when it was out of range.
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit_insert`].
    pub fn submit_delete(&self, tenant: TenantId, row: usize) -> Result<Ticket, Overloaded> {
        let (tx, rx) = mpsc::channel();
        self.enqueue_write(
            tenant,
            RequestKind::Delete { row },
            None,
            Some(row),
            Some(tx),
        )?;
        Ok(Ticket { rx })
    }

    fn submit_write(
        &self,
        tenant: TenantId,
        kind: RequestKind,
        word: TernaryWord,
        row: Option<usize>,
    ) -> Result<Ticket, Overloaded> {
        let (tx, rx) = mpsc::channel();
        self.enqueue_write(tenant, kind, Some(word), row, Some(tx))?;
        Ok(Ticket { rx })
    }

    /// Fire-and-forget insert (open-loop write load).
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit_insert`].
    pub fn submit_insert_noreply(
        &self,
        tenant: TenantId,
        word: TernaryWord,
    ) -> Result<(), Overloaded> {
        self.enqueue_write(tenant, RequestKind::Insert, Some(word), None, None)
    }

    /// Fire-and-forget update (open-loop write load).
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit_insert`].
    pub fn submit_update_noreply(
        &self,
        tenant: TenantId,
        row: usize,
        word: TernaryWord,
    ) -> Result<(), Overloaded> {
        self.enqueue_write(
            tenant,
            RequestKind::Update { row },
            Some(word),
            Some(row),
            None,
        )
    }

    /// Fire-and-forget delete (open-loop write load).
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit_insert`].
    pub fn submit_delete_noreply(&self, tenant: TenantId, row: usize) -> Result<(), Overloaded> {
        self.enqueue_write(tenant, RequestKind::Delete { row }, None, Some(row), None)
    }

    /// Shared write-submission path: row-addressed writes queue on
    /// their row's shard (dispatch affinity — any dispatcher may still
    /// steal them), inserts round-robin like fan-out queries.
    fn enqueue_write(
        &self,
        tenant: TenantId,
        kind: RequestKind,
        word: Option<TernaryWord>,
        row: Option<usize>,
        tx: Option<mpsc::Sender<SearchResponse>>,
    ) -> Result<(), Overloaded> {
        let shard = row.map(|r| r % self.inner.table.shard_count());
        self.enqueue(tenant, PackedQuery::from_bits(&[]), kind, word, shard, tx)
    }

    /// All rows within Hamming distance `t` of `query` (wildcarded
    /// cells never mismatch), with per-row distances in the response's
    /// `hits`.
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit_kind`].
    pub fn submit_threshold(
        &self,
        tenant: TenantId,
        query: PackedQuery,
        t: u32,
        shard: Option<usize>,
    ) -> Result<Ticket, Overloaded> {
        self.submit_kind(tenant, query, RequestKind::Threshold { t }, shard)
    }

    /// The `k` nearest rows to `query` by masked Hamming distance,
    /// ties broken toward the lowest row id.
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit_kind`].
    pub fn submit_top_k(
        &self,
        tenant: TenantId,
        query: PackedQuery,
        k: usize,
        shard: Option<usize>,
    ) -> Result<Ticket, Overloaded> {
        self.submit_kind(tenant, query, RequestKind::TopK { k }, shard)
    }

    /// FeCAM-style range match: every row whose per-cell `[lo, hi]`
    /// windows all contain the corresponding query level (one 4-ary
    /// level per 2-digit cell).
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit_kind`].
    ///
    /// # Panics
    /// Panics if a level exceeds 3 or `levels` does not cover the
    /// table width (one level per two digits).
    pub fn submit_range(
        &self,
        tenant: TenantId,
        levels: &[u8],
        shard: Option<usize>,
    ) -> Result<Ticket, Overloaded> {
        self.submit_kind(tenant, levels_to_query(levels), RequestKind::Range, shard)
    }

    /// Fire-and-forget submission: the query runs, is fully accounted
    /// in metrics and the audit lane, but no response is delivered.
    /// This is the open-loop load-generation path — it skips the
    /// per-request channel entirely.
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit`].
    ///
    /// # Panics
    /// Panics on query-width mismatch or out-of-range shard.
    pub fn submit_noreply(
        &self,
        tenant: TenantId,
        query: PackedQuery,
        shard: Option<usize>,
    ) -> Result<(), Overloaded> {
        self.enqueue(tenant, query, RequestKind::Exact, None, shard, None)
    }

    /// [`Self::submit_noreply`] for any request kind (open-loop
    /// approximate load).
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit_kind`].
    pub fn submit_noreply_kind(
        &self,
        tenant: TenantId,
        query: PackedQuery,
        kind: RequestKind,
        shard: Option<usize>,
    ) -> Result<(), Overloaded> {
        self.enqueue(tenant, query, kind, None, shard, None)
    }

    fn enqueue(
        &self,
        tenant: TenantId,
        query: PackedQuery,
        kind: RequestKind,
        word: Option<TernaryWord>,
        shard: Option<usize>,
        tx: Option<mpsc::Sender<SearchResponse>>,
    ) -> Result<(), Overloaded> {
        let inner = &*self.inner;
        if kind.is_write() {
            if let Some(w) = &word {
                assert_eq!(w.len(), inner.table.width(), "word width mismatch");
            }
        } else {
            assert_eq!(query.width(), inner.table.width(), "query width mismatch");
        }
        if let Some(s) = shard {
            assert!(s < inner.table.shard_count(), "shard {s} out of range");
        }
        if kind == RequestKind::Range {
            assert!(
                inner.table.width().is_multiple_of(2),
                "range queries need an even word width"
            );
        }
        let now = Instant::now();
        if let Err(e) = inner.admission.admit(tenant, kind.class(), now) {
            inner.metrics.on_shed(e, kind);
            return Err(e);
        }
        // Accept atomically against the drain flag: either this bumps
        // the accepted count before the drain begins (a dispatcher
        // will then wait for it) or the service is already draining.
        if !inner.gate.try_accept() {
            inner.metrics.on_shed(Overloaded::ShuttingDown, kind);
            return Err(Overloaded::ShuttingDown);
        }
        // Pinned work queues on its shard's dispatcher; fan-out work
        // round-robins so no single dispatcher owns the merge load.
        let qi = shard.unwrap_or_else(|| {
            inner.route_counter.fetch_add(1, Ordering::Relaxed) // ordering: route-relaxed
                % inner.queues.len()
        });
        let job = Job {
            query,
            kind,
            word,
            shard,
            enqueued: now,
            tx,
        };
        if inner.queues[qi].push(job).is_err() {
            // Give the acceptance back before reporting the shed.
            inner.gate.retract();
            inner.metrics.on_shed(Overloaded::QueueFull, kind);
            return Err(Overloaded::QueueFull);
        }
        inner.metrics.on_submit(inner.queues[qi].len());
        Ok(())
    }

    /// Submit a key-partitioned query: the shard is chosen by the
    /// table's deterministic hash route.
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit`].
    pub fn submit_routed(&self, tenant: TenantId, query: Vec<bool>) -> Result<Ticket, Overloaded> {
        self.submit_packed_routed(tenant, PackedQuery::from_bits(&query))
    }

    /// [`Self::submit_routed`] over a packed query: routed by
    /// [`ShardedTcam::route_packed`], which hashes the packed words
    /// directly (identical route to the boolean path).
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit`].
    pub fn submit_packed_routed(
        &self,
        tenant: TenantId,
        query: PackedQuery,
    ) -> Result<Ticket, Overloaded> {
        let shard = self.inner.table.route_packed(&query);
        self.submit_packed(tenant, query, Some(shard))
    }

    /// The shard a key-partitioned packed query routes to.
    #[must_use]
    pub fn route_packed(&self, query: &PackedQuery) -> usize {
        self.inner.table.route_packed(query)
    }

    /// Served word width in digits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.inner.table.width()
    }

    /// Number of shards (and dispatchers).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.inner.table.shard_count()
    }

    /// Install a per-tenant rate policy for *exact* traffic.
    pub fn set_policy(&self, tenant: TenantId, policy: RatePolicy) {
        self.inner.admission.set_policy(tenant, policy);
    }

    /// Install a per-tenant rate policy for one admission class
    /// (exact vs approximate traffic budget independently).
    pub fn set_class_policy(&self, tenant: TenantId, class: AdmissionClass, policy: RatePolicy) {
        self.inner.admission.set_class_policy(tenant, class, policy);
    }

    /// Snapshot the service metrics.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        self.inner.metrics.snapshot(self.inner.queue_depth())
    }

    /// A consistent point-in-time view of the served table (shape,
    /// rows, attached metrics, per-shard epochs). The view is immutable
    /// — later writes publish new snapshots and never touch it.
    #[must_use]
    pub fn table(&self) -> SnapView {
        self.inner.table.snapshot()
    }

    /// The execution tier this service answers on.
    #[must_use]
    pub fn backend(&self) -> BackendKind {
        self.inner.backend_kind
    }
}

/// The running service: owns one dispatcher thread per shard.
#[derive(Debug)]
pub struct TcamService {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl TcamService {
    /// Start serving `table` under `config`; converts the table into
    /// its live (write-accepting) form and spawns one dispatcher per
    /// shard. Attach [`ferrotcam::RowWriteMetrics`] to the table first
    /// (via [`ShardedTcam::attach_write_metrics`]) to have writes
    /// priced by the calibrated 3-step program.
    ///
    /// # Panics
    /// Panics if a dispatcher thread cannot be spawned.
    #[must_use]
    pub fn start(table: ShardedTcam, config: &ServiceConfig) -> Self {
        let t_bank = config
            .t_bank
            .or_else(|| table.model_latency())
            .unwrap_or(1e-9);
        let jobs = if config.jobs == 0 {
            default_jobs()
        } else {
            config.jobs
        };
        let max_batch = if config.max_batch == 0 {
            match config.backend {
                BackendKind::Behavioural => BehaviouralBackend.preferred_batch(),
                BackendKind::Spice => SpiceBackend.preferred_batch(),
            }
        } else {
            config.max_batch
        };
        let sense = table
            .metrics()
            .map(|m| SenseModel::analytic(m.latency_1step));
        let shards = table.shard_count();
        let inner = Arc::new(Inner {
            table: LiveTable::from_sharded(&table),
            queues: (0..shards)
                .map(|_| BoundedQueue::new((config.queue_capacity / shards).max(2)))
                .collect(),
            route_counter: AtomicUsize::new(0),
            admission: Admission::new(
                config.default_policy,
                config.approx_policy,
                config.write_policy,
            ),
            metrics: MetricsCollector::new(),
            gate: DrainGate::new(),
            max_batch: max_batch.max(1),
            jobs,
            t_bank,
            deadline: config.deadline,
            sense,
            backend_kind: config.backend,
            spice: SpiceBackend,
            behav: BehaviouralBackend,
            audit_period: config.audit_period,
            audit_tolerance: config.audit_tolerance,
            audit_seed: config.audit_seed,
        });
        let workers = (0..shards)
            .map(|me| {
                let worker_inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("ferrotcam-serve-{me}"))
                    .spawn(move || dispatch_loop(&worker_inner, me))
                    .expect("spawn dispatcher")
            })
            .collect();
        Self { inner, workers }
    }

    /// A cloneable client handle.
    #[must_use]
    pub fn client(&self) -> ServiceClient {
        ServiceClient {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Snapshot the service metrics.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        self.inner.metrics.snapshot(self.inner.queue_depth())
    }

    /// Graceful shutdown: refuse new work, answer everything already
    /// accepted, stop every dispatcher, and return the final metrics.
    #[must_use]
    pub fn drain(mut self) -> ServiceMetrics {
        self.begin_drain_and_join();
        self.inner.metrics.snapshot(self.inner.queue_depth())
    }

    fn begin_drain_and_join(&mut self) {
        self.inner.gate.begin_drain();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for TcamService {
    fn drop(&mut self) {
        self.begin_drain_and_join();
    }
}

/// Dispatcher `me`'s main loop: drain the own queue first; when it is
/// empty, steal a batch from a peer's queue (cyclic scan starting at
/// the next shard, so thieves spread instead of convoying); execute;
/// exit only when draining and every accepted request has resolved.
fn dispatch_loop(inner: &Inner, me: usize) {
    // The audit sampler's per-dispatcher monotone counter: advancing it
    // per accepted behavioural job makes the 1-in-`period` sample
    // deterministic for a given seed, independent of batching and of
    // which queue the job was stolen from.
    let mut audit_counter: u64 = 0;
    // One batch buffer for the dispatcher's lifetime: `execute_batch`
    // drains it in place, so the hot loop allocates nothing per
    // iteration (the analyzer's hot-path-alloc rule keeps it that way).
    let mut batch: Vec<Job> = Vec::with_capacity(inner.max_batch);
    let n = inner.queues.len();
    loop {
        inner.queues[me].drain_into(&mut batch, inner.max_batch);
        if batch.is_empty() {
            // Work stealing: take a whole batch from the first
            // non-empty peer. The queue is MPMC, so concurrent thieves
            // are safe; at worst two dispatchers split one backlog.
            for off in 1..n {
                inner.queues[(me + off) % n].drain_into(&mut batch, inner.max_batch);
                if !batch.is_empty() {
                    break;
                }
            }
        }
        if batch.is_empty() {
            if inner.gate.quiescent() && inner.queues.iter().all(BoundedQueue::is_empty) {
                break;
            }
            sync::idle_wait();
            continue;
        }
        execute_batch(inner, me, &mut batch, &mut audit_counter);
    }
}

/// Per-kind bank-occupancy multiplier for the batch planner. With a
/// sense-time model attached, a threshold query's bank time is its
/// sense time (high thresholds sense late, low ones early) and a range
/// query senses at the one-mismatch discharge point; exact and top-k
/// queries keep the two-step unit cost. Clamped so a degenerate model
/// can never starve or flood the schedule.
fn kind_cost(kind: RequestKind, sense: Option<&SenseModel>, t_bank: f64) -> f64 {
    let Some(model) = sense else {
        return 1.0;
    };
    if t_bank <= 0.0 {
        return 1.0;
    }
    match kind {
        RequestKind::Exact | RequestKind::TopK { .. } => 1.0,
        RequestKind::Threshold { t } => (model.sense_time(t) / t_bank).clamp(0.05, 4.0),
        RequestKind::Range => (model.discharge_time(1) / t_bank).clamp(0.05, 4.0),
        // Writes never enter the search batch plan.
        _ => 1.0,
    }
}

/// Run one batch: apply its writes first (one epoch bump per touched
/// shard), capture a snapshot view, deadline-shed expired queries, plan
/// and execute the remaining searches on the configured tier against
/// that view, model the bank schedule, attribute energy, audit a
/// sample, resolve tickets. Drains `jobs` in place so the dispatcher's
/// batch buffer is reused across iterations.
///
/// Ordering: writes-before-searches within one batch is a valid
/// linearization — every job in the batch was accepted before any of
/// them executed, and searches then observe all of the batch's writes.
fn execute_batch(inner: &Inner, me: usize, jobs: &mut Vec<Job>, audit_counter: &mut u64) {
    let tracing = trace::level() != TraceLevel::Off;
    let _span = tracing.then(|| trace::span("serve.batch"));
    let backend = inner.backend();

    // Writes first, in batch order.
    let mut writes: Vec<Job> = Vec::new();
    let mut searches: Vec<Job> = Vec::new();
    for job in jobs.drain(..) {
        if job.kind.is_write() {
            writes.push(job);
        } else {
            searches.push(job);
        }
    }
    if !writes.is_empty() {
        apply_writes(inner, writes);
    }

    // Capture the view every search of this batch answers from. Taken
    // *after* the writes so the batch's own mutations are visible; an
    // in-flight search on another dispatcher keeps its own older view.
    let view = inner.table.snapshot();

    // Deadline shedding: a query whose SLO already expired in the
    // queue is dropped here, before it can occupy a bank.
    if let Some(deadline) = inner.deadline {
        let now = Instant::now();
        searches.retain(|job| {
            if now.saturating_duration_since(job.enqueued) <= deadline {
                return true;
            }
            inner.metrics.on_deadline_shed(job.kind);
            // Dropping `tx` unanswered resolves the ticket to `None`.
            inner.gate.complete();
            false
        });
    }
    if searches.is_empty() {
        return;
    }

    // Split the Sync part (queries/kinds/targets) from the send side
    // (tickets) so the worker pool only ever sees the former.
    let targets: Vec<Option<usize>> = searches.iter().map(|j| j.shard).collect();
    let queries: Vec<PackedQuery> = searches.iter().map(|j| j.query.clone()).collect();
    let kinds: Vec<RequestKind> = searches.iter().map(|j| j.kind).collect();
    let costs: Vec<f64> = kinds
        .iter()
        .map(|&k| kind_cost(k, inner.sense.as_ref(), inner.t_bank))
        .collect();
    let spec = BatchSpec {
        queries: &queries,
        kinds: &kinds,
        targets: &targets,
        costs: &costs,
    };

    let ExecResult {
        mut outcomes,
        hits: mut all_hits,
        per_job_latency_s,
        sched,
    } = backend.execute(&view, &spec, inner.jobs, inner.t_bank);
    inner.metrics.on_batch(searches.len(), &sched);

    // One clock read for the whole batch: per-job wall latency is pure
    // arithmetic against it.
    let now = Instant::now();
    let audit = backend.kind() == BackendKind::Behavioural && inner.audit_period > 0;
    let mut samples: Vec<ResponseSample> = Vec::with_capacity(searches.len());
    for (j, job) in searches.drain(..).enumerate() {
        let outcome = std::mem::replace(&mut outcomes[j], SearchOutcome::empty());
        let hits = std::mem::take(&mut all_hits[j]);
        let rows_searched = match job.shard {
            Some(s) => view.shard(s).rows(),
            None => view.len(),
        };
        let energy_j = view.energy_of_kind(job.kind, &outcome);
        let wall_latency_ns = u64::try_from(now.saturating_duration_since(job.enqueued).as_nanos())
            .unwrap_or(u64::MAX);
        if tracing {
            trace::sample("serve.queue_wait_ns", wall_latency_ns);
        }
        if audit {
            // Deterministic 1-in-`period` sample over the per-
            // dispatcher accept counter (SplitMix64-whitened so the
            // sample is spread, not periodic in arrival order; the
            // shard id folds in so dispatchers sample independently).
            let mut state = inner.audit_seed ^ ((me as u64) << 48) ^ *audit_counter;
            *audit_counter += 1;
            if split_mix64(&mut state).is_multiple_of(inner.audit_period) {
                audit_replay(inner, &view, &job, &outcome, &hits, energy_j);
            }
        }
        samples.push(ResponseSample {
            kind: job.kind,
            wall_ns: wall_latency_ns,
            model_latency_s: Some(per_job_latency_s[j]),
            rows: rows_searched,
            step1_misses: outcome.step1_misses,
            step2_misses: outcome.step2_misses,
            matches: outcome.matches.len(),
            energy_j,
        });
        if let Some(tx) = job.tx {
            // A dropped ticket is fine — the work was still done and
            // accounted; only the delivery is skipped.
            let _ = tx.send(SearchResponse {
                kind: job.kind,
                matches: outcome.matches,
                hits,
                step1_misses: outcome.step1_misses,
                step2_misses: outcome.step2_misses,
                rows_searched,
                energy_j,
                model_latency_s: per_job_latency_s[j],
                wall_latency_ns,
            });
        }
        inner.gate.complete();
    }
    inner.metrics.on_responses(&samples);
}

/// Commit one batch's writes through the live table and resolve their
/// tickets. Each write is priced by the calibrated 3-step program
/// (energy = per-cell write energy × width, latency = the program's
/// three phase windows) when [`ferrotcam::RowWriteMetrics`] are
/// attached; without metrics the latency falls back to the design's
/// nominal program duration and the energy is `None`, mirroring how
/// searches degrade without attached search metrics.
fn apply_writes(inner: &Inner, mut writes: Vec<Job>) {
    let ops: Vec<WriteOp> = writes
        .iter()
        .map(|job| match job.kind {
            RequestKind::Insert => {
                WriteOp::Insert(job.word.clone().expect("insert jobs carry their word"))
            }
            RequestKind::Update { row } => WriteOp::Update {
                row,
                word: job.word.clone().expect("update jobs carry their word"),
            },
            RequestKind::Delete { row } => WriteOp::Delete { row },
            _ => unreachable!("search kinds never reach the write path"),
        })
        .collect();
    let acks = inner.table.apply(&ops);
    let (energy_j, model_latency_s) = match inner.table.write_metrics() {
        Some(m) => (Some(m.energy), m.latency),
        None => (None, program_duration()),
    };
    let now = Instant::now();
    let mut samples: Vec<ResponseSample> = Vec::with_capacity(writes.len());
    for (job, ack) in writes.drain(..).zip(acks) {
        let matches = match ack {
            WriteAck::Inserted { row } => vec![row],
            WriteAck::Applied => match job.kind {
                RequestKind::Update { row } | RequestKind::Delete { row } => vec![row],
                _ => Vec::new(),
            },
            WriteAck::OutOfRange => Vec::new(),
        };
        let wall_latency_ns = u64::try_from(now.saturating_duration_since(job.enqueued).as_nanos())
            .unwrap_or(u64::MAX);
        samples.push(ResponseSample {
            kind: job.kind,
            wall_ns: wall_latency_ns,
            model_latency_s: Some(model_latency_s),
            rows: 0,
            step1_misses: 0,
            step2_misses: 0,
            matches: matches.len(),
            energy_j,
        });
        if let Some(tx) = job.tx {
            let _ = tx.send(SearchResponse {
                kind: job.kind,
                matches,
                hits: Vec::new(),
                step1_misses: 0,
                step2_misses: 0,
                rows_searched: 0,
                energy_j,
                model_latency_s,
                wall_latency_ns,
            });
        }
        inner.gate.complete();
    }
    inner.metrics.on_responses(&samples);
}

/// The audit lane's sense-classified threshold reference: every row is
/// accepted iff its modelled match-line discharge time falls *after*
/// the threshold's sense point — the decision the analog sense
/// amplifier makes, computed from the SPICE-fitted [`SenseModel`].
/// Nominally this agrees bit-for-bit with the digital `d <= t` rule
/// (the sense point sits strictly between the `t` and `t+1` discharge
/// curves), so any disagreement is a served-kernel bug.
fn sense_reference(
    view: &SnapView,
    job: &Job,
    t: u32,
    model: &SenseModel,
) -> (SearchOutcome, Vec<ApproxHit>) {
    let sense_at = model.sense_time(t);
    let mut outcome = SearchOutcome::empty();
    let mut hits = Vec::new();
    for s in audit_shards(view, job) {
        for (base, blk) in view.shard(s).blocks() {
            let p = blk.packed();
            for l in 0..p.rows() {
                let d = row_distance(p, l, &job.query);
                if model.discharge_time(d) > sense_at {
                    let g = view.global_row(s, base + l);
                    outcome.matches.push(g);
                    hits.push(ApproxHit {
                        row: g,
                        distance: d,
                    });
                } else {
                    outcome.step1_misses += 1;
                }
            }
        }
    }
    outcome.matches.sort_unstable();
    hits.sort_unstable();
    (outcome, hits)
}

/// The shards a job's audit replay must cover.
fn audit_shards(view: &SnapView, job: &Job) -> Vec<usize> {
    match job.shard {
        Some(s) => vec![s],
        None => (0..view.shard_count()).collect(),
    }
}

/// Scalar packed reference for the audit lane's approximate kinds:
/// straight per-row [`row_distance`] / [`row_in_windows`] walks over
/// the captured snapshot blocks — no block-scan masking, no bound
/// bookkeeping — producing the same outcome shape the serving tiers
/// converge to. Replaying against the batch's own view makes the lane
/// exact under concurrent writes: both sides answered from the same
/// immutable rows.
fn packed_reference(view: &SnapView, job: &Job) -> (SearchOutcome, Vec<ApproxHit>) {
    let mut outcome = SearchOutcome::empty();
    let mut hits = Vec::new();
    match job.kind {
        RequestKind::Threshold { t } => {
            for s in audit_shards(view, job) {
                for (base, blk) in view.shard(s).blocks() {
                    let p = blk.packed();
                    for l in 0..p.rows() {
                        let d = row_distance(p, l, &job.query);
                        if d <= t {
                            let g = view.global_row(s, base + l);
                            outcome.matches.push(g);
                            hits.push(ApproxHit {
                                row: g,
                                distance: d,
                            });
                        } else {
                            outcome.step1_misses += 1;
                        }
                    }
                }
            }
            outcome.matches.sort_unstable();
            hits.sort_unstable();
        }
        RequestKind::TopK { k } => {
            let mut examined = 0usize;
            for s in audit_shards(view, job) {
                for (base, blk) in view.shard(s).blocks() {
                    let p = blk.packed();
                    examined += p.rows();
                    for l in 0..p.rows() {
                        hits.push(ApproxHit {
                            row: view.global_row(s, base + l),
                            distance: row_distance(p, l, &job.query),
                        });
                    }
                }
            }
            hits.sort_unstable();
            hits.truncate(k);
            outcome.matches = hits.iter().map(|h| h.row).collect();
            outcome.matches.sort_unstable();
            outcome.step1_misses = examined - hits.len();
        }
        RequestKind::Range => {
            for s in audit_shards(view, job) {
                for (base, blk) in view.shard(s).blocks() {
                    let p = blk.packed();
                    for l in 0..p.rows() {
                        if row_in_windows(p, l, &job.query) {
                            outcome.matches.push(view.global_row(s, base + l));
                        } else {
                            outcome.step1_misses += 1;
                        }
                    }
                }
            }
            outcome.matches.sort_unstable();
        }
        // Exact replays through the naive row-order kernel; writes
        // never enter the audit lane.
        _ => {
            return reference_search(view, job.kind, &job.query, job.shard);
        }
    }
    (outcome, hits)
}

/// Replay one sampled behavioural answer on the reference tier and
/// record the verdict. Exact requests replay through the naive
/// row-order kernel ([`reference_search`]); top-k / range requests
/// replay through the scalar packed reference; threshold requests
/// replay through the sense-time classifier when a model is attached,
/// grounding the audit in the circuit's analog decision. All replays
/// run against the same captured view the fast tier answered from.
fn audit_replay(
    inner: &Inner,
    view: &SnapView,
    job: &Job,
    fast: &SearchOutcome,
    fast_hits: &[ApproxHit],
    fast_energy: Option<f64>,
) {
    let (reference, ref_hits) = match (job.kind, inner.sense.as_ref()) {
        (RequestKind::Threshold { t }, Some(model)) => sense_reference(view, job, t, model),
        _ => packed_reference(view, job),
    };
    let ref_energy = view.energy_of_kind(job.kind, &reference);
    let verdict = audit_compare(
        fast,
        fast_hits,
        fast_energy,
        &reference,
        &ref_hits,
        ref_energy,
        inner.audit_tolerance,
    );
    inner.metrics.on_audit(&verdict, job.kind);
    if !verdict.clean() {
        let lane = if verdict.match_divergence {
            "match"
        } else {
            "energy"
        };
        trace::audit_divergence(
            lane,
            hash_packed(&job.query),
            verdict.energy_rel,
            verdict.detail.clone().unwrap_or_default(),
        );
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use ferrotcam::TernaryWord;

    fn table(rows: u64, shards: usize) -> ShardedTcam {
        let mut t = ShardedTcam::new(8, shards);
        for i in 0..rows {
            t.store(TernaryWord::from_u64(i * 3, 8));
        }
        t
    }

    fn bits(v: u64) -> Vec<bool> {
        (0..8).rev().map(|b| (v >> b) & 1 == 1).collect()
    }

    /// `Ticket::wait` for tests without a deadline configured: every
    /// accepted request is answered.
    fn answered(t: Ticket) -> SearchResponse {
        t.wait()
            .expect("no deadline configured; every ticket answers")
    }

    #[test]
    fn single_query_roundtrip() {
        let svc = TcamService::start(table(16, 2), &ServiceConfig::default());
        let client = svc.client();
        let resp = answered(client.submit(0, bits(9), None).unwrap());
        // 9 = 3*3 is stored; fan-out scans all 16 rows.
        assert!(!resp.matches.is_empty());
        assert_eq!(resp.rows_searched, 16);
        assert!(resp.model_latency_s > 0.0);
        let m = svc.drain();
        assert_eq!(m.completed, 1);
        assert_eq!(m.submitted, 1);
    }

    #[test]
    fn fanout_equals_unsharded_search() {
        let t = table(32, 4);
        let reference = {
            let mut r = ferrotcam::BehavioralTcam::new(8);
            for i in 0..32u64 {
                r.store(TernaryWord::from_u64(i * 3, 8));
            }
            r
        };
        let svc = TcamService::start(t, &ServiceConfig::default());
        let client = svc.client();
        for v in [0u64, 3, 30, 93, 200] {
            let resp = answered(client.submit(0, bits(v), None).unwrap());
            assert_eq!(resp.matches, reference.search_naive(&bits(v)), "v={v}");
        }
        drop(svc);
    }

    #[test]
    fn backends_answer_identically() {
        for backend in [BackendKind::Spice, BackendKind::Behavioural] {
            let config = ServiceConfig {
                backend,
                ..ServiceConfig::default()
            };
            let svc = TcamService::start(table(32, 4), &config);
            let client = svc.client();
            assert_eq!(client.backend(), backend);
            let reference = {
                let mut r = ferrotcam::BehavioralTcam::new(8);
                for i in 0..32u64 {
                    r.store(TernaryWord::from_u64(i * 3, 8));
                }
                r
            };
            for v in [0u64, 3, 30, 93, 200, 255] {
                let resp = answered(client.submit(0, bits(v), None).unwrap());
                let flat = reference.search(&bits(v));
                assert_eq!(resp.matches, flat.matches, "{backend} v={v}");
                assert_eq!(resp.step1_misses, flat.step1_misses, "{backend} v={v}");
                assert_eq!(resp.step2_misses, flat.step2_misses, "{backend} v={v}");
            }
            drop(svc);
        }
    }

    #[test]
    fn audit_lane_samples_and_stays_clean() {
        // Period 1 audits *every* behavioural query; any kernel bug
        // would surface as a divergence here.
        let config = ServiceConfig {
            backend: BackendKind::Behavioural,
            audit_period: 1,
            ..ServiceConfig::default()
        };
        let svc = TcamService::start(table(48, 3), &config);
        let client = svc.client();
        for v in 0..64u64 {
            let _ = answered(client.submit(0, bits(v * 5), None).unwrap());
        }
        let m = svc.drain();
        assert_eq!(m.completed, 64);
        assert_eq!(m.audit_sampled, 64, "period-1 lane replays everything");
        assert_eq!(m.audit_match_divergences, 0);
        assert_eq!(m.audit_energy_divergences, 0);
        assert!(m.audit_worst_energy_rel <= 1e-9);
    }

    #[test]
    fn noreply_submissions_are_counted_not_answered() {
        let config = ServiceConfig {
            backend: BackendKind::Behavioural,
            audit_period: 0,
            ..ServiceConfig::default()
        };
        let svc = TcamService::start(table(16, 2), &config);
        let client = svc.client();
        for v in 0..32u64 {
            client
                .submit_noreply(0, PackedQuery::from_bits(&bits(v * 7)), None)
                .unwrap();
        }
        let m = svc.drain();
        assert_eq!(m.completed, 32);
        assert_eq!(m.audit_sampled, 0, "audit lane disabled at period 0");
        assert_eq!(m.rows_searched, 32 * 16);
    }

    #[test]
    fn drain_answers_everything_accepted() {
        let svc = TcamService::start(table(8, 2), &ServiceConfig::default());
        let client = svc.client();
        let tickets: Vec<Ticket> = (0..50)
            .map(|i| client.submit(0, bits(i % 256), None).unwrap())
            .collect();
        let m = svc.drain();
        assert_eq!(m.completed, 50);
        for t in tickets {
            let _ = t.wait().expect("drain answers"); // must not hang or panic
        }
        // After drain, new submissions shed as ShuttingDown.
        assert_eq!(
            client.submit(0, bits(1), None).unwrap_err(),
            Overloaded::ShuttingDown
        );
        assert_eq!(client.metrics().shed_shutting_down, 1);
    }

    #[test]
    fn rate_limited_tenant_sheds_but_others_proceed() {
        let svc = TcamService::start(table(8, 1), &ServiceConfig::default());
        let client = svc.client();
        client.set_policy(1, RatePolicy::per_second(0.0, 1.0));
        assert!(client.submit(1, bits(0), None).is_ok());
        assert_eq!(
            client.submit(1, bits(0), None).unwrap_err(),
            Overloaded::RateLimited { tenant: 1 }
        );
        assert!(client.submit(2, bits(0), None).is_ok());
        let m = svc.drain();
        assert_eq!(m.shed_rate_limited, 1);
        assert_eq!(m.completed, 2);
    }

    #[test]
    fn partitioned_submit_scans_one_shard() {
        let mut t = ShardedTcam::new(8, 4);
        // Key-partitioned fill: every word lives on its hash shard.
        for i in 0..64u64 {
            let word = TernaryWord::from_u64(i, 8);
            let shard = t.route(&bits(i));
            t.store_in(shard, word);
        }
        let svc = TcamService::start(t, &ServiceConfig::default());
        let client = svc.client();
        for i in [0u64, 17, 42, 63] {
            let resp = answered(client.submit_routed(0, bits(i)).unwrap());
            assert_eq!(resp.matches.len(), 1, "key {i} found on its shard");
            assert!(resp.rows_searched < 64, "scans one shard, not the table");
        }
        drop(svc);
    }

    #[test]
    fn packed_routed_equals_boolean_routed() {
        let mut t = ShardedTcam::new(8, 4);
        for i in 0..64u64 {
            let shard = t.route(&bits(i));
            t.store_in(shard, TernaryWord::from_u64(i, 8));
        }
        let svc = TcamService::start(t, &ServiceConfig::default());
        let client = svc.client();
        for i in [0u64, 17, 42, 63] {
            let a = answered(client.submit_routed(0, bits(i)).unwrap());
            let b = answered(
                client
                    .submit_packed_routed(0, PackedQuery::from_bits(&bits(i)))
                    .unwrap(),
            );
            assert_eq!(a.matches, b.matches, "key {i}");
            assert_eq!(a.rows_searched, b.rows_searched, "same shard routed");
        }
        drop(svc);
    }
}
