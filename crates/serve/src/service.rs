//! The associative-search service: submission, dispatch, drain.
//!
//! ```text
//!  clients ──submit──▶ [admission] ──▶ [bounded queue] ──▶ dispatcher
//!                          │shed                │shed          │
//!                          ▼                    ▼              ▼
//!                      Overloaded           Overloaded   batch planner
//!                                                             │
//!                                             par_map over shards (banks)
//!                                                             │
//!                                            merge + energy/latency attribution
//!                                                             │
//!                                                  tickets resolve ◀┘
//! ```
//!
//! One dispatcher thread owns the drain side of the queue. It pulls up
//! to `max_batch` requests, plans them into per-bank work lists,
//! executes the banks on the `ferrotcam_spice::parallel::par_map`
//! worker pool, charges each query its modelled bank wait (from
//! `arch::sched`) and its silicon energy (from the attached
//! `core::fom` metrics), and resolves the per-request tickets.
//!
//! Shutdown is a *drain*: new submissions are refused with
//! [`Overloaded::ShuttingDown`] while every request already accepted
//! is still executed and answered. The accept counter and the drain
//! flag share one atomic word, so a request is either atomically
//! accepted before the drain (and will be answered) or refused — no
//! request can fall between.

use crate::admission::{Admission, Overloaded, RatePolicy, TenantId};
use crate::batch;
use crate::drain::DrainGate;
use crate::metrics::{MetricsCollector, ResponseSample, ServiceMetrics};
use crate::queue::BoundedQueue;
use crate::shard::ShardedTcam;
use ferrotcam::SearchOutcome;
use ferrotcam_spice::parallel::{default_jobs, par_map};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bounded submission-queue capacity (the backpressure horizon).
    pub queue_capacity: usize,
    /// Most queries the dispatcher coalesces into one batch.
    pub max_batch: usize,
    /// Worker threads for the per-bank batch execution; 0 means the
    /// `spice::parallel` default (`FERROTCAM_JOBS` or the core count).
    pub jobs: usize,
    /// Rate policy for tenants without an explicit one.
    pub default_policy: RatePolicy,
    /// Override for the modelled per-bank busy time (s); defaults to
    /// the attached metrics' two-step latency, else 1 ns.
    pub t_bank: Option<f64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            max_batch: 64,
            jobs: 0,
            default_policy: RatePolicy::unlimited(),
            t_bank: None,
        }
    }
}

/// A resolved search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResponse {
    /// Matching rows as global slot ids, ascending.
    pub matches: Vec<usize>,
    /// Rows early-terminated after step 1.
    pub step1_misses: usize,
    /// Rows that survived step 1 but missed in step 2.
    pub step2_misses: usize,
    /// Rows scanned to answer this query.
    pub rows_searched: usize,
    /// Silicon energy this query burned (J); `None` without metrics.
    pub energy_j: Option<f64>,
    /// Modelled silicon latency: bank wait + bank busy time (s).
    pub model_latency_s: f64,
    /// Wall-clock submit→response latency (ns).
    pub wall_latency_ns: u64,
}

/// Handle to one in-flight request.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<SearchResponse>,
}

impl Ticket {
    /// Block until the response arrives. Every accepted request is
    /// answered, even across a drain.
    ///
    /// # Panics
    /// Panics if the service was torn down without drain (a bug — the
    /// service's `Drop` drains).
    #[must_use]
    pub fn wait(self) -> SearchResponse {
        self.rx
            .recv()
            .expect("dispatcher answers every accepted request")
    }

    /// Non-blocking poll.
    #[must_use]
    pub fn try_wait(&self) -> Option<SearchResponse> {
        self.rx.try_recv().ok()
    }
}

/// One accepted request travelling through the queue.
#[derive(Debug)]
struct Job {
    query: Vec<bool>,
    shard: Option<usize>,
    enqueued: Instant,
    tx: mpsc::Sender<SearchResponse>,
}

/// Shared state between clients and the dispatcher.
#[derive(Debug)]
struct Inner {
    table: ShardedTcam,
    queue: BoundedQueue<Job>,
    admission: Admission,
    metrics: MetricsCollector,
    /// Drain flag + accepted/completed request accounting.
    gate: DrainGate,
    max_batch: usize,
    jobs: usize,
    t_bank: f64,
}

/// Cloneable client handle: submit requests, read metrics.
#[derive(Debug, Clone)]
pub struct ServiceClient {
    inner: Arc<Inner>,
}

impl ServiceClient {
    /// Submit a query. `shard: None` fans out over every bank and
    /// merges; `Some(s)` pins the query to bank `s` (key-partitioned
    /// tables — see [`ServiceClient::submit_routed`]).
    ///
    /// # Errors
    /// Typed [`Overloaded`] sheds: draining, tenant throttled, or the
    /// bounded queue is full. Sheds are counted in the metrics.
    ///
    /// # Panics
    /// Panics on query-width mismatch or out-of-range shard
    /// (programmer errors, consistent with the core layer).
    pub fn submit(
        &self,
        tenant: TenantId,
        query: Vec<bool>,
        shard: Option<usize>,
    ) -> Result<Ticket, Overloaded> {
        let inner = &*self.inner;
        assert_eq!(query.len(), inner.table.width(), "query width mismatch");
        if let Some(s) = shard {
            assert!(s < inner.table.shard_count(), "shard {s} out of range");
        }
        if let Err(e) = inner.admission.admit(tenant, Instant::now()) {
            inner.metrics.on_shed(e);
            return Err(e);
        }
        // Accept atomically against the drain flag: either this bumps
        // the accepted count before the drain begins (the dispatcher
        // will then wait for it) or the service is already draining.
        if !inner.gate.try_accept() {
            inner.metrics.on_shed(Overloaded::ShuttingDown);
            return Err(Overloaded::ShuttingDown);
        }
        let (tx, rx) = mpsc::channel();
        let job = Job {
            query,
            shard,
            enqueued: Instant::now(),
            tx,
        };
        if inner.queue.push(job).is_err() {
            // Give the acceptance back before reporting the shed.
            inner.gate.retract();
            inner.metrics.on_shed(Overloaded::QueueFull);
            return Err(Overloaded::QueueFull);
        }
        inner.metrics.on_submit(inner.queue.len());
        Ok(Ticket { rx })
    }

    /// Submit a key-partitioned query: the shard is chosen by the
    /// table's deterministic hash route.
    ///
    /// # Errors
    /// Same sheds as [`ServiceClient::submit`].
    pub fn submit_routed(&self, tenant: TenantId, query: Vec<bool>) -> Result<Ticket, Overloaded> {
        let shard = self.inner.table.route(&query);
        self.submit(tenant, query, Some(shard))
    }

    /// Install a per-tenant rate policy.
    pub fn set_policy(&self, tenant: TenantId, policy: RatePolicy) {
        self.inner.admission.set_policy(tenant, policy);
    }

    /// Snapshot the service metrics.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        self.inner.metrics.snapshot(self.inner.queue.len())
    }

    /// The served table (shape and attached metrics).
    #[must_use]
    pub fn table(&self) -> &ShardedTcam {
        &self.inner.table
    }
}

/// The running service: owns the dispatcher thread.
#[derive(Debug)]
pub struct TcamService {
    inner: Arc<Inner>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl TcamService {
    /// Start serving `table` under `config`; spawns the dispatcher.
    ///
    /// # Panics
    /// Panics if the dispatcher thread cannot be spawned.
    #[must_use]
    pub fn start(table: ShardedTcam, config: &ServiceConfig) -> Self {
        let t_bank = config
            .t_bank
            .or_else(|| table.model_latency())
            .unwrap_or(1e-9);
        let jobs = if config.jobs == 0 {
            default_jobs()
        } else {
            config.jobs
        };
        let inner = Arc::new(Inner {
            table,
            queue: BoundedQueue::new(config.queue_capacity),
            admission: Admission::new(config.default_policy),
            metrics: MetricsCollector::new(),
            gate: DrainGate::new(),
            max_batch: config.max_batch.max(1),
            jobs,
            t_bank,
        });
        let worker_inner = Arc::clone(&inner);
        let worker = std::thread::Builder::new()
            .name("ferrotcam-serve".into())
            .spawn(move || dispatch_loop(&worker_inner))
            .expect("spawn dispatcher");
        Self {
            inner,
            worker: Some(worker),
        }
    }

    /// A cloneable client handle.
    #[must_use]
    pub fn client(&self) -> ServiceClient {
        ServiceClient {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Snapshot the service metrics.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        self.inner.metrics.snapshot(self.inner.queue.len())
    }

    /// Graceful shutdown: refuse new work, answer everything already
    /// accepted, stop the dispatcher, and return the final metrics.
    #[must_use]
    pub fn drain(mut self) -> ServiceMetrics {
        self.begin_drain_and_join();
        self.inner.metrics.snapshot(self.inner.queue.len())
    }

    fn begin_drain_and_join(&mut self) {
        self.inner.gate.begin_drain();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for TcamService {
    fn drop(&mut self) {
        self.begin_drain_and_join();
    }
}

/// Dispatcher main loop: coalesce, execute, answer; exit only when
/// draining and every accepted request has been answered.
fn dispatch_loop(inner: &Inner) {
    loop {
        let mut batch: Vec<Job> = Vec::with_capacity(inner.max_batch);
        inner.queue.drain_into(&mut batch, inner.max_batch);
        if batch.is_empty() {
            if inner.gate.quiescent() && inner.queue.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_micros(20));
            continue;
        }
        let _span = ferrotcam_spice::trace::span("serve.dispatch");
        execute_batch(inner, batch);
    }
}

/// Run one batch: plan per-bank work, search the shards on the worker
/// pool, model the bank schedule, attribute energy, resolve tickets.
fn execute_batch(inner: &Inner, jobs: Vec<Job>) {
    let _span = ferrotcam_spice::trace::span("serve.batch");
    for job in &jobs {
        let wait = u64::try_from(job.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
        ferrotcam_spice::trace::sample("serve.queue_wait_ns", wait);
    }
    let n = inner.table.shard_count();
    // Split the Sync part (queries) from the send side (tickets) so
    // the worker pool only ever sees the former.
    let targets: Vec<Option<usize>> = jobs.iter().map(|j| j.shard).collect();
    let queries: Vec<Vec<bool>> = jobs.iter().map(|j| j.query.clone()).collect();
    let plan = batch::plan(&targets, n);

    let table = &inner.table;
    let per_shard_results: Vec<Vec<(usize, SearchOutcome)>> =
        par_map(&plan.per_shard, inner.jobs, |s, list| {
            list.iter()
                .map(|&j| (j, table.search_shard(s, &queries[j])))
                .collect()
        });

    // Merge the per-shard outcomes back into one outcome per job.
    let mut merged: Vec<SearchOutcome> = (0..jobs.len())
        .map(|_| SearchOutcome {
            matches: Vec::new(),
            step1_misses: 0,
            step2_misses: 0,
        })
        .collect();
    for shard_results in per_shard_results {
        for (j, out) in shard_results {
            merged[j].matches.extend(out.matches);
            merged[j].step1_misses += out.step1_misses;
            merged[j].step2_misses += out.step2_misses;
        }
    }

    let (sched_outcome, per_job_done) = plan.schedule(n, inner.t_bank);
    inner.metrics.on_batch(jobs.len(), &sched_outcome);

    for (j, job) in jobs.into_iter().enumerate() {
        let mut outcome = std::mem::replace(
            &mut merged[j],
            SearchOutcome {
                matches: Vec::new(),
                step1_misses: 0,
                step2_misses: 0,
            },
        );
        outcome.matches.sort_unstable();
        let rows_searched = match job.shard {
            Some(s) => inner.table.shard(s).len(),
            None => inner.table.len(),
        };
        let energy_j = inner.table.energy_of(&outcome);
        let wall_latency_ns = u64::try_from(job.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let response = SearchResponse {
            matches: outcome.matches,
            step1_misses: outcome.step1_misses,
            step2_misses: outcome.step2_misses,
            rows_searched,
            energy_j,
            model_latency_s: per_job_done[j],
            wall_latency_ns,
        };
        inner.metrics.on_response(&ResponseSample {
            wall_ns: wall_latency_ns,
            model_latency_s: Some(response.model_latency_s),
            rows: rows_searched,
            step1_misses: response.step1_misses,
            step2_misses: response.step2_misses,
            matches: response.matches.len(),
            energy_j,
        });
        // A dropped ticket is fine — the work was still done and
        // accounted; only the delivery is skipped.
        let _ = job.tx.send(response);
        inner.gate.complete();
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use ferrotcam::TernaryWord;

    fn table(rows: u64, shards: usize) -> ShardedTcam {
        let mut t = ShardedTcam::new(8, shards);
        for i in 0..rows {
            t.store(TernaryWord::from_u64(i * 3, 8));
        }
        t
    }

    fn bits(v: u64) -> Vec<bool> {
        (0..8).rev().map(|b| (v >> b) & 1 == 1).collect()
    }

    #[test]
    fn single_query_roundtrip() {
        let svc = TcamService::start(table(16, 2), &ServiceConfig::default());
        let client = svc.client();
        let resp = client.submit(0, bits(9), None).unwrap().wait();
        // 9 = 3*3 is stored; fan-out scans all 16 rows.
        assert!(!resp.matches.is_empty());
        assert_eq!(resp.rows_searched, 16);
        assert!(resp.model_latency_s > 0.0);
        let m = svc.drain();
        assert_eq!(m.completed, 1);
        assert_eq!(m.submitted, 1);
    }

    #[test]
    fn fanout_equals_unsharded_search() {
        let t = table(32, 4);
        let reference = {
            let mut r = ferrotcam::BehavioralTcam::new(8);
            for i in 0..32u64 {
                r.store(TernaryWord::from_u64(i * 3, 8));
            }
            r
        };
        let svc = TcamService::start(t, &ServiceConfig::default());
        let client = svc.client();
        for v in [0u64, 3, 30, 93, 200] {
            let resp = client.submit(0, bits(v), None).unwrap().wait();
            assert_eq!(resp.matches, reference.search_naive(&bits(v)), "v={v}");
        }
        drop(svc);
    }

    #[test]
    fn drain_answers_everything_accepted() {
        let svc = TcamService::start(table(8, 2), &ServiceConfig::default());
        let client = svc.client();
        let tickets: Vec<Ticket> = (0..50)
            .map(|i| client.submit(0, bits(i % 256), None).unwrap())
            .collect();
        let m = svc.drain();
        assert_eq!(m.completed, 50);
        for t in tickets {
            let _ = t.wait(); // must not hang or panic
        }
        // After drain, new submissions shed as ShuttingDown.
        assert_eq!(
            client.submit(0, bits(1), None).unwrap_err(),
            Overloaded::ShuttingDown
        );
        assert_eq!(client.metrics().shed_shutting_down, 1);
    }

    #[test]
    fn rate_limited_tenant_sheds_but_others_proceed() {
        let svc = TcamService::start(table(8, 1), &ServiceConfig::default());
        let client = svc.client();
        client.set_policy(1, RatePolicy::per_second(0.0, 1.0));
        assert!(client.submit(1, bits(0), None).is_ok());
        assert_eq!(
            client.submit(1, bits(0), None).unwrap_err(),
            Overloaded::RateLimited { tenant: 1 }
        );
        assert!(client.submit(2, bits(0), None).is_ok());
        let m = svc.drain();
        assert_eq!(m.shed_rate_limited, 1);
        assert_eq!(m.completed, 2);
    }

    #[test]
    fn partitioned_submit_scans_one_shard() {
        let mut t = ShardedTcam::new(8, 4);
        // Key-partitioned fill: every word lives on its hash shard.
        for i in 0..64u64 {
            let word = TernaryWord::from_u64(i, 8);
            let shard = t.route(&bits(i));
            t.store_in(shard, word);
        }
        let svc = TcamService::start(t, &ServiceConfig::default());
        let client = svc.client();
        for i in [0u64, 17, 42, 63] {
            let resp = client.submit_routed(0, bits(i)).unwrap().wait();
            assert_eq!(resp.matches.len(), 1, "key {i} found on its shard");
            assert!(resp.rows_searched < 64, "scans one shard, not the table");
        }
        drop(svc);
    }
}
