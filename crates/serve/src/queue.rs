//! Bounded multi-producer submission queue.
//!
//! A fixed-capacity ring in the style of Vyukov's bounded MPMC queue:
//! producers and the consumer reserve slots with atomic compare-and-
//! swap on monotonically increasing tickets, and each slot's sequence
//! number tells whoever looks at it whether it is ready to fill or
//! ready to drain. The hot path never takes a shared lock — the only
//! lock is *per slot* and is touched strictly after the slot has been
//! won by exactly one thread, so it is never contended; it exists to
//! keep the value handoff in safe Rust instead of `UnsafeCell`.
//!
//! The bounded capacity is the service's backpressure primitive: a
//! full ring rejects the push immediately (no blocking, no unbounded
//! growth) and the caller surfaces that as a typed `Overloaded` error.

use crate::sync::{AtomicUsize, Mutex, Ordering};

/// One ring slot: `seq` encodes the slot's lap state per the Vyukov
/// protocol, `value` is the actual handoff cell.
#[derive(Debug)]
struct Slot<T> {
    seq: AtomicUsize,
    value: Mutex<Option<T>>,
}

/// A bounded multi-producer / multi-consumer ring buffer.
///
/// Used by the service as an MPSC submission queue (many client
/// threads push, one dispatcher pops), but the algorithm is symmetric
/// and safe for multiple consumers too.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    slots: Box<[Slot<T>]>,
    /// Next pop ticket.
    head: AtomicUsize,
    /// Next push ticket.
    tail: AtomicUsize,
}

impl<T> BoundedQueue<T> {
    /// Ring of `capacity` slots.
    ///
    /// # Panics
    /// Panics if `capacity < 2`. A one-slot ring is unsound under this
    /// protocol: the sequence value after "filled by ticket 0"
    /// (`0 + 1`) collides with "freed for ticket 1" (`head + capacity`
    /// `= 1`), so a second producer would overwrite the queued value.
    /// Found by the loom model in `tests/loom.rs`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "queue capacity must be at least 2");
        let slots = (0..capacity)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: Mutex::new("serve.queue.slot", None),
            })
            .collect();
        Self {
            slots,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Items currently queued (racy snapshot, exact when quiescent).
    #[must_use]
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Relaxed); // ordering: queue-len-relaxed
        let head = self.head.load(Ordering::Relaxed); // ordering: queue-len-relaxed
        tail.saturating_sub(head)
    }

    /// Whether the queue currently holds nothing (racy snapshot).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push. On a full ring the value is handed back so
    /// the caller can shed it.
    ///
    /// # Errors
    /// Returns `Err(value)` when the queue is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let cap = self.slots.len();
        let mut tail = self.tail.load(Ordering::Relaxed); // ordering: ticket-relaxed
        loop {
            let slot = &self.slots[tail % cap];
            let seq = slot.seq.load(Ordering::Acquire); // ordering: queue-seq-acquire
            if seq == tail {
                // Slot is empty and it is our lap: try to claim the ticket.
                match self.tail.compare_exchange_weak(
                    tail,
                    tail + 1,
                    Ordering::Relaxed, // ordering: ticket-relaxed
                    Ordering::Relaxed, // ordering: ticket-relaxed
                ) {
                    Ok(_) => {
                        *slot.value.lock() = Some(value);
                        slot.seq.store(tail + 1, Ordering::Release); // ordering: queue-seq-release
                        return Ok(());
                    }
                    Err(t) => tail = t,
                }
            } else if seq < tail {
                // The consumer has not freed this slot yet: full.
                return Err(value);
            } else {
                // Another producer claimed this ticket; move on.
                tail = self.tail.load(Ordering::Relaxed); // ordering: ticket-relaxed
            }
        }
    }

    /// Non-blocking pop; `None` when the queue is empty.
    pub fn pop(&self) -> Option<T> {
        let cap = self.slots.len();
        let mut head = self.head.load(Ordering::Relaxed); // ordering: ticket-relaxed
        loop {
            let slot = &self.slots[head % cap];
            let seq = slot.seq.load(Ordering::Acquire); // ordering: queue-seq-acquire
            if seq == head + 1 {
                // Slot holds a value from this lap: claim it.
                match self.head.compare_exchange_weak(
                    head,
                    head + 1,
                    Ordering::Relaxed, // ordering: ticket-relaxed
                    Ordering::Relaxed, // ordering: ticket-relaxed
                ) {
                    Ok(_) => {
                        let value = slot
                            .value
                            .lock()
                            .take()
                            // hot-ok: the CAS won this slot, so the Vyukov
                            // seq protocol guarantees a value is present.
                            .expect("claimed slot holds a value");
                        slot.seq.store(head + cap, Ordering::Release); // ordering: queue-seq-release
                        return Some(value);
                    }
                    Err(h) => head = h,
                }
            } else if seq <= head {
                // Producer has not filled this slot yet: empty.
                return None;
            } else {
                head = self.head.load(Ordering::Relaxed); // ordering: ticket-relaxed
            }
        }
    }

    /// Pop up to `max` items into `out`, returning how many landed.
    pub fn drain_into(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.pop() {
                Some(v) => {
                    out.push(v);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.push(99), Err(99));
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn wraps_around_many_laps() {
        let q = BoundedQueue::new(3);
        for lap in 0..10 {
            for i in 0..3 {
                q.push(lap * 3 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(q.pop(), Some(lap * 3 + i));
            }
        }
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        const PRODUCERS: usize = 4;
        // Miri runs this interpreter-speed; keep the schedule space small.
        const PER_PRODUCER: usize = if cfg!(miri) { 25 } else { 500 };
        let q = Arc::new(BoundedQueue::new(64));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let mut v = p * PER_PRODUCER + i;
                    // Spin until accepted: the consumer drains in parallel.
                    loop {
                        match q.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let mut seen = vec![false; PRODUCERS * PER_PRODUCER];
        let mut got = 0;
        while got < PRODUCERS * PER_PRODUCER {
            if let Some(v) = q.pop() {
                assert!(!seen[v], "duplicate {v}");
                seen[v] = true;
                got += 1;
            } else {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(q.pop(), None);
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn drain_into_respects_max() {
        let q = BoundedQueue::new(8);
        for i in 0..6 {
            q.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(q.drain_into(&mut out, 4), 2);
        assert_eq!(out.len(), 6);
    }
}
