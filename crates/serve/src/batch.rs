//! Batch planning: turning a drained batch of queries into per-bank
//! work lists plus a modelled hardware schedule.
//!
//! Every query expands into one *unit* per shard it must visit (one
//! for partitioned queries, `n` for fan-out queries). The units are
//! then run through `ferrotcam_arch::sched::schedule` — the same
//! greedy bank scheduler the architecture layer uses — so each query
//! is charged the bank wait it would have seen in silicon, and the
//! dispatcher learns per-bank utilization and the worst wait of the
//! batch from the extended [`ScheduleOutcome`].

use ferrotcam_arch::sched::{schedule_weighted, Query, ScheduleOutcome};

/// A planned batch: which shard runs which queries, and the flattened
/// schedule units.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// Per-shard job-index lists (`per_shard[s]` = indices into the
    /// batch whose query must run on shard `s`).
    pub per_shard: Vec<Vec<usize>>,
    /// Flattened `(job, shard)` units in dispatch order.
    pub units: Vec<(usize, usize)>,
    /// Number of jobs planned.
    pub jobs: usize,
}

/// Group a batch into per-shard work lists. `targets[j]` is `Some(s)`
/// for a partitioned query pinned to shard `s`, `None` for a fan-out
/// query visiting every shard.
///
/// # Panics
/// Panics if a pinned shard is out of range.
#[must_use]
pub fn plan(targets: &[Option<usize>], shards: usize) -> BatchPlan {
    let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); shards];
    let mut units = Vec::new();
    for (j, target) in targets.iter().enumerate() {
        match *target {
            Some(s) => {
                assert!(s < shards, "shard {s} out of range");
                per_shard[s].push(j);
                units.push((j, s));
            }
            None => {
                for (s, list) in per_shard.iter_mut().enumerate() {
                    list.push(j);
                    units.push((j, s));
                }
            }
        }
    }
    BatchPlan {
        per_shard,
        units,
        jobs: targets.len(),
    }
}

impl BatchPlan {
    /// Model the batch on the bank pool: all units arrive together
    /// (the dispatcher issues the batch as one wave) and serialise per
    /// bank at `t_bank` each. Returns the schedule plus each job's
    /// modelled completion time — for fan-out jobs the *slowest* of
    /// its per-shard units, since a merged answer needs every bank.
    #[must_use]
    pub fn schedule(&self, shards: usize, t_bank: f64) -> (ScheduleOutcome, Vec<f64>) {
        self.schedule_weighted(shards, t_bank, &vec![1.0; self.jobs])
    }

    /// [`Self::schedule`] with a per-job cost model: job `j` occupies
    /// each of its banks for `t_bank * job_cost[j]`. The serving layer
    /// derives the cost from the request kind and the sense-time model
    /// — a high-threshold Hamming query senses early and frees its
    /// bank sooner than a two-step exact search.
    ///
    /// # Panics
    /// Panics if `job_cost` is not parallel to the planned jobs.
    #[must_use]
    pub fn schedule_weighted(
        &self,
        shards: usize,
        t_bank: f64,
        job_cost: &[f64],
    ) -> (ScheduleOutcome, Vec<f64>) {
        assert_eq!(job_cost.len(), self.jobs, "one cost per job");
        let queries: Vec<Query> = self
            .units
            .iter()
            .map(|&(_, s)| Query {
                arrival: 0.0,
                bank: Some(s),
            })
            .collect();
        let t_service: Vec<f64> = self
            .units
            .iter()
            .map(|&(j, _)| t_bank * job_cost[j])
            .collect();
        let outcome = schedule_weighted(&queries, shards, &t_service);
        let mut per_job = vec![0.0f64; self.jobs];
        for (u, &(j, _)) in self.units.iter().enumerate() {
            per_job[j] = per_job[j].max(outcome.completion[u]);
        }
        (outcome, per_job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_jobs_group_by_shard() {
        let p = plan(&[Some(0), Some(1), Some(0)], 2);
        assert_eq!(p.per_shard[0], vec![0, 2]);
        assert_eq!(p.per_shard[1], vec![1]);
        assert_eq!(p.units.len(), 3);
    }

    #[test]
    fn fanout_jobs_visit_every_shard() {
        let p = plan(&[None, Some(1)], 3);
        assert_eq!(p.per_shard[0], vec![0]);
        assert_eq!(p.per_shard[1], vec![0, 1]);
        assert_eq!(p.per_shard[2], vec![0]);
        assert_eq!(p.units.len(), 4);
    }

    #[test]
    fn schedule_charges_bank_conflicts() {
        // Three queries pinned to one of two banks: the pinned bank
        // serialises, and the batch's modelled completion shows it.
        let p = plan(&[Some(0), Some(0), Some(0)], 2);
        let (outcome, per_job) = p.schedule(2, 1e-9);
        assert!((outcome.makespan - 3e-9).abs() < 1e-15);
        assert!((outcome.max_wait - 2e-9).abs() < 1e-15);
        assert!((per_job[2] - 3e-9).abs() < 1e-15);
        let util = outcome.utilization();
        assert!(util[0] > 0.99 && util[1] == 0.0);
    }

    #[test]
    fn weighted_costs_scale_bank_occupancy() {
        // Two jobs on one shard: an exact query (cost 1) behind a
        // cheap high-threshold query (cost 0.5).
        let p = plan(&[Some(0), Some(0)], 1);
        let (outcome, per_job) = p.schedule_weighted(1, 1e-9, &[0.5, 1.0]);
        assert!((per_job[0] - 0.5e-9).abs() < 1e-15);
        assert!((per_job[1] - 1.5e-9).abs() < 1e-15);
        assert!((outcome.makespan - 1.5e-9).abs() < 1e-15);
        // Unit costs reproduce the unweighted schedule.
        let (a, pa) = p.schedule(1, 1e-9);
        let (b, pb) = p.schedule_weighted(1, 1e-9, &[1.0, 1.0]);
        assert_eq!(a, b);
        assert_eq!(pa, pb);
    }

    #[test]
    fn fanout_completion_is_slowest_unit() {
        // One fan-out job over 2 banks, plus a pinned job congesting
        // bank 1: the fan-out job finishes only when bank 1 does.
        let p = plan(&[Some(1), None], 2);
        let (_, per_job) = p.schedule(2, 1e-9);
        assert!((per_job[0] - 1e-9).abs() < 1e-15);
        assert!((per_job[1] - 2e-9).abs() < 1e-15, "waits behind job 0");
    }
}
