//! Sharding a large ternary table across TCAM banks.
//!
//! A serving-scale table does not fit one subarray, so rows are spread
//! over `n` behavioural shards, each standing for a physical bank with
//! its own match lines and priority encoder. Two access patterns are
//! supported, mirroring `ferrotcam_arch::sched::Query::bank`:
//!
//! * **fan-out** — the query searches every shard and the per-shard
//!   match sets merge into one global result (row-partitioned tables,
//!   e.g. LPM);
//! * **partitioned** — a hash routes the query to exactly one shard
//!   (key-partitioned tables, e.g. exact-match filters), so capacity
//!   scales with the shard count.
//!
//! Energy accounting is *energy-true*: with per-row circuit metrics
//! attached (from [`ferrotcam::fom::characterize_search`]), the energy
//! charged to a query is exactly the Table IV early-termination figure
//! — `step-1 misses × E₁ + surviving rows × E₂` — and, because that sum
//! is linear over rows, sharding never changes the total a query would
//! have burned on the unsharded array.
//!
//! # Online writes: the epoch/snapshot layer
//!
//! [`ShardedTcam`] is the *build-time* table. The serve layer does not
//! search it directly any more; at service start it is converted into a
//! [`LiveTable`] — one [`EpochCell`] per shard, each holding an
//! `Arc<`[`ShardSnap`]`>` — and every dispatched batch searches a
//! captured [`SnapView`]. The invariant the whole write path hangs on:
//!
//! * a snapshot, once captured, **never mutates** — a write commits by
//!   publishing a *successor* snapshot into the cell and bumping the
//!   shard's epoch, so an in-flight search can never observe a torn
//!   word (half old row, half new row);
//! * snapshots copy-on-write at [`BLOCK_ROWS`]-row granularity: the
//!   successor shares every untouched [`RowBlock`] `Arc` with its
//!   predecessor, so a write clones one block (and its sliced planes),
//!   not the shard.
//!
//! Cross-shard atomicity is deliberately *not* promised: a fan-out
//! search sees each shard at its own epoch (the view records them).
//! Per shard, reads are linearizable — a search observes exactly the
//! table as of some committed write batch.

use crate::request::RequestKind;
use crate::sync::{AtomicU64, Mutex, Ordering};
use ferrotcam::approx::RangeRows;
use ferrotcam::fom::SearchMetrics;
use ferrotcam::{
    BehavioralTcam, BitSlices, PackedQuery, PackedRows, RowWriteMetrics, SearchOutcome, TernaryWord,
};
use rand::split_mix64;
use std::sync::Arc;

/// A ternary table split across `n` behavioural shards.
#[derive(Debug, Clone)]
pub struct ShardedTcam {
    width: usize,
    shards: Vec<BehavioralTcam>,
    metrics: Option<SearchMetrics>,
    write_metrics: Option<RowWriteMetrics>,
}

/// Deterministic SplitMix64 hash of a query bit-pattern, used for
/// shard routing and load generation.
#[must_use]
pub fn hash_bits(bits: &[bool]) -> u64 {
    let mut state = 0x9E37_79B9_7F4A_7C15 ^ bits.len() as u64;
    let mut acc = 0u64;
    let mut n = 0u32;
    for &b in bits {
        acc = (acc << 1) | u64::from(b);
        n += 1;
        if n == 64 {
            state ^= acc;
            let _ = split_mix64(&mut state);
            acc = 0;
            n = 0;
        }
    }
    state ^= acc ^ u64::from(n);
    split_mix64(&mut state)
}

/// [`hash_bits`] over a bit-packed query, without unpacking: produces
/// the *same* hash as `hash_bits(&q.to_bits())`, so packed and boolean
/// submission paths route identically. The MSB-first fold of
/// `hash_bits` corresponds to `u64::reverse_bits` on each LSB-first
/// packed word (a partial tail of `n` bits lands right-aligned after
/// an extra `64 - n` shift).
#[must_use]
pub fn hash_packed(q: &PackedQuery) -> u64 {
    let width = q.width();
    let mut state = 0x9E37_79B9_7F4A_7C15 ^ width as u64;
    let full = width / 64;
    for w in 0..full {
        state ^= q.word(w).reverse_bits();
        let _ = split_mix64(&mut state);
    }
    let tail = (width % 64) as u32;
    let acc = if tail == 0 {
        0
    } else {
        q.word(full).reverse_bits() >> (64 - tail)
    };
    state ^= acc ^ u64::from(tail);
    split_mix64(&mut state)
}

impl ShardedTcam {
    /// Empty table of `width`-digit words over `shards` banks.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn new(width: usize, shards: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        Self {
            width,
            shards: (0..shards).map(|_| BehavioralTcam::new(width)).collect(),
            metrics: None,
            write_metrics: None,
        }
    }

    /// Word width in digits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total stored rows across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(BehavioralTcam::len).sum()
    }

    /// Whether no rows are stored anywhere.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(BehavioralTcam::is_empty)
    }

    /// One shard's contents.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn shard(&self, shard: usize) -> &BehavioralTcam {
        &self.shards[shard]
    }

    /// Attach the per-row circuit figures of merit that turn search
    /// statistics into Joules.
    pub fn attach_metrics(&mut self, metrics: SearchMetrics) {
        self.metrics = Some(metrics);
    }

    /// The attached circuit metrics, if any.
    #[must_use]
    pub fn metrics(&self) -> Option<&SearchMetrics> {
        self.metrics.as_ref()
    }

    /// Attach the calibrated 3-step program figures that price online
    /// writes (from [`ferrotcam::Calibration::write_metrics`]).
    pub fn attach_write_metrics(&mut self, metrics: RowWriteMetrics) {
        self.write_metrics = Some(metrics);
    }

    /// The attached write-pricing metrics, if any.
    #[must_use]
    pub fn write_metrics(&self) -> Option<&RowWriteMetrics> {
        self.write_metrics.as_ref()
    }

    /// Global slot id of a shard-local row: `local * n + shard`. For
    /// balanced (round-robin) fills this equals the insertion order.
    #[must_use]
    pub fn global_row(&self, shard: usize, local: usize) -> usize {
        local * self.shards.len() + shard
    }

    /// Inverse of [`Self::global_row`]: `(shard, local)`.
    #[must_use]
    pub fn locate(&self, global: usize) -> (usize, usize) {
        (global % self.shards.len(), global / self.shards.len())
    }

    /// Store a word in the least-loaded shard (round-robin for
    /// balanced fills); returns the global slot id.
    ///
    /// # Panics
    /// Panics on word-width mismatch.
    pub fn store(&mut self, word: TernaryWord) -> usize {
        let shard = (0..self.shards.len())
            .min_by_key(|&s| (self.shards[s].len(), s))
            .expect("at least one shard");
        self.store_in(shard, word)
    }

    /// Store a word in a specific shard (key-partitioned tables route
    /// with [`Self::route`]); returns the global slot id.
    ///
    /// # Panics
    /// Panics on width mismatch or `shard` out of range.
    pub fn store_in(&mut self, shard: usize, word: TernaryWord) -> usize {
        let local = self.shards[shard].store(word);
        self.global_row(shard, local)
    }

    /// The shard a key-partitioned query belongs to.
    #[must_use]
    pub fn route(&self, query: &[bool]) -> usize {
        (hash_bits(query) % self.shards.len() as u64) as usize
    }

    /// [`Self::route`] for a packed query — identical routing, no
    /// unpack.
    #[must_use]
    pub fn route_packed(&self, query: &PackedQuery) -> usize {
        (hash_packed(query) % self.shards.len() as u64) as usize
    }

    /// Search one shard; matches come back as *global* slot ids.
    ///
    /// # Panics
    /// Panics on width mismatch or `shard` out of range.
    #[must_use]
    pub fn search_shard(&self, shard: usize, query: &[bool]) -> SearchOutcome {
        let mut out = self.shards[shard].search(query);
        for m in &mut out.matches {
            *m = self.global_row(shard, *m);
        }
        out
    }

    /// Fan-out search of every shard, merged into one outcome with
    /// globally ascending match ids.
    ///
    /// # Panics
    /// Panics on query-width mismatch.
    #[must_use]
    pub fn search_all(&self, query: &[bool]) -> SearchOutcome {
        let mut merged = SearchOutcome::empty();
        for s in 0..self.shards.len() {
            merged.absorb(self.search_shard(s, query));
        }
        merged.matches.sort_unstable();
        merged
    }

    /// Energy (J) a search with these statistics burned, per the
    /// paper's early-termination model: every step-1 miss pays the
    /// one-step row energy, every surviving row the full two-step
    /// figure. `None` without attached metrics.
    ///
    /// Equals `rows × SearchMetrics::energy_avg(measured miss rate)`
    /// by construction, so responses can be audited against the
    /// standalone `core::fom` number.
    #[must_use]
    pub fn energy_of(&self, outcome: &SearchOutcome) -> Option<f64> {
        let m = self.metrics.as_ref()?;
        let e1 = m.energy_1step;
        let e2 = m.energy_2step.unwrap_or(m.energy_1step);
        Some(outcome.step1_misses as f64 * e1 + outcome.survivors() as f64 * e2)
    }

    /// Unloaded per-search silicon latency (s) from the attached
    /// metrics.
    #[must_use]
    pub fn model_latency(&self) -> Option<f64> {
        self.metrics.as_ref().map(SearchMetrics::latency)
    }

    /// Energy (J) of a full-parallel drive over `rows` rows — the
    /// approximate-match figure. Distance and range sensing race every
    /// match line to the sense moment, so no row early-terminates:
    /// each pays the full two-step row energy.
    #[must_use]
    pub fn energy_full_parallel(&self, rows: usize) -> Option<f64> {
        let m = self.metrics.as_ref()?;
        Some(rows as f64 * m.energy_2step.unwrap_or(m.energy_1step))
    }

    /// Energy (J) of one answered request: early-termination
    /// accounting ([`Self::energy_of`]) for exact matches,
    /// full-parallel accounting for the approximate kinds, `None` for
    /// writes (priced by the 3-step program, not a search model).
    #[must_use]
    pub fn energy_of_kind(
        &self,
        kind: crate::request::RequestKind,
        outcome: &SearchOutcome,
    ) -> Option<f64> {
        match kind {
            crate::request::RequestKind::Exact => self.energy_of(outcome),
            k if k.is_write() => None,
            _ => self.energy_full_parallel(outcome.rows_examined()),
        }
    }
}

/// Rows per copy-on-write block of a [`ShardSnap`].
pub const BLOCK_ROWS: usize = 512;

/// One copy-on-write unit of a shard snapshot: up to [`BLOCK_ROWS`]
/// rows as bit-sliced match planes (with the row-major packed words
/// backing survivor verification and the scalar reference walks) plus,
/// for even widths, the lane-packed `[lo, hi]` range table.
#[derive(Debug, Clone)]
pub struct RowBlock {
    slices: BitSlices,
    /// `None` for odd widths (range mode pairs digits into cells).
    ranges: Option<RangeRows>,
}

impl RowBlock {
    fn new(width: usize) -> Self {
        Self {
            slices: BitSlices::build(PackedRows::new(width)),
            ranges: width.is_multiple_of(2).then(|| RangeRows::new(width / 2)),
        }
    }

    /// Rows stored in this block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slices.rows()
    }

    /// Whether the block holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bit-sliced match planes (the behavioural tier's exact
    /// kernel).
    #[must_use]
    pub fn slices(&self) -> &BitSlices {
        &self.slices
    }

    /// The row-major packed words (scalar reference walks and the
    /// popcount approximate kernels).
    #[must_use]
    pub fn packed(&self) -> &PackedRows {
        self.slices.packed()
    }

    /// The lane-packed range table; `None` for odd widths.
    #[must_use]
    pub fn ranges(&self) -> Option<&RangeRows> {
        self.ranges.as_ref()
    }
}

/// An immutable snapshot of one shard's rows, chunked into
/// [`BLOCK_ROWS`]-row [`RowBlock`]s behind `Arc`s. Successor snapshots
/// (built by [`EpochCell::update`]) share every untouched block with
/// their predecessor, so cloning a snapshot and patching a few rows is
/// cheap regardless of the shard size.
#[derive(Debug, Clone)]
pub struct ShardSnap {
    width: usize,
    rows: usize,
    blocks: Vec<Arc<RowBlock>>,
}

/// One shard-local mutation inside a committed write batch.
#[derive(Debug, Clone)]
enum LocalOp {
    /// Append a row at the tail.
    Push(TernaryWord),
    /// Overwrite local row `.0`.
    Write(usize, TernaryWord),
    /// Remove local row `.0`, moving the shard's last row into the
    /// freed slot.
    SwapRemove(usize),
}

impl ShardSnap {
    /// Empty snapshot of `width`-digit rows.
    #[must_use]
    pub fn new(width: usize) -> Self {
        Self {
            width,
            rows: 0,
            blocks: Vec::new(),
        }
    }

    /// Snapshot one behavioural shard's rows.
    #[must_use]
    pub fn from_tcam(tcam: &BehavioralTcam) -> Self {
        let mut snap = Self::new(tcam.width());
        for row in tcam.rows() {
            snap.push(row);
        }
        snap.rebuild_unique_ranges();
        snap
    }

    /// Row width in digits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Stored row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether no rows are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The blocks with their base row offsets, in row order.
    pub fn blocks(&self) -> impl Iterator<Item = (usize, &RowBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(b, blk)| (b * BLOCK_ROWS, &**blk))
    }

    /// Reconstruct local row `row`'s stored word.
    ///
    /// # Panics
    /// Panics on an out-of-range row.
    #[must_use]
    pub fn row_word(&self, row: usize) -> TernaryWord {
        assert!(row < self.rows, "row {row} out of range");
        self.blocks[row / BLOCK_ROWS]
            .packed()
            .row_word(row % BLOCK_ROWS)
    }

    /// Exact two-step search over every block's sliced planes, with
    /// shard-local match ids.
    ///
    /// # Panics
    /// Panics on query-width mismatch.
    #[must_use]
    pub fn search(&self, q: &PackedQuery) -> SearchOutcome {
        let mut out = SearchOutcome::empty();
        for (base, blk) in self.blocks() {
            let mut o = blk.slices().search(q);
            for m in &mut o.matches {
                *m += base;
            }
            out.absorb(o);
        }
        out.matches.sort_unstable();
        out
    }

    fn block_mut(&mut self, b: usize) -> &mut RowBlock {
        Arc::make_mut(&mut self.blocks[b])
    }

    fn push(&mut self, word: &TernaryWord) {
        assert_eq!(word.len(), self.width, "row width mismatch");
        let b = self.rows / BLOCK_ROWS;
        if b == self.blocks.len() {
            self.blocks.push(Arc::new(RowBlock::new(self.width)));
        }
        self.block_mut(b).slices.push_row(word);
        self.rows += 1;
    }

    fn write(&mut self, row: usize, word: &TernaryWord) {
        assert!(row < self.rows, "row {row} out of range");
        assert_eq!(word.len(), self.width, "row width mismatch");
        self.block_mut(row / BLOCK_ROWS)
            .slices
            .write_row(row % BLOCK_ROWS, word);
    }

    fn swap_remove(&mut self, row: usize) {
        assert!(row < self.rows, "row {row} out of range");
        let last = self.rows - 1;
        let (rb, lb) = (row / BLOCK_ROWS, last / BLOCK_ROWS);
        if rb == lb {
            self.block_mut(rb).slices.swap_remove_row(row % BLOCK_ROWS);
        } else {
            // The moved row crosses blocks: pop it off the tail block,
            // write it into the freed slot's block.
            let moved = self.blocks[lb].packed().row_word(last % BLOCK_ROWS);
            self.block_mut(lb).slices.swap_remove_row(last % BLOCK_ROWS);
            self.block_mut(rb)
                .slices
                .write_row(row % BLOCK_ROWS, &moved);
        }
        if self.blocks.last().is_some_and(|blk| blk.is_empty()) {
            self.blocks.pop();
        }
        self.rows -= 1;
    }

    /// Rebuild the range table of every uniquely-owned block. A block
    /// is uniquely owned exactly when this batch mutated it (untouched
    /// blocks still share their `Arc` with the predecessor snapshot),
    /// so this re-derives `[lo, hi]` windows only where rows changed —
    /// once per batch, not once per write.
    fn rebuild_unique_ranges(&mut self) {
        for blk in &mut self.blocks {
            if let Some(b) = Arc::get_mut(blk) {
                if b.ranges.is_some() {
                    b.ranges = Some(RangeRows::from_packed(b.slices.packed()));
                }
            }
        }
    }

    /// Apply one shard's slice of a write batch, in order.
    fn apply(&mut self, ops: &[LocalOp]) {
        for op in ops {
            match op {
                LocalOp::Push(word) => self.push(word),
                LocalOp::Write(row, word) => self.write(*row, word),
                LocalOp::SwapRemove(row) => self.swap_remove(*row),
            }
        }
        self.rebuild_unique_ranges();
    }
}

/// One shard's atomically-swappable snapshot plus its write epoch.
///
/// Readers ([`EpochCell::load`]) take the cell lock just long enough to
/// clone the `Arc` and read the matching epoch — they never block on a
/// write's snapshot *construction*, only on the pointer swap. Writers
/// ([`EpochCell::update`]) hold the lock across read-build-swap, which
/// serializes concurrent updaters: with work-stealing, any dispatcher
/// may write any shard, and an unserialized read-modify-write would
/// silently drop one side's rows.
///
/// Generic over the payload so the loom model can check the
/// snapshot/epoch consistency protocol on a payload whose invariant is
/// trivially decidable (a pair that must stay internally consistent).
#[derive(Debug)]
pub struct EpochCell<T> {
    snap: Mutex<Arc<T>>,
    epoch: AtomicU64,
}

impl<T> EpochCell<T> {
    /// A cell at epoch 0 holding `value`.
    #[must_use]
    pub fn new(value: T) -> Self {
        Self {
            snap: Mutex::new("serve.shard.snap", Arc::new(value)),
            epoch: AtomicU64::new(0),
        }
    }

    /// The current snapshot and the epoch it was published at; the two
    /// are read under the cell lock, so they always correspond.
    #[must_use]
    pub fn load(&self) -> (Arc<T>, u64) {
        let guard = self.snap.lock();
        let snap = Arc::clone(&guard);
        let epoch = self.epoch.load(Ordering::Acquire); // ordering: epoch-acquire
        (snap, epoch)
    }

    /// The published epoch (bumps once per committed update).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire) // ordering: epoch-acquire
    }

    /// Publish a successor snapshot built from the current one, bumping
    /// the epoch. The cell lock is held across read-build-swap (see the
    /// type docs); loads observe either the full predecessor or the
    /// full successor, never a half-built state.
    pub fn update<R>(&self, f: impl FnOnce(&T) -> (T, R)) -> R {
        let mut guard = self.snap.lock();
        let (next, out) = f(&guard);
        *guard = Arc::new(next);
        self.epoch.fetch_add(1, Ordering::Release); // ordering: epoch-release
        out
    }
}

/// One online mutation of the served table, in global-row coordinates.
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// Program `word` into a fresh row of the least-loaded shard.
    Insert(TernaryWord),
    /// Re-program global row `row` with `word`.
    Update {
        /// Global row id to overwrite.
        row: usize,
        /// Replacement word.
        word: TernaryWord,
    },
    /// Retire global row `row`. Slot-reuse semantics: the shard's last
    /// local row moves into the freed slot, so that row's *global id
    /// changes* — callers tracking ids must re-resolve after a delete.
    Delete {
        /// Global row id to remove.
        row: usize,
    },
}

/// What one [`WriteOp`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteAck {
    /// Insert landed; the new row's global id.
    Inserted {
        /// Assigned global slot id.
        row: usize,
    },
    /// Update/delete applied to its addressed row.
    Applied,
    /// The addressed global row did not exist; nothing changed.
    OutOfRange,
}

/// The served table: one [`EpochCell`] per shard, accepting online
/// writes while searches run against captured [`SnapView`]s.
#[derive(Debug)]
pub struct LiveTable {
    width: usize,
    cells: Vec<EpochCell<ShardSnap>>,
    /// Serializes write *planning* across dispatchers: least-loaded
    /// insert placement and delete's moved-row bookkeeping read shard
    /// lengths that must not race another writer's commits.
    write_order: Mutex<()>,
    metrics: Option<SearchMetrics>,
    write_metrics: Option<RowWriteMetrics>,
}

impl LiveTable {
    /// Empty live table of `width`-digit words over `shards` cells.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn new(width: usize, shards: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        Self {
            width,
            cells: (0..shards)
                .map(|_| EpochCell::new(ShardSnap::new(width)))
                .collect(),
            write_order: Mutex::new("serve.table.write", ()),
            metrics: None,
            write_metrics: None,
        }
    }

    /// Convert a built table into its served (write-accepting) form,
    /// carrying over both metric attachments.
    #[must_use]
    pub fn from_sharded(table: &ShardedTcam) -> Self {
        Self {
            width: table.width(),
            cells: (0..table.shard_count())
                .map(|s| EpochCell::new(ShardSnap::from_tcam(table.shard(s))))
                .collect(),
            write_order: Mutex::new("serve.table.write", ()),
            metrics: table.metrics().cloned(),
            write_metrics: table.write_metrics().copied(),
        }
    }

    /// Word width in digits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// Attach the calibrated 3-step program figures pricing writes.
    pub fn attach_write_metrics(&mut self, metrics: RowWriteMetrics) {
        self.write_metrics = Some(metrics);
    }

    /// The attached write-pricing metrics, if any.
    #[must_use]
    pub fn write_metrics(&self) -> Option<&RowWriteMetrics> {
        self.write_metrics.as_ref()
    }

    /// The shard a key-partitioned query belongs to.
    #[must_use]
    pub fn route(&self, query: &[bool]) -> usize {
        (hash_bits(query) % self.cells.len() as u64) as usize
    }

    /// [`Self::route`] for a packed query — identical routing.
    #[must_use]
    pub fn route_packed(&self, query: &PackedQuery) -> usize {
        (hash_packed(query) % self.cells.len() as u64) as usize
    }

    /// Inverse of the global interleave: `(shard, local)`.
    #[must_use]
    pub fn locate(&self, global: usize) -> (usize, usize) {
        (global % self.cells.len(), global / self.cells.len())
    }

    /// Per-shard write epochs, in shard order.
    #[must_use]
    pub fn epochs(&self) -> Vec<u64> {
        self.cells.iter().map(EpochCell::epoch).collect()
    }

    /// Capture an immutable view of every shard for one batch.
    #[must_use]
    pub fn snapshot(&self) -> SnapView {
        let mut shards = Vec::with_capacity(self.cells.len());
        let mut epochs = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            let (snap, epoch) = cell.load();
            shards.push(snap);
            epochs.push(epoch);
        }
        SnapView {
            width: self.width,
            shards,
            epochs,
            metrics: self.metrics.clone(),
        }
    }

    /// Commit one ordered batch of writes. Ops are planned into
    /// per-shard slices under the write-order lock, then each touched
    /// shard publishes exactly one successor snapshot (one epoch bump
    /// per shard per batch, however many ops landed on it).
    ///
    /// Returns one [`WriteAck`] per op, in op order.
    ///
    /// # Panics
    /// Panics on a word-width mismatch (programmer error, consistent
    /// with the core layer).
    pub fn apply(&self, ops: &[WriteOp]) -> Vec<WriteAck> {
        let _order = self.write_order.lock();
        let n = self.cells.len();
        let mut lens: Vec<usize> = self.cells.iter().map(|c| c.load().0.rows()).collect();
        let mut plans: Vec<Vec<LocalOp>> = vec![Vec::new(); n];
        let mut acks = Vec::with_capacity(ops.len());
        for op in ops {
            match op {
                WriteOp::Insert(word) => {
                    assert_eq!(word.len(), self.width, "row width mismatch");
                    let s = (0..n)
                        .min_by_key(|&s| (lens[s], s))
                        .expect("at least one shard");
                    let local = lens[s];
                    plans[s].push(LocalOp::Push(word.clone()));
                    lens[s] += 1;
                    acks.push(WriteAck::Inserted { row: local * n + s });
                }
                WriteOp::Update { row, word } => {
                    assert_eq!(word.len(), self.width, "row width mismatch");
                    let (s, l) = (row % n, row / n);
                    if l < lens[s] {
                        plans[s].push(LocalOp::Write(l, word.clone()));
                        acks.push(WriteAck::Applied);
                    } else {
                        acks.push(WriteAck::OutOfRange);
                    }
                }
                WriteOp::Delete { row } => {
                    let (s, l) = (row % n, row / n);
                    if l < lens[s] {
                        plans[s].push(LocalOp::SwapRemove(l));
                        lens[s] -= 1;
                        acks.push(WriteAck::Applied);
                    } else {
                        acks.push(WriteAck::OutOfRange);
                    }
                }
            }
        }
        for (s, plan) in plans.iter().enumerate() {
            if plan.is_empty() {
                continue;
            }
            self.cells[s].update(|snap| {
                let mut next = snap.clone();
                next.apply(plan);
                (next, ())
            });
        }
        acks
    }
}

/// An immutable view of every shard, captured at one instant by
/// [`LiveTable::snapshot`]. A dispatcher executes a whole batch against
/// one view, so a search can never observe a torn word — it sees each
/// shard exactly as of that shard's recorded epoch. The accessors
/// mirror [`ShardedTcam`]'s so the execution backends are agnostic to
/// whether the table is live.
#[derive(Debug, Clone)]
pub struct SnapView {
    width: usize,
    shards: Vec<Arc<ShardSnap>>,
    epochs: Vec<u64>,
    metrics: Option<SearchMetrics>,
}

impl SnapView {
    /// Word width in digits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total stored rows across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.rows()).sum()
    }

    /// Whether no rows are stored anywhere.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// One shard's snapshot.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn shard(&self, shard: usize) -> &ShardSnap {
        &self.shards[shard]
    }

    /// The per-shard write epochs this view was captured at.
    #[must_use]
    pub fn epochs(&self) -> &[u64] {
        &self.epochs
    }

    /// The attached circuit metrics, if any.
    #[must_use]
    pub fn metrics(&self) -> Option<&SearchMetrics> {
        self.metrics.as_ref()
    }

    /// Global slot id of a shard-local row: `local * n + shard`.
    #[must_use]
    pub fn global_row(&self, shard: usize, local: usize) -> usize {
        local * self.shards.len() + shard
    }

    /// Inverse of [`Self::global_row`]: `(shard, local)`.
    #[must_use]
    pub fn locate(&self, global: usize) -> (usize, usize) {
        (global % self.shards.len(), global / self.shards.len())
    }

    /// [`ShardedTcam::route_packed`] over this view's shard count.
    #[must_use]
    pub fn route_packed(&self, query: &PackedQuery) -> usize {
        (hash_packed(query) % self.shards.len() as u64) as usize
    }

    /// Energy (J) of a search per the early-termination model; `None`
    /// without attached metrics. See [`ShardedTcam::energy_of`].
    #[must_use]
    pub fn energy_of(&self, outcome: &SearchOutcome) -> Option<f64> {
        let m = self.metrics.as_ref()?;
        let e1 = m.energy_1step;
        let e2 = m.energy_2step.unwrap_or(m.energy_1step);
        Some(outcome.step1_misses as f64 * e1 + outcome.survivors() as f64 * e2)
    }

    /// Unloaded per-search silicon latency (s) from the attached
    /// metrics.
    #[must_use]
    pub fn model_latency(&self) -> Option<f64> {
        self.metrics.as_ref().map(SearchMetrics::latency)
    }

    /// Energy (J) of a full-parallel drive over `rows` rows (the
    /// approximate-match figure). See
    /// [`ShardedTcam::energy_full_parallel`].
    #[must_use]
    pub fn energy_full_parallel(&self, rows: usize) -> Option<f64> {
        let m = self.metrics.as_ref()?;
        Some(rows as f64 * m.energy_2step.unwrap_or(m.energy_1step))
    }

    /// Energy (J) of one answered request by kind. Write kinds return
    /// `None` here — they are priced by the 3-step program figures
    /// ([`LiveTable::write_metrics`]), not by a search model.
    #[must_use]
    pub fn energy_of_kind(&self, kind: RequestKind, outcome: &SearchOutcome) -> Option<f64> {
        match kind {
            RequestKind::Exact => self.energy_of(outcome),
            k if k.is_write() => None,
            _ => self.energy_full_parallel(outcome.rows_examined()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrotcam::DesignKind;

    fn metrics() -> SearchMetrics {
        SearchMetrics {
            design: DesignKind::T15Dg,
            word_len: 8,
            latency_1step: 200e-12,
            latency_2step: Some(450e-12),
            energy_1step: 1e-15,
            energy_2step: Some(2e-15),
        }
    }

    fn words() -> Vec<TernaryWord> {
        (0..12u64)
            .map(|i| TernaryWord::from_u64(i * 7, 8))
            .collect()
    }

    #[test]
    fn fanout_matches_unsharded_reference() {
        let mut reference = BehavioralTcam::new(8);
        let mut sharded = ShardedTcam::new(8, 3);
        for w in words() {
            let global = sharded.store(w.clone());
            let row = reference.store(w);
            assert_eq!(global, row, "round-robin fill keeps insertion ids");
        }
        for q in [0u64, 7, 21, 77, 255] {
            let query: Vec<bool> = (0..8).rev().map(|b| (q >> b) & 1 == 1).collect();
            let merged = sharded.search_all(&query);
            let flat = reference.search(&query);
            assert_eq!(merged.matches, flat.matches, "query {q}");
            assert_eq!(merged.step1_misses, flat.step1_misses);
            assert_eq!(merged.step2_misses, flat.step2_misses);
        }
    }

    #[test]
    fn energy_is_shard_invariant() {
        let query: Vec<bool> = (0..8).map(|i| i % 3 == 0).collect();
        let mut energies = Vec::new();
        for n in [1usize, 2, 3, 4] {
            let mut t = ShardedTcam::new(8, n);
            for w in words() {
                t.store(w);
            }
            t.attach_metrics(metrics());
            let out = t.search_all(&query);
            energies.push(t.energy_of(&out).unwrap());
        }
        for e in &energies[1..] {
            assert!((e - energies[0]).abs() < 1e-30, "{energies:?}");
        }
    }

    #[test]
    fn energy_matches_fom_average_formula() {
        let mut t = ShardedTcam::new(8, 2);
        for w in words() {
            t.store(w);
        }
        t.attach_metrics(metrics());
        let query: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        let out = t.search_all(&query);
        let rows = t.len() as f64;
        let standalone = rows * metrics().energy_avg(out.step1_miss_rate());
        let served = t.energy_of(&out).unwrap();
        assert!(
            (served - standalone).abs() < 1e-9 * standalone.max(1e-30),
            "served {served:.6e} vs fom {standalone:.6e}"
        );
    }

    #[test]
    fn routing_is_deterministic_and_spread() {
        let t = ShardedTcam::new(16, 4);
        let mut seen = [0usize; 4];
        for i in 0..256u64 {
            let bits: Vec<bool> = (0..16).rev().map(|b| (i >> b) & 1 == 1).collect();
            let s = t.route(&bits);
            assert_eq!(s, t.route(&bits), "routing must be stable");
            seen[s] += 1;
        }
        assert!(
            seen.iter().all(|&c| c > 20),
            "hash routing badly skewed: {seen:?}"
        );
    }

    #[test]
    fn hash_packed_equals_hash_bits() {
        let mut seed = 0x5eed_5eed_5eed_5eedu64;
        // Widths straddling the 64-bit fold boundary: empty, partial
        // tail, exactly one word, one word + tail, multiple words.
        for width in [0usize, 1, 7, 63, 64, 65, 100, 128, 129, 300] {
            for _ in 0..8 {
                let bits: Vec<bool> = (0..width)
                    .map(|_| split_mix64(&mut seed) & 1 == 1)
                    .collect();
                let packed = PackedQuery::from_bits(&bits);
                assert_eq!(
                    hash_packed(&packed),
                    hash_bits(&bits),
                    "width {width}: packed and boolean hashes must agree"
                );
            }
        }
        let t = ShardedTcam::new(65, 5);
        for _ in 0..32 {
            let bits: Vec<bool> = (0..65).map(|_| split_mix64(&mut seed) & 1 == 1).collect();
            assert_eq!(
                t.route_packed(&PackedQuery::from_bits(&bits)),
                t.route(&bits)
            );
        }
    }

    #[test]
    fn global_row_roundtrip() {
        let mut t = ShardedTcam::new(4, 3);
        for i in 0..7u64 {
            t.store(TernaryWord::from_u64(i, 4));
        }
        for g in 0..7 {
            let (s, l) = t.locate(g);
            assert_eq!(t.global_row(s, l), g);
            assert!(t.shard(s).row(l).is_some());
        }
    }

    fn rand_word(seed: &mut u64, width: usize) -> TernaryWord {
        use ferrotcam::Ternary;
        let digits = (0..width)
            .map(|_| match split_mix64(seed) % 3 {
                0 => Ternary::Zero,
                1 => Ternary::One,
                _ => Ternary::X,
            })
            .collect();
        TernaryWord::new(digits)
    }

    fn bits(v: u64, width: usize) -> Vec<bool> {
        (0..width).rev().map(|b| (v >> b) & 1 == 1).collect()
    }

    #[test]
    fn live_writes_update_searches_and_old_views_stay_frozen() {
        let mut sharded = ShardedTcam::new(8, 2);
        for w in words() {
            sharded.store(w);
        }
        let live = LiveTable::from_sharded(&sharded);
        let before = live.snapshot();
        assert_eq!(before.len(), 12);
        assert_eq!(before.epochs(), &[0, 0]);

        let probe = PackedQuery::from_bits(&bits(0xAB, 8));
        let miss_everywhere =
            |v: &SnapView| (0..2).all(|s| v.shard(s).search(&probe).matches.is_empty());
        assert!(miss_everywhere(&before), "probe must start absent");

        let acks = live.apply(&[WriteOp::Insert(TernaryWord::from_u64(0xAB, 8))]);
        let [WriteAck::Inserted { row }] = acks[..] else {
            panic!("insert must ack with a slot id, got {acks:?}");
        };
        let after = live.snapshot();
        let (s, l) = live.locate(row);
        assert_eq!(after.shard(s).search(&probe).matches, vec![l]);
        assert!(
            miss_everywhere(&before),
            "the view captured before the write must stay frozen"
        );
        assert_eq!(before.epochs(), &[0, 0]);
        // Only the shard that took the insert bumped its epoch.
        let bumped: Vec<u64> = (0..2).map(|i| after.epochs()[i]).collect();
        assert_eq!(bumped.iter().sum::<u64>(), 1);
        assert_eq!(bumped[s], 1);

        // Update then delete through global ids, re-checking both views.
        live.apply(&[WriteOp::Update {
            row,
            word: TernaryWord::from_u64(0xCD, 8),
        }]);
        let updated = live.snapshot();
        assert!(updated.shard(s).search(&probe).matches.is_empty());
        assert_eq!(
            updated
                .shard(s)
                .search(&PackedQuery::from_bits(&bits(0xCD, 8)))
                .matches,
            vec![l]
        );
        assert_eq!(after.shard(s).search(&probe).matches, vec![l]);
        assert_eq!(updated.epochs()[s], 2);
    }

    #[test]
    fn successor_snapshots_share_untouched_blocks() {
        let live = LiveTable::new(8, 1);
        let rows = BLOCK_ROWS + 100;
        let ops: Vec<WriteOp> = (0..rows)
            .map(|i| WriteOp::Insert(TernaryWord::from_u64(i as u64, 8)))
            .collect();
        live.apply(&ops);
        let before = live.snapshot();
        live.apply(&[WriteOp::Update {
            row: 0,
            word: TernaryWord::from_u64(0xFF, 8),
        }]);
        let after = live.snapshot();
        let old: Vec<_> = before.shard(0).blocks().collect();
        let new: Vec<_> = after.shard(0).blocks().collect();
        assert_eq!(old.len(), 2);
        assert_eq!(new.len(), 2);
        assert!(
            !std::ptr::eq(old[0].1, new[0].1),
            "the written block must be copied"
        );
        assert!(
            std::ptr::eq(old[1].1, new[1].1),
            "the untouched block must be shared with the predecessor"
        );
    }

    #[test]
    fn inserts_fill_the_least_loaded_shard_and_ids_roundtrip() {
        let live = LiveTable::new(4, 3);
        let mut ids = Vec::new();
        for i in 0..9u64 {
            let acks = live.apply(&[WriteOp::Insert(TernaryWord::from_u64(i, 4))]);
            let [WriteAck::Inserted { row }] = acks[..] else {
                panic!("expected an inserted ack");
            };
            ids.push(row);
        }
        // Least-loaded placement with the shard-id tie-break fills
        // round-robin from empty, so ids are dense.
        assert_eq!(ids, (0..9).collect::<Vec<_>>());
        let view = live.snapshot();
        for (i, &g) in ids.iter().enumerate() {
            let (s, l) = view.locate(g);
            assert_eq!(view.global_row(s, l), g);
            assert_eq!(
                view.shard(s).row_word(l),
                TernaryWord::from_u64(i as u64, 4)
            );
        }
    }

    #[test]
    fn delete_moves_the_last_local_row_into_the_freed_slot() {
        let live = LiveTable::new(8, 1);
        // Span two blocks so the moved row crosses a block boundary.
        let rows = BLOCK_ROWS + 3;
        let ops: Vec<WriteOp> = (0..rows)
            .map(|i| WriteOp::Insert(TernaryWord::from_u64(i as u64, 8)))
            .collect();
        live.apply(&ops);
        let acks = live.apply(&[WriteOp::Delete { row: 1 }]);
        assert_eq!(acks, vec![WriteAck::Applied]);
        let view = live.snapshot();
        assert_eq!(view.len(), rows - 1);
        // The last row (first block 1 tail) moved into slot 1.
        assert_eq!(
            view.shard(0).row_word(1),
            TernaryWord::from_u64((rows - 1) as u64, 8)
        );
        // Deleting down past the block boundary drops the empty block.
        let drops: Vec<WriteOp> = (0..3).map(|_| WriteOp::Delete { row: 0 }).collect();
        live.apply(&drops);
        let trimmed = live.snapshot();
        assert_eq!(trimmed.len(), BLOCK_ROWS - 1);
        assert_eq!(trimmed.shard(0).blocks().count(), 1);
    }

    #[test]
    fn out_of_range_writes_are_acknowledged_not_applied() {
        let live = LiveTable::new(4, 2);
        live.apply(&[
            WriteOp::Insert(TernaryWord::from_u64(1, 4)),
            WriteOp::Insert(TernaryWord::from_u64(2, 4)),
        ]);
        let before = live.snapshot();
        let acks = live.apply(&[
            WriteOp::Update {
                row: 99,
                word: TernaryWord::from_u64(3, 4),
            },
            WriteOp::Delete { row: 42 },
        ]);
        assert_eq!(acks, vec![WriteAck::OutOfRange, WriteAck::OutOfRange]);
        let after = live.snapshot();
        assert_eq!(after.epochs(), before.epochs(), "no shard may bump");
        assert_eq!(after.len(), 2);
    }

    #[test]
    fn random_write_batches_match_a_scalar_mirror() {
        let width = 10;
        let shards = 3;
        let live = LiveTable::new(width, shards);
        let mut mirror: Vec<Vec<TernaryWord>> = vec![Vec::new(); shards];
        let mut seed = 0x5eed_dac2_2023u64;
        for round in 0..40 {
            let mut batch = Vec::new();
            for _ in 0..split_mix64(&mut seed) % 6 + 1 {
                let total: usize = mirror.iter().map(Vec::len).sum();
                match split_mix64(&mut seed) % 4 {
                    0 | 1 => batch.push(WriteOp::Insert(rand_word(&mut seed, width))),
                    2 if total > 0 => {
                        let row = (split_mix64(&mut seed) % (2 * total as u64)) as usize;
                        batch.push(WriteOp::Update {
                            row,
                            word: rand_word(&mut seed, width),
                        });
                    }
                    _ if total > 0 => {
                        let row = (split_mix64(&mut seed) % (2 * total as u64)) as usize;
                        batch.push(WriteOp::Delete { row });
                    }
                    _ => batch.push(WriteOp::Insert(rand_word(&mut seed, width))),
                }
            }
            // Mirror the batch with the documented semantics.
            for op in &batch {
                match op {
                    WriteOp::Insert(word) => {
                        let s = (0..shards)
                            .min_by_key(|&s| (mirror[s].len(), s))
                            .expect("shards > 0");
                        mirror[s].push(word.clone());
                    }
                    WriteOp::Update { row, word } => {
                        let (s, l) = (row % shards, row / shards);
                        if l < mirror[s].len() {
                            mirror[s][l] = word.clone();
                        }
                    }
                    WriteOp::Delete { row } => {
                        let (s, l) = (row % shards, row / shards);
                        if l < mirror[s].len() {
                            mirror[s].swap_remove(l);
                        }
                    }
                }
            }
            live.apply(&batch);
            let view = live.snapshot();
            for (s, rows) in mirror.iter().enumerate() {
                let snap = view.shard(s);
                assert_eq!(snap.rows(), rows.len(), "round {round} shard {s}");
                let mut reference = BehavioralTcam::new(width);
                for (l, w) in rows.iter().enumerate() {
                    assert_eq!(&snap.row_word(l), w, "round {round} shard {s} row {l}");
                    reference.store(w.clone());
                }
                let q = bits(split_mix64(&mut seed), width);
                let got = snap.search(&PackedQuery::from_bits(&q));
                let want = reference.search(&q);
                assert_eq!(got.matches, want.matches, "round {round} shard {s}");
                assert_eq!(got.step1_misses, want.step1_misses);
                assert_eq!(got.step2_misses, want.step2_misses);
                // Range tables stay current with the rows (even width).
                for (_, blk) in snap.blocks() {
                    let rebuilt = RangeRows::from_packed(blk.packed());
                    let probe = PackedQuery::from_bits(&q);
                    assert_eq!(
                        blk.ranges().expect("even width has ranges").search(&probe),
                        rebuilt.search(&probe),
                        "round {round} shard {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn epoch_cell_pairs_load_consistently() {
        let cell = EpochCell::new((0u64, 0u64));
        for i in 1..=10u64 {
            let prev = cell.epoch();
            let echoed = cell.update(|&(a, _)| ((a + 1, a + 1), a + 1));
            assert_eq!(echoed, i);
            let (snap, epoch) = cell.load();
            assert_eq!(*snap, (i, i), "payload halves must agree");
            assert_eq!(epoch, prev + 1, "every update bumps exactly once");
        }
    }

    #[test]
    fn from_sharded_carries_rows_and_metric_attachments() {
        let mut sharded = ShardedTcam::new(8, 2);
        for w in words() {
            sharded.store(w);
        }
        sharded.attach_metrics(metrics());
        let wm = RowWriteMetrics {
            design: DesignKind::T15Dg,
            word_len: 8,
            energy_per_cell: 0.3816e-15,
            energy: 8.0 * 0.3816e-15,
            latency: 1.15e-9,
        };
        sharded.attach_write_metrics(wm);
        let live = LiveTable::from_sharded(&sharded);
        assert_eq!(live.width(), 8);
        assert_eq!(live.shard_count(), 2);
        assert_eq!(live.write_metrics(), Some(&wm));
        let view = live.snapshot();
        assert_eq!(view.len(), sharded.len());
        for g in 0..sharded.len() {
            let (s, l) = view.locate(g);
            assert_eq!(
                Some(&view.shard(s).row_word(l)),
                sharded.shard(s).row(l),
                "row {g}"
            );
        }
        assert_eq!(view.metrics(), sharded.metrics());
        // The view prices searches exactly like the built table.
        let q = bits(0x15, 8);
        let outcome = sharded.search_all(&q);
        assert_eq!(view.energy_of(&outcome), sharded.energy_of(&outcome));
        assert_eq!(
            view.energy_of_kind(RequestKind::Insert, &outcome),
            None,
            "writes are priced by the program model, not the search model"
        );
    }
}
