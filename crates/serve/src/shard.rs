//! Sharding a large ternary table across TCAM banks.
//!
//! A serving-scale table does not fit one subarray, so rows are spread
//! over `n` behavioural shards, each standing for a physical bank with
//! its own match lines and priority encoder. Two access patterns are
//! supported, mirroring `ferrotcam_arch::sched::Query::bank`:
//!
//! * **fan-out** — the query searches every shard and the per-shard
//!   match sets merge into one global result (row-partitioned tables,
//!   e.g. LPM);
//! * **partitioned** — a hash routes the query to exactly one shard
//!   (key-partitioned tables, e.g. exact-match filters), so capacity
//!   scales with the shard count.
//!
//! Energy accounting is *energy-true*: with per-row circuit metrics
//! attached (from [`ferrotcam::fom::characterize_search`]), the energy
//! charged to a query is exactly the Table IV early-termination figure
//! — `step-1 misses × E₁ + surviving rows × E₂` — and, because that sum
//! is linear over rows, sharding never changes the total a query would
//! have burned on the unsharded array.

use ferrotcam::fom::SearchMetrics;
use ferrotcam::{BehavioralTcam, PackedQuery, SearchOutcome, TernaryWord};
use rand::split_mix64;

/// A ternary table split across `n` behavioural shards.
#[derive(Debug, Clone)]
pub struct ShardedTcam {
    width: usize,
    shards: Vec<BehavioralTcam>,
    metrics: Option<SearchMetrics>,
}

/// Deterministic SplitMix64 hash of a query bit-pattern, used for
/// shard routing and load generation.
#[must_use]
pub fn hash_bits(bits: &[bool]) -> u64 {
    let mut state = 0x9E37_79B9_7F4A_7C15 ^ bits.len() as u64;
    let mut acc = 0u64;
    let mut n = 0u32;
    for &b in bits {
        acc = (acc << 1) | u64::from(b);
        n += 1;
        if n == 64 {
            state ^= acc;
            let _ = split_mix64(&mut state);
            acc = 0;
            n = 0;
        }
    }
    state ^= acc ^ u64::from(n);
    split_mix64(&mut state)
}

/// [`hash_bits`] over a bit-packed query, without unpacking: produces
/// the *same* hash as `hash_bits(&q.to_bits())`, so packed and boolean
/// submission paths route identically. The MSB-first fold of
/// `hash_bits` corresponds to `u64::reverse_bits` on each LSB-first
/// packed word (a partial tail of `n` bits lands right-aligned after
/// an extra `64 - n` shift).
#[must_use]
pub fn hash_packed(q: &PackedQuery) -> u64 {
    let width = q.width();
    let mut state = 0x9E37_79B9_7F4A_7C15 ^ width as u64;
    let full = width / 64;
    for w in 0..full {
        state ^= q.word(w).reverse_bits();
        let _ = split_mix64(&mut state);
    }
    let tail = (width % 64) as u32;
    let acc = if tail == 0 {
        0
    } else {
        q.word(full).reverse_bits() >> (64 - tail)
    };
    state ^= acc ^ u64::from(tail);
    split_mix64(&mut state)
}

impl ShardedTcam {
    /// Empty table of `width`-digit words over `shards` banks.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn new(width: usize, shards: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        Self {
            width,
            shards: (0..shards).map(|_| BehavioralTcam::new(width)).collect(),
            metrics: None,
        }
    }

    /// Word width in digits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total stored rows across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(BehavioralTcam::len).sum()
    }

    /// Whether no rows are stored anywhere.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(BehavioralTcam::is_empty)
    }

    /// One shard's contents.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn shard(&self, shard: usize) -> &BehavioralTcam {
        &self.shards[shard]
    }

    /// Attach the per-row circuit figures of merit that turn search
    /// statistics into Joules.
    pub fn attach_metrics(&mut self, metrics: SearchMetrics) {
        self.metrics = Some(metrics);
    }

    /// The attached circuit metrics, if any.
    #[must_use]
    pub fn metrics(&self) -> Option<&SearchMetrics> {
        self.metrics.as_ref()
    }

    /// Global slot id of a shard-local row: `local * n + shard`. For
    /// balanced (round-robin) fills this equals the insertion order.
    #[must_use]
    pub fn global_row(&self, shard: usize, local: usize) -> usize {
        local * self.shards.len() + shard
    }

    /// Inverse of [`Self::global_row`]: `(shard, local)`.
    #[must_use]
    pub fn locate(&self, global: usize) -> (usize, usize) {
        (global % self.shards.len(), global / self.shards.len())
    }

    /// Store a word in the least-loaded shard (round-robin for
    /// balanced fills); returns the global slot id.
    ///
    /// # Panics
    /// Panics on word-width mismatch.
    pub fn store(&mut self, word: TernaryWord) -> usize {
        let shard = (0..self.shards.len())
            .min_by_key(|&s| (self.shards[s].len(), s))
            .expect("at least one shard");
        self.store_in(shard, word)
    }

    /// Store a word in a specific shard (key-partitioned tables route
    /// with [`Self::route`]); returns the global slot id.
    ///
    /// # Panics
    /// Panics on width mismatch or `shard` out of range.
    pub fn store_in(&mut self, shard: usize, word: TernaryWord) -> usize {
        let local = self.shards[shard].store(word);
        self.global_row(shard, local)
    }

    /// The shard a key-partitioned query belongs to.
    #[must_use]
    pub fn route(&self, query: &[bool]) -> usize {
        (hash_bits(query) % self.shards.len() as u64) as usize
    }

    /// [`Self::route`] for a packed query — identical routing, no
    /// unpack.
    #[must_use]
    pub fn route_packed(&self, query: &PackedQuery) -> usize {
        (hash_packed(query) % self.shards.len() as u64) as usize
    }

    /// Search one shard; matches come back as *global* slot ids.
    ///
    /// # Panics
    /// Panics on width mismatch or `shard` out of range.
    #[must_use]
    pub fn search_shard(&self, shard: usize, query: &[bool]) -> SearchOutcome {
        let mut out = self.shards[shard].search(query);
        for m in &mut out.matches {
            *m = self.global_row(shard, *m);
        }
        out
    }

    /// Fan-out search of every shard, merged into one outcome with
    /// globally ascending match ids.
    ///
    /// # Panics
    /// Panics on query-width mismatch.
    #[must_use]
    pub fn search_all(&self, query: &[bool]) -> SearchOutcome {
        let mut merged = SearchOutcome::empty();
        for s in 0..self.shards.len() {
            merged.absorb(self.search_shard(s, query));
        }
        merged.matches.sort_unstable();
        merged
    }

    /// Energy (J) a search with these statistics burned, per the
    /// paper's early-termination model: every step-1 miss pays the
    /// one-step row energy, every surviving row the full two-step
    /// figure. `None` without attached metrics.
    ///
    /// Equals `rows × SearchMetrics::energy_avg(measured miss rate)`
    /// by construction, so responses can be audited against the
    /// standalone `core::fom` number.
    #[must_use]
    pub fn energy_of(&self, outcome: &SearchOutcome) -> Option<f64> {
        let m = self.metrics.as_ref()?;
        let e1 = m.energy_1step;
        let e2 = m.energy_2step.unwrap_or(m.energy_1step);
        Some(outcome.step1_misses as f64 * e1 + outcome.survivors() as f64 * e2)
    }

    /// Unloaded per-search silicon latency (s) from the attached
    /// metrics.
    #[must_use]
    pub fn model_latency(&self) -> Option<f64> {
        self.metrics.as_ref().map(SearchMetrics::latency)
    }

    /// Energy (J) of a full-parallel drive over `rows` rows — the
    /// approximate-match figure. Distance and range sensing race every
    /// match line to the sense moment, so no row early-terminates:
    /// each pays the full two-step row energy.
    #[must_use]
    pub fn energy_full_parallel(&self, rows: usize) -> Option<f64> {
        let m = self.metrics.as_ref()?;
        Some(rows as f64 * m.energy_2step.unwrap_or(m.energy_1step))
    }

    /// Energy (J) of one answered request: early-termination
    /// accounting ([`Self::energy_of`]) for exact matches,
    /// full-parallel accounting for the approximate kinds.
    #[must_use]
    pub fn energy_of_kind(
        &self,
        kind: crate::request::RequestKind,
        outcome: &SearchOutcome,
    ) -> Option<f64> {
        match kind {
            crate::request::RequestKind::Exact => self.energy_of(outcome),
            _ => self.energy_full_parallel(outcome.rows_examined()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrotcam::DesignKind;

    fn metrics() -> SearchMetrics {
        SearchMetrics {
            design: DesignKind::T15Dg,
            word_len: 8,
            latency_1step: 200e-12,
            latency_2step: Some(450e-12),
            energy_1step: 1e-15,
            energy_2step: Some(2e-15),
        }
    }

    fn words() -> Vec<TernaryWord> {
        (0..12u64)
            .map(|i| TernaryWord::from_u64(i * 7, 8))
            .collect()
    }

    #[test]
    fn fanout_matches_unsharded_reference() {
        let mut reference = BehavioralTcam::new(8);
        let mut sharded = ShardedTcam::new(8, 3);
        for w in words() {
            let global = sharded.store(w.clone());
            let row = reference.store(w);
            assert_eq!(global, row, "round-robin fill keeps insertion ids");
        }
        for q in [0u64, 7, 21, 77, 255] {
            let query: Vec<bool> = (0..8).rev().map(|b| (q >> b) & 1 == 1).collect();
            let merged = sharded.search_all(&query);
            let flat = reference.search(&query);
            assert_eq!(merged.matches, flat.matches, "query {q}");
            assert_eq!(merged.step1_misses, flat.step1_misses);
            assert_eq!(merged.step2_misses, flat.step2_misses);
        }
    }

    #[test]
    fn energy_is_shard_invariant() {
        let query: Vec<bool> = (0..8).map(|i| i % 3 == 0).collect();
        let mut energies = Vec::new();
        for n in [1usize, 2, 3, 4] {
            let mut t = ShardedTcam::new(8, n);
            for w in words() {
                t.store(w);
            }
            t.attach_metrics(metrics());
            let out = t.search_all(&query);
            energies.push(t.energy_of(&out).unwrap());
        }
        for e in &energies[1..] {
            assert!((e - energies[0]).abs() < 1e-30, "{energies:?}");
        }
    }

    #[test]
    fn energy_matches_fom_average_formula() {
        let mut t = ShardedTcam::new(8, 2);
        for w in words() {
            t.store(w);
        }
        t.attach_metrics(metrics());
        let query: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        let out = t.search_all(&query);
        let rows = t.len() as f64;
        let standalone = rows * metrics().energy_avg(out.step1_miss_rate());
        let served = t.energy_of(&out).unwrap();
        assert!(
            (served - standalone).abs() < 1e-9 * standalone.max(1e-30),
            "served {served:.6e} vs fom {standalone:.6e}"
        );
    }

    #[test]
    fn routing_is_deterministic_and_spread() {
        let t = ShardedTcam::new(16, 4);
        let mut seen = [0usize; 4];
        for i in 0..256u64 {
            let bits: Vec<bool> = (0..16).rev().map(|b| (i >> b) & 1 == 1).collect();
            let s = t.route(&bits);
            assert_eq!(s, t.route(&bits), "routing must be stable");
            seen[s] += 1;
        }
        assert!(
            seen.iter().all(|&c| c > 20),
            "hash routing badly skewed: {seen:?}"
        );
    }

    #[test]
    fn hash_packed_equals_hash_bits() {
        let mut seed = 0x5eed_5eed_5eed_5eedu64;
        // Widths straddling the 64-bit fold boundary: empty, partial
        // tail, exactly one word, one word + tail, multiple words.
        for width in [0usize, 1, 7, 63, 64, 65, 100, 128, 129, 300] {
            for _ in 0..8 {
                let bits: Vec<bool> = (0..width)
                    .map(|_| split_mix64(&mut seed) & 1 == 1)
                    .collect();
                let packed = PackedQuery::from_bits(&bits);
                assert_eq!(
                    hash_packed(&packed),
                    hash_bits(&bits),
                    "width {width}: packed and boolean hashes must agree"
                );
            }
        }
        let t = ShardedTcam::new(65, 5);
        for _ in 0..32 {
            let bits: Vec<bool> = (0..65).map(|_| split_mix64(&mut seed) & 1 == 1).collect();
            assert_eq!(
                t.route_packed(&PackedQuery::from_bits(&bits)),
                t.route(&bits)
            );
        }
    }

    #[test]
    fn global_row_roundtrip() {
        let mut t = ShardedTcam::new(4, 3);
        for i in 0..7u64 {
            t.store(TernaryWord::from_u64(i, 4));
        }
        for g in 0..7 {
            let (s, l) = t.locate(g);
            assert_eq!(t.global_row(s, l), g);
            assert!(t.shard(s).row(l).is_some());
        }
    }
}
