//! # ferrotcam-serve
//!
//! The serving layer of the ferroTCAM workspace: a multi-tenant,
//! sharded, batched associative-search service over the behavioural
//! TCAM, with SPICE-calibrated energy and latency attribution on every
//! response.
//!
//! Where the rest of the workspace *simulates* the paper's TCAM, this
//! crate *serves* it: queries arrive concurrently from many clients,
//! pass per-tenant admission control ([`admission`]), queue in a
//! bounded lock-free ring ([`queue`]), get coalesced into per-bank
//! batches ([`batch`]), execute on sharded behavioural banks
//! ([`shard`]) through a tiered execution backend ([`backend`]) — the
//! circuit-order Spice tier or the bit-parallel behavioural tier with
//! a sampled Spice audit lane — over the `spice::parallel` worker
//! pool, and come back with the exact Table IV early-termination
//! energy the search would have burned in silicon. Load beyond
//! capacity is shed with typed
//! [`Overloaded`] errors instead of growing queues without bound, and
//! a [`ServiceMetrics`] snapshot (latency percentiles, queue depth,
//! batch sizes, shed counts, step-1 early-termination rate) exports as
//! JSON at any time.
//!
//! ```
//! use ferrotcam_serve::{ServiceConfig, ShardedTcam, TcamService};
//! use ferrotcam::TernaryWord;
//!
//! let mut table = ShardedTcam::new(8, 2);
//! for i in 0..16u64 {
//!     table.store(TernaryWord::from_u64(i, 8));
//! }
//! let service = TcamService::start(table, &ServiceConfig::default());
//! let client = service.client();
//! let query = vec![false, false, false, false, false, true, false, true];
//! let response = client.submit(0, query, None)?.wait();
//! assert_eq!(response.matches, vec![5]);
//! let metrics = service.drain();
//! assert_eq!(metrics.completed, 1);
//! # Ok::<(), ferrotcam_serve::Overloaded>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod backend;
pub mod batch;
pub mod drain;
pub mod metrics;
pub mod queue;
pub mod request;
pub mod service;
pub mod shard;
pub(crate) mod sync;

pub use admission::{Admission, Overloaded, RatePolicy, TenantId, TokenBucket};
pub use backend::{
    audit_compare, reference_search, AuditVerdict, BackendKind, BatchSpec, BehaviouralBackend,
    ExecBackend, ExecResult, SpiceBackend,
};
pub use drain::DrainGate;
pub use metrics::{
    Histogram, KindBreakdown, LatencySummary, MetricsCollector, ResponseSample, ServiceMetrics,
};
pub use queue::BoundedQueue;
pub use request::{AdmissionClass, RequestKind, KIND_COUNT};
pub use service::{SearchResponse, ServiceClient, ServiceConfig, TcamService, Ticket};
pub use shard::{hash_bits, hash_packed, ShardedTcam};
