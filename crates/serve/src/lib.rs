//! # ferrotcam-serve
//!
//! The serving layer of the ferroTCAM workspace: a multi-tenant,
//! sharded, batched associative-search service over the behavioural
//! TCAM, with SPICE-calibrated energy and latency attribution on every
//! response.
//!
//! Where the rest of the workspace *simulates* the paper's TCAM, this
//! crate *serves* it: queries and online writes arrive concurrently
//! from many clients, pass per-tenant admission control
//! ([`admission`]), queue in per-shard bounded lock-free rings
//! ([`queue`]), get coalesced into per-bank batches ([`batch`]) by
//! per-shard work-stealing dispatchers, execute on copy-on-write shard
//! snapshots ([`shard`]) through a tiered execution backend
//! ([`backend`]) — the circuit-order Spice tier or the bit-parallel
//! behavioural tier with a sampled Spice audit lane — over the
//! `spice::parallel` worker pool, and come back with the exact
//! Table IV early-termination energy the search would have burned in
//! silicon. Writes (insert / delete / update) publish fresh per-shard
//! snapshots behind an epoch counter, so an in-flight search can never
//! observe a torn word, and are priced by the calibrated 3-step
//! program. Load beyond capacity is shed with typed [`Overloaded`]
//! errors instead of growing queues without bound (and, with a
//! configured deadline, queries whose SLO already expired are shed at
//! dispatch), and a [`ServiceMetrics`] snapshot (latency percentiles,
//! queue depth, batch sizes, shed counts, step-1 early-termination
//! rate) exports as JSON at any time.
//!
//! ```
//! use ferrotcam_serve::{ServiceConfig, ShardedTcam, TcamService};
//! use ferrotcam::TernaryWord;
//!
//! let mut table = ShardedTcam::new(8, 2);
//! for i in 0..16u64 {
//!     table.store(TernaryWord::from_u64(i, 8));
//! }
//! let service = TcamService::start(table, &ServiceConfig::default());
//! let client = service.client();
//! let query = vec![false, false, false, false, false, true, false, true];
//! let response = client.submit(0, query, None)?.wait().expect("answered");
//! assert_eq!(response.matches, vec![5]);
//! // Online write: program a new word, then find it.
//! let ack = client.submit_insert(0, TernaryWord::from_u64(0xAB, 8))?.wait();
//! let slot = ack.expect("answered").matches[0];
//! let probe: Vec<bool> = (0..8).rev().map(|b| (0xABu64 >> b) & 1 == 1).collect();
//! let hit = client.submit(0, probe, None)?.wait().expect("answered");
//! assert_eq!(hit.matches, vec![slot]);
//! let metrics = service.drain();
//! assert_eq!(metrics.completed, 3);
//! # Ok::<(), ferrotcam_serve::Overloaded>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod backend;
pub mod batch;
pub mod drain;
pub mod metrics;
pub mod queue;
pub mod request;
pub mod service;
pub mod shard;
pub(crate) mod sync;

pub use admission::{Admission, Overloaded, RatePolicy, TenantId, TokenBucket};
pub use backend::{
    audit_compare, reference_search, AuditVerdict, BackendKind, BatchSpec, BehaviouralBackend,
    ExecBackend, ExecResult, SpiceBackend,
};
pub use drain::DrainGate;
pub use metrics::{
    Histogram, KindBreakdown, LatencySummary, MetricsCollector, ResponseSample, ServiceMetrics,
};
pub use queue::BoundedQueue;
pub use request::{AdmissionClass, RequestKind, KIND_COUNT};
pub use service::{SearchResponse, ServiceClient, ServiceConfig, TcamService, Ticket};
pub use shard::{
    hash_bits, hash_packed, EpochCell, LiveTable, RowBlock, ShardSnap, ShardedTcam, SnapView,
    WriteAck, WriteOp, BLOCK_ROWS,
};
