//! Service observability: latency/batch histograms and the exported
//! [`ServiceMetrics`] snapshot.
//!
//! Recording happens on the dispatcher thread (single writer) behind
//! one uncontended mutex; snapshots are cheap and can be taken from
//! any thread at any time, including while the service is loaded.

use ferrotcam_arch::sched::ScheduleOutcome;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

// The histogram now lives in the simulator's trace layer so service
// spans and engine spans share one implementation (and one unit
// discipline); re-exported here for source compatibility.
pub use ferrotcam_spice::trace::Histogram;

/// Percentile summary of a histogram, in the histogram's native unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Mean sample.
    pub mean: f64,
    /// Median (bucket upper edge).
    pub p50: f64,
    /// 95th percentile (bucket upper edge).
    pub p95: f64,
    /// 99th percentile (bucket upper edge).
    pub p99: f64,
    /// Largest sample seen.
    pub max: f64,
}

impl LatencySummary {
    /// Condensed percentile summary of `h`.
    #[must_use]
    pub fn of(h: &Histogram) -> Self {
        Self {
            count: h.count(),
            mean: h.mean(),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            max: h.max() as f64,
        }
    }
}

/// Batch-size distribution of the dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct BatchStats {
    /// Batches executed.
    pub batches: u64,
    /// Mean queries per batch.
    pub mean_size: f64,
    /// Largest batch executed.
    pub max_size: u64,
    /// Median batch size (octave resolution).
    pub p50_size: f64,
}

/// A point-in-time snapshot of everything the service measures,
/// exported as JSON for dashboards and the bench harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ServiceMetrics {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Responses delivered.
    pub completed: u64,
    /// Sheds: bounded queue was full.
    pub shed_queue_full: u64,
    /// Sheds: tenant token bucket dry.
    pub shed_rate_limited: u64,
    /// Sheds: service draining.
    pub shed_shutting_down: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Deepest queue ever observed by the dispatcher (bounded by the
    /// ring capacity — the no-unbounded-growth witness).
    pub max_queue_depth: usize,
    /// Wall-clock submit→response latency (nanoseconds).
    pub wall_latency_ns: LatencySummary,
    /// Modelled silicon latency: bank wait + search (picoseconds).
    pub model_latency_ps: LatencySummary,
    /// Dispatcher batch-size distribution.
    pub batch: BatchStats,
    /// Rows scanned across all responses.
    pub rows_searched: u64,
    /// Rows that early-terminated after step 1.
    pub step1_misses: u64,
    /// Rows that survived step 1 and missed in step 2.
    pub step2_misses: u64,
    /// Total match count across responses.
    pub matches: u64,
    /// Aggregate step-1 early-termination rate over all rows searched.
    pub step1_early_termination_rate: f64,
    /// Total silicon energy attributed to responses (J).
    pub energy_total_j: f64,
    /// Mean modelled utilization per bank over all scheduled batches.
    pub bank_utilization: Vec<f64>,
    /// Longest modelled bank wait of any query (s).
    pub max_sched_wait_s: f64,
}

impl ServiceMetrics {
    /// Pretty JSON rendering of the snapshot.
    ///
    /// # Panics
    /// Never: the struct contains only serialisable scalars.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics serialise")
    }
}

/// The accounting facts of one completed response, recorded with
/// [`MetricsCollector::on_response`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ResponseSample {
    /// Wall-clock submit→response latency (ns).
    pub wall_ns: u64,
    /// Modelled silicon latency (s), if scheduled.
    pub model_latency_s: Option<f64>,
    /// Rows scanned for this query.
    pub rows: usize,
    /// Rows early-terminated after step 1.
    pub step1_misses: usize,
    /// Rows that survived step 1 and missed in step 2.
    pub step2_misses: usize,
    /// Matching rows.
    pub matches: usize,
    /// Energy attributed (J), if metrics are attached.
    pub energy_j: Option<f64>,
}

/// Internal accumulator behind the collector's mutex.
#[derive(Debug, Default)]
struct Inner {
    submitted: u64,
    completed: u64,
    shed_queue_full: u64,
    shed_rate_limited: u64,
    shed_shutting_down: u64,
    max_queue_depth: usize,
    wall: Histogram,
    model: Histogram,
    batches: u64,
    batch_size_sum: u64,
    batch_size_max: u64,
    batch_hist: Histogram,
    rows_searched: u64,
    step1_misses: u64,
    step2_misses: u64,
    matches: u64,
    energy_total_j: f64,
    bank_busy_total: Vec<f64>,
    sched_time_total: f64,
    max_sched_wait_s: f64,
}

/// Thread-safe metrics collector shared by clients and the dispatcher.
#[derive(Debug, Default)]
pub struct MetricsCollector {
    inner: Mutex<Inner>,
}

impl MetricsCollector {
    /// Fresh collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A request was accepted into the queue, which then held `depth`
    /// items.
    pub fn on_submit(&self, depth: usize) {
        let mut m = self.inner.lock().expect("metrics lock");
        m.submitted += 1;
        m.max_queue_depth = m.max_queue_depth.max(depth);
    }

    /// A request was shed with `err`.
    pub fn on_shed(&self, err: crate::admission::Overloaded) {
        let mut m = self.inner.lock().expect("metrics lock");
        match err {
            crate::admission::Overloaded::QueueFull => m.shed_queue_full += 1,
            crate::admission::Overloaded::RateLimited { .. } => m.shed_rate_limited += 1,
            crate::admission::Overloaded::ShuttingDown => m.shed_shutting_down += 1,
        }
    }

    /// The dispatcher pulled and scheduled a batch of `size` queries.
    pub fn on_batch(&self, size: usize, sched: &ScheduleOutcome) {
        let mut m = self.inner.lock().expect("metrics lock");
        m.batches += 1;
        m.batch_size_sum += size as u64;
        m.batch_size_max = m.batch_size_max.max(size as u64);
        m.batch_hist.record(size as u64);
        if m.bank_busy_total.len() < sched.bank_busy.len() {
            m.bank_busy_total.resize(sched.bank_busy.len(), 0.0);
        }
        for (total, &busy) in m.bank_busy_total.iter_mut().zip(&sched.bank_busy) {
            *total += busy;
        }
        m.sched_time_total += sched.makespan;
        m.max_sched_wait_s = m.max_sched_wait_s.max(sched.max_wait);
    }

    /// One response went out.
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    pub fn on_response(&self, sample: &ResponseSample) {
        let mut m = self.inner.lock().expect("metrics lock");
        m.completed += 1;
        m.wall.record(sample.wall_ns);
        if let Some(lat) = sample.model_latency_s {
            m.model.record((lat * 1e12).max(0.0) as u64);
        }
        m.rows_searched += sample.rows as u64;
        m.step1_misses += sample.step1_misses as u64;
        m.step2_misses += sample.step2_misses as u64;
        m.matches += sample.matches as u64;
        if let Some(e) = sample.energy_j {
            m.energy_total_j += e;
        }
    }

    /// Snapshot everything; `queue_depth` is sampled by the caller.
    #[must_use]
    pub fn snapshot(&self, queue_depth: usize) -> ServiceMetrics {
        let m = self.inner.lock().expect("metrics lock");
        let utilization = if m.sched_time_total > 0.0 {
            m.bank_busy_total
                .iter()
                .map(|&b| b / m.sched_time_total)
                .collect()
        } else {
            vec![0.0; m.bank_busy_total.len()]
        };
        ServiceMetrics {
            submitted: m.submitted,
            completed: m.completed,
            shed_queue_full: m.shed_queue_full,
            shed_rate_limited: m.shed_rate_limited,
            shed_shutting_down: m.shed_shutting_down,
            queue_depth,
            max_queue_depth: m.max_queue_depth,
            wall_latency_ns: LatencySummary::of(&m.wall),
            model_latency_ps: LatencySummary::of(&m.model),
            batch: BatchStats {
                batches: m.batches,
                mean_size: if m.batches == 0 {
                    0.0
                } else {
                    m.batch_size_sum as f64 / m.batches as f64
                },
                max_size: m.batch_size_max,
                p50_size: m.batch_hist.quantile(0.5),
            },
            rows_searched: m.rows_searched,
            step1_misses: m.step1_misses,
            step2_misses: m.step2_misses,
            matches: m.matches,
            step1_early_termination_rate: if m.rows_searched == 0 {
                0.0
            } else {
                m.step1_misses as f64 / m.rows_searched as f64
            },
            energy_total_j: m.energy_total_j,
            bank_utilization: utilization,
            max_sched_wait_s: m.max_sched_wait_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let mut h = Histogram::default();
        for i in 1..=1000u64 {
            h.record(i);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // Octave resolution: p50 of 1..=1000 lands in the 512 bucket.
        assert_eq!(h.quantile(0.5), 512.0);
        assert_eq!(h.quantile(1.0), 1000.0);
        assert_eq!(LatencySummary::of(&h).max, 1000.0);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let c = MetricsCollector::new();
        c.on_submit(1);
        c.on_response(&ResponseSample {
            wall_ns: 1500,
            model_latency_s: Some(1.2e-9),
            rows: 64,
            step1_misses: 60,
            step2_misses: 2,
            matches: 2,
            energy_j: Some(3.2e-14),
        });
        let snap = c.snapshot(0);
        assert_eq!(snap.submitted, 1);
        assert_eq!(snap.max_queue_depth, 1);
        assert_eq!(snap.completed, 1);
        assert!((snap.step1_early_termination_rate - 60.0 / 64.0).abs() < 1e-12);
        let json = snap.to_json();
        let back: ServiceMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn shed_counters_split_by_kind() {
        use crate::admission::Overloaded;
        let c = MetricsCollector::new();
        c.on_shed(Overloaded::QueueFull);
        c.on_shed(Overloaded::QueueFull);
        c.on_shed(Overloaded::RateLimited { tenant: 1 });
        c.on_shed(Overloaded::ShuttingDown);
        let snap = c.snapshot(3);
        assert_eq!(snap.shed_queue_full, 2);
        assert_eq!(snap.shed_rate_limited, 1);
        assert_eq!(snap.shed_shutting_down, 1);
        assert_eq!(snap.queue_depth, 3);
    }
}
