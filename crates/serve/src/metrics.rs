//! Service observability: latency/batch histograms and the exported
//! [`ServiceMetrics`] snapshot.
//!
//! The submission-side counters (`submitted`, the shed counters, the
//! queue high-water mark) are plain atomics — they sit on the client
//! hot path and must not serialise submitters against the dispatcher.
//! Everything recorded by the dispatcher (histograms, batch stats,
//! energy totals) lives behind one uncontended mutex, locked **once
//! per batch** ([`MetricsCollector::on_responses`]), not once per
//! response. Snapshots are cheap and can be taken from any thread at
//! any time, including while the service is loaded.

use crate::backend::AuditVerdict;
use crate::request::{RequestKind, KIND_COUNT};
use crate::sync::{AtomicU64, AtomicUsize, Mutex, Ordering};
use ferrotcam_arch::sched::ScheduleOutcome;
use serde::{Deserialize, Serialize};

// The histogram now lives in the simulator's trace layer so service
// spans and engine spans share one implementation (and one unit
// discipline); re-exported here for source compatibility.
pub use ferrotcam_spice::trace::Histogram;

/// Percentile summary of a histogram, in the histogram's native unit.
///
/// Percentiles are `None` (serialised as JSON `null`) when the window
/// recorded no samples: an empty window has no p50/p95/p99, and the old
/// `0.0` placeholder read as an impossibly good latency to
/// `compare_runs --bench`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Mean sample.
    pub mean: f64,
    /// Median (bucket upper edge); `None` for an empty window.
    pub p50: Option<f64>,
    /// 95th percentile (bucket upper edge); `None` for an empty window.
    pub p95: Option<f64>,
    /// 99th percentile (bucket upper edge); `None` for an empty window.
    pub p99: Option<f64>,
    /// Largest sample seen.
    pub max: f64,
}

impl LatencySummary {
    /// Condensed percentile summary of `h`.
    #[must_use]
    pub fn of(h: &Histogram) -> Self {
        Self {
            count: h.count(),
            mean: h.mean(),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            max: h.max() as f64,
        }
    }
}

/// Per-request-kind counter set: exact vs the approximate workloads.
/// Serialises as named fields so dashboards keep stable keys; absent
/// in pre-approx snapshots, where the whole breakdown defaults to
/// zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct KindBreakdown {
    /// Exact ternary matches.
    pub exact: u64,
    /// Hamming-threshold searches.
    pub threshold: u64,
    /// Top-k nearest searches.
    pub top_k: u64,
    /// FeCAM range matches.
    pub range: u64,
    /// Online row inserts (absent in read-only-era snapshots).
    #[serde(default)]
    pub insert: u64,
    /// Online row deletes (absent in read-only-era snapshots).
    #[serde(default)]
    pub delete: u64,
    /// Online row updates (absent in read-only-era snapshots).
    #[serde(default)]
    pub update: u64,
}

impl KindBreakdown {
    /// Bump the counter for `kind`.
    pub fn bump(&mut self, kind: RequestKind) {
        *self.slot_mut(kind) += 1;
    }

    /// The counter for `kind`.
    #[must_use]
    pub fn get(&self, kind: RequestKind) -> u64 {
        match kind {
            RequestKind::Exact => self.exact,
            RequestKind::Threshold { .. } => self.threshold,
            RequestKind::TopK { .. } => self.top_k,
            RequestKind::Range => self.range,
            RequestKind::Insert => self.insert,
            RequestKind::Delete { .. } => self.delete,
            RequestKind::Update { .. } => self.update,
        }
    }

    /// Sum over every kind.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.exact
            + self.threshold
            + self.top_k
            + self.range
            + self.insert
            + self.delete
            + self.update
    }

    fn slot_mut(&mut self, kind: RequestKind) -> &mut u64 {
        match kind {
            RequestKind::Exact => &mut self.exact,
            RequestKind::Threshold { .. } => &mut self.threshold,
            RequestKind::TopK { .. } => &mut self.top_k,
            RequestKind::Range => &mut self.range,
            RequestKind::Insert => &mut self.insert,
            RequestKind::Delete { .. } => &mut self.delete,
            RequestKind::Update { .. } => &mut self.update,
        }
    }
}

/// Batch-size distribution of the dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct BatchStats {
    /// Batches executed.
    pub batches: u64,
    /// Mean queries per batch.
    pub mean_size: f64,
    /// Largest batch executed.
    pub max_size: u64,
    /// Median batch size (octave resolution); `None` before the first
    /// batch.
    pub p50_size: Option<f64>,
}

/// A point-in-time snapshot of everything the service measures,
/// exported as JSON for dashboards and the bench harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ServiceMetrics {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Responses delivered.
    pub completed: u64,
    /// Sheds: bounded queue was full.
    pub shed_queue_full: u64,
    /// Sheds: tenant token bucket dry.
    pub shed_rate_limited: u64,
    /// Sheds: service draining.
    pub shed_shutting_down: u64,
    /// Sheds: SLO deadline already expired when the dispatcher popped
    /// the query (`ServiceConfig::deadline`). Write kinds are never
    /// deadline-shed. Absent in pre-deadline snapshots.
    #[serde(default)]
    pub shed_deadline: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Deepest queue ever observed by the dispatcher (bounded by the
    /// ring capacity — the no-unbounded-growth witness).
    pub max_queue_depth: usize,
    /// Wall-clock submit→response latency (nanoseconds).
    pub wall_latency_ns: LatencySummary,
    /// Modelled silicon latency: bank wait + search (picoseconds).
    pub model_latency_ps: LatencySummary,
    /// Dispatcher batch-size distribution.
    pub batch: BatchStats,
    /// Rows scanned across all responses.
    pub rows_searched: u64,
    /// Rows that early-terminated after step 1.
    pub step1_misses: u64,
    /// Rows that survived step 1 and missed in step 2.
    pub step2_misses: u64,
    /// Total match count across responses.
    pub matches: u64,
    /// Aggregate step-1 early-termination rate over all rows searched.
    pub step1_early_termination_rate: f64,
    /// Total silicon energy attributed to responses (J).
    pub energy_total_j: f64,
    /// Mean modelled utilization per bank over all scheduled batches.
    pub bank_utilization: Vec<f64>,
    /// Longest modelled bank wait of any query (s).
    pub max_sched_wait_s: f64,
    /// Behavioural queries replayed on the reference tier.
    #[serde(default)]
    pub audit_sampled: u64,
    /// Audit replays whose match sets disagreed (correctness bug).
    #[serde(default)]
    pub audit_match_divergences: u64,
    /// Audit replays whose energies disagreed beyond tolerance.
    #[serde(default)]
    pub audit_energy_divergences: u64,
    /// Worst relative energy error any audit replay observed.
    #[serde(default)]
    pub audit_worst_energy_rel: f64,
    /// Responses completed, split by request kind.
    #[serde(default)]
    pub completed_by_kind: KindBreakdown,
    /// Sheds (all causes), split by the shed request's kind.
    #[serde(default)]
    pub shed_by_kind: KindBreakdown,
    /// Audit replays, split by the replayed request's kind.
    #[serde(default)]
    pub audit_sampled_by_kind: KindBreakdown,
    /// Audit divergences (match or energy), split by request kind.
    #[serde(default)]
    pub audit_divergences_by_kind: KindBreakdown,
}

impl ServiceMetrics {
    /// Pretty JSON rendering of the snapshot.
    ///
    /// # Panics
    /// Never: the struct contains only serialisable scalars.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics serialise")
    }
}

/// The accounting facts of one completed response, recorded with
/// [`MetricsCollector::on_response`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ResponseSample {
    /// What the request asked for (exact / threshold / top-k / range).
    pub kind: RequestKind,
    /// Wall-clock submit→response latency (ns).
    pub wall_ns: u64,
    /// Modelled silicon latency (s), if scheduled.
    pub model_latency_s: Option<f64>,
    /// Rows scanned for this query.
    pub rows: usize,
    /// Rows early-terminated after step 1.
    pub step1_misses: usize,
    /// Rows that survived step 1 and missed in step 2.
    pub step2_misses: usize,
    /// Matching rows.
    pub matches: usize,
    /// Energy attributed (J), if metrics are attached.
    pub energy_j: Option<f64>,
}

/// Internal accumulator behind the collector's mutex (dispatcher-side
/// facts only; the submission counters are atomics on the collector).
#[derive(Debug, Default)]
struct Inner {
    completed: u64,
    wall: Histogram,
    model: Histogram,
    batches: u64,
    batch_size_sum: u64,
    batch_size_max: u64,
    batch_hist: Histogram,
    rows_searched: u64,
    step1_misses: u64,
    step2_misses: u64,
    matches: u64,
    energy_total_j: f64,
    bank_busy_total: Vec<f64>,
    sched_time_total: f64,
    max_sched_wait_s: f64,
    audit_sampled: u64,
    audit_match_divergences: u64,
    audit_energy_divergences: u64,
    audit_worst_energy_rel: f64,
    completed_by_kind: KindBreakdown,
    audit_sampled_by_kind: KindBreakdown,
    audit_divergences_by_kind: KindBreakdown,
}

/// Thread-safe metrics collector shared by clients and the dispatcher.
#[derive(Debug)]
pub struct MetricsCollector {
    submitted: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_rate_limited: AtomicU64,
    shed_shutting_down: AtomicU64,
    /// Deadline sheds happen on the dispatcher pop path, which is just
    /// as hot as submission.
    shed_deadline: AtomicU64,
    /// Sheds by request kind, indexed by [`RequestKind::index`] —
    /// atomics because shedding happens on the submit hot path.
    shed_by_kind: [AtomicU64; KIND_COUNT],
    max_queue_depth: AtomicUsize,
    inner: Mutex<Inner>,
}

impl Default for MetricsCollector {
    // Hand-written (not derived) because the façade mutex takes its
    // lock-order-graph name at construction.
    fn default() -> Self {
        Self {
            submitted: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_rate_limited: AtomicU64::new(0),
            shed_shutting_down: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            shed_by_kind: std::array::from_fn(|_| AtomicU64::new(0)),
            max_queue_depth: AtomicUsize::new(0),
            inner: Mutex::new("serve.metrics.inner", Inner::default()),
        }
    }
}

impl MetricsCollector {
    /// Fresh collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A request was accepted into the queue, which then held `depth`
    /// items. Lock-free: this runs on every submitter's hot path.
    pub fn on_submit(&self, depth: usize) {
        self.submitted.fetch_add(1, Ordering::Relaxed); // ordering: stat-relaxed
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed); // ordering: stat-relaxed
    }

    /// A `kind` request was shed with `err`. Lock-free.
    pub fn on_shed(&self, err: crate::admission::Overloaded, kind: RequestKind) {
        let counter = match err {
            crate::admission::Overloaded::QueueFull => &self.shed_queue_full,
            crate::admission::Overloaded::RateLimited { .. } => &self.shed_rate_limited,
            crate::admission::Overloaded::ShuttingDown => &self.shed_shutting_down,
        };
        counter.fetch_add(1, Ordering::Relaxed); // ordering: stat-relaxed
        self.shed_by_kind[kind.index()].fetch_add(1, Ordering::Relaxed); // ordering: stat-relaxed
    }

    /// A `kind` query was dropped at dispatch because its SLO deadline
    /// had already expired. Lock-free: runs on the dispatcher pop path.
    pub fn on_deadline_shed(&self, kind: RequestKind) {
        self.shed_deadline.fetch_add(1, Ordering::Relaxed); // ordering: stat-relaxed
        self.shed_by_kind[kind.index()].fetch_add(1, Ordering::Relaxed); // ordering: stat-relaxed
    }

    /// The dispatcher pulled and scheduled a batch of `size` queries.
    pub fn on_batch(&self, size: usize, sched: &ScheduleOutcome) {
        let mut m = self.inner.lock();
        m.batches += 1;
        m.batch_size_sum += size as u64;
        m.batch_size_max = m.batch_size_max.max(size as u64);
        m.batch_hist.record(size as u64);
        if m.bank_busy_total.len() < sched.bank_busy.len() {
            m.bank_busy_total.resize(sched.bank_busy.len(), 0.0);
        }
        for (total, &busy) in m.bank_busy_total.iter_mut().zip(&sched.bank_busy) {
            *total += busy;
        }
        m.sched_time_total += sched.makespan;
        m.max_sched_wait_s = m.max_sched_wait_s.max(sched.max_wait);
    }

    /// One response went out.
    pub fn on_response(&self, sample: &ResponseSample) {
        self.on_responses(std::slice::from_ref(sample));
    }

    /// A whole batch of responses went out: one lock for all of them.
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    pub fn on_responses(&self, samples: &[ResponseSample]) {
        if samples.is_empty() {
            return;
        }
        let mut m = self.inner.lock();
        for sample in samples {
            m.completed += 1;
            m.completed_by_kind.bump(sample.kind);
            m.wall.record(sample.wall_ns);
            if let Some(lat) = sample.model_latency_s {
                m.model.record((lat * 1e12).max(0.0) as u64);
            }
            m.rows_searched += sample.rows as u64;
            m.step1_misses += sample.step1_misses as u64;
            m.step2_misses += sample.step2_misses as u64;
            m.matches += sample.matches as u64;
            if let Some(e) = sample.energy_j {
                m.energy_total_j += e;
            }
        }
    }

    /// The audit lane replayed one sampled `kind` query and reached
    /// `verdict`.
    pub fn on_audit(&self, verdict: &AuditVerdict, kind: RequestKind) {
        let mut m = self.inner.lock();
        m.audit_sampled += 1;
        m.audit_sampled_by_kind.bump(kind);
        m.audit_match_divergences += u64::from(verdict.match_divergence);
        m.audit_energy_divergences += u64::from(verdict.energy_divergence);
        if !verdict.clean() {
            m.audit_divergences_by_kind.bump(kind);
        }
        m.audit_worst_energy_rel = m.audit_worst_energy_rel.max(verdict.energy_rel);
    }

    /// Snapshot everything; `queue_depth` is sampled by the caller.
    #[must_use]
    pub fn snapshot(&self, queue_depth: usize) -> ServiceMetrics {
        let m = self.inner.lock();
        let utilization = if m.sched_time_total > 0.0 {
            m.bank_busy_total
                .iter()
                .map(|&b| b / m.sched_time_total)
                .collect()
        } else {
            vec![0.0; m.bank_busy_total.len()]
        };
        ServiceMetrics {
            submitted: self.submitted.load(Ordering::Relaxed), // ordering: stat-relaxed
            completed: m.completed,
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed), // ordering: stat-relaxed
            shed_rate_limited: self.shed_rate_limited.load(Ordering::Relaxed), // ordering: stat-relaxed
            shed_shutting_down: self.shed_shutting_down.load(Ordering::Relaxed), // ordering: stat-relaxed
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed), // ordering: stat-relaxed
            queue_depth,
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed), // ordering: stat-relaxed
            wall_latency_ns: LatencySummary::of(&m.wall),
            model_latency_ps: LatencySummary::of(&m.model),
            batch: BatchStats {
                batches: m.batches,
                mean_size: if m.batches == 0 {
                    0.0
                } else {
                    m.batch_size_sum as f64 / m.batches as f64
                },
                max_size: m.batch_size_max,
                p50_size: m.batch_hist.quantile(0.5),
            },
            rows_searched: m.rows_searched,
            step1_misses: m.step1_misses,
            step2_misses: m.step2_misses,
            matches: m.matches,
            step1_early_termination_rate: if m.rows_searched == 0 {
                0.0
            } else {
                m.step1_misses as f64 / m.rows_searched as f64
            },
            energy_total_j: m.energy_total_j,
            bank_utilization: utilization,
            max_sched_wait_s: m.max_sched_wait_s,
            audit_sampled: m.audit_sampled,
            audit_match_divergences: m.audit_match_divergences,
            audit_energy_divergences: m.audit_energy_divergences,
            audit_worst_energy_rel: m.audit_worst_energy_rel,
            completed_by_kind: m.completed_by_kind,
            shed_by_kind: KindBreakdown {
                // ordering: stat-relaxed
                exact: self.shed_by_kind[RequestKind::Exact.index()].load(Ordering::Relaxed),
                threshold: self.shed_by_kind[RequestKind::Threshold { t: 0 }.index()]
                    .load(Ordering::Relaxed), // ordering: stat-relaxed
                top_k: self.shed_by_kind[RequestKind::TopK { k: 0 }.index()]
                    .load(Ordering::Relaxed), // ordering: stat-relaxed
                // ordering: stat-relaxed
                range: self.shed_by_kind[RequestKind::Range.index()].load(Ordering::Relaxed),
                // ordering: stat-relaxed
                insert: self.shed_by_kind[RequestKind::Insert.index()].load(Ordering::Relaxed),
                delete: self.shed_by_kind[RequestKind::Delete { row: 0 }.index()]
                    .load(Ordering::Relaxed), // ordering: stat-relaxed
                update: self.shed_by_kind[RequestKind::Update { row: 0 }.index()]
                    .load(Ordering::Relaxed), // ordering: stat-relaxed
            },
            audit_sampled_by_kind: m.audit_sampled_by_kind,
            audit_divergences_by_kind: m.audit_divergences_by_kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let mut h = Histogram::default();
        for i in 1..=1000u64 {
            h.record(i);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // p50 of 1..=1000 lands in the [496, 512) sub-bucket.
        assert_eq!(h.quantile(0.5), Some(512.0));
        assert_eq!(h.quantile(1.0), Some(1000.0));
        assert_eq!(LatencySummary::of(&h).max, 1000.0);
    }

    #[test]
    fn empty_window_reports_null_percentiles() {
        // Regression: empty windows must not report p50/p95/p99 = 0.0
        // (compare_runs read that as a latency improvement). They are
        // `None`, serialised as JSON null, and round-trip as such.
        let h = Histogram::default();
        assert_eq!(h.quantile(0.99), None);
        assert_eq!(h.mean(), 0.0);
        let s = LatencySummary::of(&h);
        assert_eq!(s.p50, None);
        assert_eq!(s.p95, None);
        assert_eq!(s.p99, None);
        let snap = MetricsCollector::new().snapshot(0);
        let json = snap.to_json();
        assert!(json.contains("\"p99\": null"), "null percentile: {json}");
        let back: ServiceMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.wall_latency_ns.p99, None);
        // Old snapshots carried 0.0 there; they still deserialise.
        let legacy = json.replace("null", "0.0");
        let back: ServiceMetrics = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.wall_latency_ns.p99, Some(0.0));
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let c = MetricsCollector::new();
        c.on_submit(1);
        c.on_response(&ResponseSample {
            kind: RequestKind::Exact,
            wall_ns: 1500,
            model_latency_s: Some(1.2e-9),
            rows: 64,
            step1_misses: 60,
            step2_misses: 2,
            matches: 2,
            energy_j: Some(3.2e-14),
        });
        let snap = c.snapshot(0);
        assert_eq!(snap.submitted, 1);
        assert_eq!(snap.max_queue_depth, 1);
        assert_eq!(snap.completed, 1);
        assert!((snap.step1_early_termination_rate - 60.0 / 64.0).abs() < 1e-12);
        let json = snap.to_json();
        let back: ServiceMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_accepts_pre_audit_json() {
        // Snapshots written before the audit lane / per-kind breakdown
        // existed must still deserialise; the new fields default to
        // zero.
        let snap = MetricsCollector::new().snapshot(0);
        let json = snap.to_json();
        let mut depth = 0usize;
        let stripped: String = json
            .lines()
            .filter(|l| {
                // Drop audit scalars and the whole *_by_kind objects
                // (brace-balanced), exactly as an old snapshot lacks
                // them.
                if depth > 0 {
                    depth += l.matches('{').count();
                    depth -= l.matches('}').count();
                    return false;
                }
                if l.contains("_by_kind") {
                    depth += l.matches('{').count();
                    depth -= l.matches('}').count();
                    return false;
                }
                !l.contains("audit_")
            })
            .collect::<Vec<_>>()
            .join("\n")
            // The last surviving field keeps its trailing comma.
            .replace(",\n}", "\n}");
        assert!(!stripped.contains("audit_"), "fields really removed");
        assert!(!stripped.contains("_by_kind"), "breakdowns really removed");
        let back: ServiceMetrics = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn kind_breakdowns_accumulate() {
        use crate::admission::Overloaded;
        let c = MetricsCollector::new();
        c.on_response(&ResponseSample {
            kind: RequestKind::Threshold { t: 2 },
            ..ResponseSample::default()
        });
        c.on_response(&ResponseSample {
            kind: RequestKind::TopK { k: 4 },
            ..ResponseSample::default()
        });
        c.on_response(&ResponseSample::default());
        c.on_shed(Overloaded::QueueFull, RequestKind::Range);
        c.on_shed(
            Overloaded::RateLimited { tenant: 1 },
            RequestKind::Threshold { t: 1 },
        );
        c.on_audit(
            &AuditVerdict {
                match_divergence: true,
                energy_divergence: false,
                energy_rel: 0.0,
                detail: Some("boom".into()),
            },
            RequestKind::TopK { k: 4 },
        );
        let snap = c.snapshot(0);
        assert_eq!(snap.completed_by_kind.exact, 1);
        assert_eq!(snap.completed_by_kind.threshold, 1);
        assert_eq!(snap.completed_by_kind.top_k, 1);
        assert_eq!(snap.completed_by_kind.total(), 3);
        assert_eq!(snap.shed_by_kind.range, 1);
        assert_eq!(snap.shed_by_kind.threshold, 1);
        assert_eq!(snap.audit_sampled_by_kind.top_k, 1);
        assert_eq!(snap.audit_divergences_by_kind.top_k, 1);
        assert_eq!(
            snap.audit_divergences_by_kind
                .get(RequestKind::TopK { k: 99 }),
            1,
            "breakdown keys on kind, not its parameters"
        );
    }

    #[test]
    fn deadline_sheds_and_write_kinds_are_counted() {
        let c = MetricsCollector::new();
        c.on_deadline_shed(RequestKind::Exact);
        c.on_deadline_shed(RequestKind::TopK { k: 3 });
        c.on_response(&ResponseSample {
            kind: RequestKind::Insert,
            ..ResponseSample::default()
        });
        c.on_response(&ResponseSample {
            kind: RequestKind::Update { row: 7 },
            ..ResponseSample::default()
        });
        c.on_response(&ResponseSample {
            kind: RequestKind::Delete { row: 1 },
            ..ResponseSample::default()
        });
        let snap = c.snapshot(0);
        assert_eq!(snap.shed_deadline, 2);
        assert_eq!(snap.shed_by_kind.exact, 1);
        assert_eq!(snap.shed_by_kind.top_k, 1);
        assert_eq!(snap.completed_by_kind.insert, 1);
        assert_eq!(snap.completed_by_kind.update, 1);
        assert_eq!(snap.completed_by_kind.delete, 1);
        assert_eq!(snap.completed_by_kind.total(), 3);
        // Snapshot JSON round-trips with the new fields in place.
        let back: ServiceMetrics = serde_json::from_str(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn batched_responses_equal_singles_and_audit_accumulates() {
        let a = MetricsCollector::new();
        let b = MetricsCollector::new();
        let samples: Vec<ResponseSample> = (0..10)
            .map(|i| ResponseSample {
                kind: RequestKind::Exact,
                wall_ns: 100 + i,
                model_latency_s: Some(1e-9),
                rows: 8,
                step1_misses: 6,
                step2_misses: 1,
                matches: 1,
                energy_j: Some(1e-15),
            })
            .collect();
        a.on_responses(&samples);
        for s in &samples {
            b.on_response(s);
        }
        assert_eq!(a.snapshot(0), b.snapshot(0));

        a.on_audit(
            &AuditVerdict {
                match_divergence: false,
                energy_divergence: false,
                energy_rel: 1e-12,
                detail: None,
            },
            RequestKind::Exact,
        );
        a.on_audit(
            &AuditVerdict {
                match_divergence: true,
                energy_divergence: false,
                energy_rel: 0.0,
                detail: Some("boom".into()),
            },
            RequestKind::Exact,
        );
        let snap = a.snapshot(0);
        assert_eq!(snap.audit_sampled, 2);
        assert_eq!(snap.audit_match_divergences, 1);
        assert_eq!(snap.audit_energy_divergences, 0);
        assert!((snap.audit_worst_energy_rel - 1e-12).abs() < 1e-24);
    }

    #[test]
    fn shed_counters_split_by_kind() {
        use crate::admission::Overloaded;
        let c = MetricsCollector::new();
        c.on_shed(Overloaded::QueueFull, RequestKind::Exact);
        c.on_shed(Overloaded::QueueFull, RequestKind::Exact);
        c.on_shed(Overloaded::RateLimited { tenant: 1 }, RequestKind::Exact);
        c.on_shed(Overloaded::ShuttingDown, RequestKind::Exact);
        let snap = c.snapshot(3);
        assert_eq!(snap.shed_queue_full, 2);
        assert_eq!(snap.shed_rate_limited, 1);
        assert_eq!(snap.shed_shutting_down, 1);
        assert_eq!(snap.queue_depth, 3);
    }
}
