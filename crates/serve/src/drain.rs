//! The graceful-shutdown handshake between clients and the dispatcher.
//!
//! A single word carries both halves of the protocol: the high bit says
//! "draining — refuse new work", the low 63 bits count requests that
//! were *accepted* (admitted and queued). A second counter tracks
//! requests fully answered. The invariant the dispatcher relies on:
//! once the drain bit is set, `accepted` can no longer grow, so
//! `accepted == completed` (with an empty queue) really means every
//! request that will ever exist has been answered.
//!
//! The accept path must check the drain bit and bump the count in one
//! atomic step — a separate load-then-increment would let an accept
//! slip in after the dispatcher's final check, losing the request. This
//! exact race is what `tests/loom.rs` model-checks exhaustively.

use crate::sync::{AtomicU64, Ordering};

/// High bit of the state word: the service is draining.
const DRAIN_BIT: u64 = 1 << 63;

/// Drain flag + accepted count + completed count. See module docs.
#[derive(Debug, Default)]
pub struct DrainGate {
    /// Drain flag (high bit) + accepted-request count (low bits).
    state: AtomicU64,
    /// Requests fully answered.
    completed: AtomicU64,
}

impl DrainGate {
    /// A gate accepting work, with nothing in flight.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        }
    }

    /// Try to accept one request: bumps the accepted count unless the
    /// drain bit is already set. Atomic against [`DrainGate::begin_drain`]:
    /// every accept either lands before the drain begins (and will be
    /// waited for) or is refused.
    pub fn try_accept(&self) -> bool {
        self.state
            // ordering: drain-state-acqrel
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |s| {
                (s & DRAIN_BIT == 0).then_some(s + 1)
            })
            .is_ok()
    }

    /// Roll back an acceptance whose enqueue failed (queue full): the
    /// dispatcher must not wait for a request that never entered the
    /// queue.
    pub fn retract(&self) {
        self.state.fetch_sub(1, Ordering::AcqRel); // ordering: drain-state-acqrel
    }

    /// Record one accepted request as fully answered.
    pub fn complete(&self) {
        self.completed.fetch_add(1, Ordering::AcqRel); // ordering: drain-completed-acqrel
    }

    /// Set the drain bit: all future [`DrainGate::try_accept`] calls fail.
    pub fn begin_drain(&self) {
        self.state.fetch_or(DRAIN_BIT, Ordering::AcqRel); // ordering: drain-state-acqrel
    }

    /// Whether the drain bit is set.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.state.load(Ordering::Acquire) & DRAIN_BIT != 0 // ordering: drain-quiescent-acquire
    }

    /// Whether the service is draining *and* every accepted request has
    /// been answered. Only meaningful combined with an empty queue check
    /// (a request can be accepted and answered while others still sit
    /// in the ring).
    #[must_use]
    pub fn quiescent(&self) -> bool {
        let state = self.state.load(Ordering::Acquire); // ordering: drain-quiescent-acquire
                                                        // ordering: drain-quiescent-acquire
        state & DRAIN_BIT != 0 && state & !DRAIN_BIT == self.completed.load(Ordering::Acquire)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn accept_then_drain_then_complete() {
        let g = DrainGate::new();
        assert!(g.try_accept());
        assert!(g.try_accept());
        g.begin_drain();
        assert!(!g.try_accept(), "drained gate refuses new work");
        assert!(g.is_draining());
        assert!(!g.quiescent(), "two accepted, none answered");
        g.complete();
        g.complete();
        assert!(g.quiescent());
    }

    #[test]
    fn retract_unwinds_an_accept() {
        let g = DrainGate::new();
        assert!(g.try_accept());
        g.retract();
        g.begin_drain();
        assert!(g.quiescent(), "retracted accept is not waited for");
    }

    #[test]
    fn not_quiescent_before_drain() {
        let g = DrainGate::new();
        assert!(!g.quiescent(), "quiescence requires the drain bit");
    }
}
