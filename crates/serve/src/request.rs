//! Request kinds: the exact ternary match plus the approximate-match
//! workloads (Hamming threshold, exact top-k, FeCAM range match), the
//! online write kinds (insert / delete / update), and the admission
//! class that separates their rate budgets.
//!
//! Every submission carries a [`RequestKind`]. Exact match is the
//! classic two-step TCAM search; the approximate kinds drive the
//! `core::approx` kernels and are attributed full-parallel energy (no
//! early termination — every row's match line participates in the
//! analog distance race) and a sense-time-derived slice of bank time
//! by the dispatcher's cost model. The write kinds mutate the table
//! through the per-shard epoch/snapshot cells and are priced by the
//! calibrated 3-step program (`core::calib::RowWriteMetrics`); their
//! row payload travels on the job, so the kind itself stays `Copy`.

use serde::{Deserialize, Serialize};

/// What a submitted query asks of the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RequestKind {
    /// Exact ternary match (two-step search with early termination).
    #[default]
    Exact,
    /// All rows within masked Hamming distance `t` of the query.
    Threshold {
        /// Largest accepted mismatch count.
        t: u32,
    },
    /// The `k` nearest rows by masked Hamming distance, ties broken
    /// toward the lowest global row id.
    TopK {
        /// How many best rows to return.
        k: usize,
    },
    /// FeCAM range match: every 4-level cell's stored `[lo, hi]`
    /// window must admit the query level.
    Range,
    /// Program the submitted word into a fresh row of the least-loaded
    /// shard; the response's match list carries the assigned global id.
    Insert,
    /// Retire global row `row` (slot-reuse delete: the shard's last
    /// local row moves into the freed slot).
    Delete {
        /// Global row id to remove.
        row: usize,
    },
    /// Re-program global row `row` with the submitted word.
    Update {
        /// Global row id to overwrite.
        row: usize,
    },
}

/// How many distinct kinds exist (the per-kind counter arity).
pub const KIND_COUNT: usize = 7;

impl RequestKind {
    /// Short stable tag used in metric/curve ids.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Self::Exact => "exact",
            Self::Threshold { .. } => "threshold",
            Self::TopK { .. } => "topk",
            Self::Range => "range",
            Self::Insert => "insert",
            Self::Delete { .. } => "delete",
            Self::Update { .. } => "update",
        }
    }

    /// Dense counter index (stable across parameter values).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Self::Exact => 0,
            Self::Threshold { .. } => 1,
            Self::TopK { .. } => 2,
            Self::Range => 3,
            Self::Insert => 4,
            Self::Delete { .. } => 5,
            Self::Update { .. } => 6,
        }
    }

    /// The admission class this kind is rate-limited under.
    #[must_use]
    pub fn class(self) -> AdmissionClass {
        match self {
            Self::Exact => AdmissionClass::Exact,
            Self::Insert | Self::Delete { .. } | Self::Update { .. } => AdmissionClass::Write,
            _ => AdmissionClass::Approx,
        }
    }

    /// Whether this kind mutates the table (never deadline-shed, never
    /// routed through the search backends).
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(
            self,
            Self::Insert | Self::Delete { .. } | Self::Update { .. }
        )
    }
}

impl std::fmt::Display for RequestKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// Admission classes: approximate queries and online writes budget
/// separately from exact matches, so a flood of expensive distance
/// scans — or a bulk-load of writes — cannot starve the exact-match
/// hot path (and vice versa).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdmissionClass {
    /// Exact ternary match traffic.
    Exact,
    /// Threshold / top-k / range traffic.
    Approx,
    /// Insert / delete / update traffic.
    Write,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_classes_and_indices_are_stable() {
        let kinds = [
            RequestKind::Exact,
            RequestKind::Threshold { t: 3 },
            RequestKind::TopK { k: 5 },
            RequestKind::Range,
            RequestKind::Insert,
            RequestKind::Delete { row: 9 },
            RequestKind::Update { row: 2 },
        ];
        let tags: Vec<_> = kinds.iter().map(|k| k.tag()).collect();
        assert_eq!(
            tags,
            [
                "exact",
                "threshold",
                "topk",
                "range",
                "insert",
                "delete",
                "update"
            ]
        );
        for (i, k) in kinds.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(k.index() < KIND_COUNT);
        }
        assert_eq!(RequestKind::Exact.class(), AdmissionClass::Exact);
        assert_eq!(
            RequestKind::Threshold { t: 0 }.class(),
            AdmissionClass::Approx
        );
        assert_eq!(RequestKind::TopK { k: 1 }.class(), AdmissionClass::Approx);
        assert_eq!(RequestKind::Range.class(), AdmissionClass::Approx);
        for w in [
            RequestKind::Insert,
            RequestKind::Delete { row: 0 },
            RequestKind::Update { row: 0 },
        ] {
            assert_eq!(w.class(), AdmissionClass::Write);
            assert!(w.is_write());
        }
        assert!(!RequestKind::Range.is_write());
        assert_eq!(RequestKind::default(), RequestKind::Exact);
    }
}
