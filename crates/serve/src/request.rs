//! Request kinds: the exact ternary match plus the approximate-match
//! workloads (Hamming threshold, exact top-k, FeCAM range match), and
//! the admission class that separates their rate budgets.
//!
//! Every submission carries a [`RequestKind`]. Exact match is the
//! classic two-step TCAM search; the approximate kinds drive the
//! `core::approx` kernels and are attributed full-parallel energy (no
//! early termination — every row's match line participates in the
//! analog distance race) and a sense-time-derived slice of bank time
//! by the dispatcher's cost model.

use serde::{Deserialize, Serialize};

/// What a submitted query asks of the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RequestKind {
    /// Exact ternary match (two-step search with early termination).
    #[default]
    Exact,
    /// All rows within masked Hamming distance `t` of the query.
    Threshold {
        /// Largest accepted mismatch count.
        t: u32,
    },
    /// The `k` nearest rows by masked Hamming distance, ties broken
    /// toward the lowest global row id.
    TopK {
        /// How many best rows to return.
        k: usize,
    },
    /// FeCAM range match: every 4-level cell's stored `[lo, hi]`
    /// window must admit the query level.
    Range,
}

/// How many distinct kinds exist (the per-kind counter arity).
pub const KIND_COUNT: usize = 4;

impl RequestKind {
    /// Short stable tag used in metric/curve ids.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Self::Exact => "exact",
            Self::Threshold { .. } => "threshold",
            Self::TopK { .. } => "topk",
            Self::Range => "range",
        }
    }

    /// Dense counter index (stable across parameter values).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Self::Exact => 0,
            Self::Threshold { .. } => 1,
            Self::TopK { .. } => 2,
            Self::Range => 3,
        }
    }

    /// The admission class this kind is rate-limited under.
    #[must_use]
    pub fn class(self) -> AdmissionClass {
        match self {
            Self::Exact => AdmissionClass::Exact,
            _ => AdmissionClass::Approx,
        }
    }
}

impl std::fmt::Display for RequestKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// Admission classes: approximate queries budget separately from exact
/// ones, so a flood of expensive distance scans cannot starve the
/// exact-match hot path (and vice versa).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdmissionClass {
    /// Exact ternary match traffic.
    Exact,
    /// Threshold / top-k / range traffic.
    Approx,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_classes_and_indices_are_stable() {
        let kinds = [
            RequestKind::Exact,
            RequestKind::Threshold { t: 3 },
            RequestKind::TopK { k: 5 },
            RequestKind::Range,
        ];
        let tags: Vec<_> = kinds.iter().map(|k| k.tag()).collect();
        assert_eq!(tags, ["exact", "threshold", "topk", "range"]);
        for (i, k) in kinds.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(k.index() < KIND_COUNT);
        }
        assert_eq!(RequestKind::Exact.class(), AdmissionClass::Exact);
        assert_eq!(
            RequestKind::Threshold { t: 0 }.class(),
            AdmissionClass::Approx
        );
        assert_eq!(RequestKind::TopK { k: 1 }.class(), AdmissionClass::Approx);
        assert_eq!(RequestKind::Range.class(), AdmissionClass::Approx);
        assert_eq!(RequestKind::default(), RequestKind::Exact);
    }
}
