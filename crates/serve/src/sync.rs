//! Synchronisation façade: `std::sync` in production builds, the loom
//! model checker's shimmed equivalents under `RUSTFLAGS="--cfg loom"`.
//!
//! The concurrency-critical modules ([`crate::queue`],
//! [`crate::drain`]) import their atomics and mutexes from here, so the
//! exact same algorithm source is compiled against both substrates: the
//! real one in production and the exhaustively-scheduled one in the
//! `tests/loom.rs` models.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
#[cfg(loom)]
pub(crate) use loom::sync::Mutex;

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
#[cfg(not(loom))]
pub(crate) use std::sync::Mutex;
