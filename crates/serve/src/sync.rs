//! Synchronisation façade: `std::sync` in production builds, the loom
//! model checker's shimmed equivalents under `RUSTFLAGS="--cfg loom"`.
//!
//! Every concurrency primitive the crate touches is imported from here
//! — [`crate::queue`], [`crate::drain`], [`crate::admission`] and
//! [`crate::metrics`] alike — so the exact same algorithm source is
//! compiled against both substrates: the real one in production and the
//! exhaustively-scheduled one in the `tests/loom.rs` models. The
//! `ferrotcam analyze` façade pass (`facade-bypass` rule) denies any
//! direct `std::sync` atomic or lock import elsewhere in this crate, so
//! the "loom-modelable by construction" property is machine-checked,
//! not a convention.
//!
//! # Named mutexes and the runtime lock-order shadow
//!
//! [`Mutex`] here is a thin wrapper that requires a `&'static` name at
//! construction. In production release builds it compiles down to the
//! raw `std::sync::Mutex`; under `cfg(debug_assertions)` (the tier-1
//! `cargo test` profile, and Miri) every acquisition also feeds a
//! process-global **lock-acquisition-order graph**: acquiring `B` while
//! holding `A` records the edge `A → B`, and an acquisition that would
//! close a cycle panics immediately, naming both lock sites and the
//! established path. This is the dynamic validator of the *static*
//! lock-order pass in `crates/analysis` (`lock-order-cycle` rule): the
//! analyzer proves the approximation over all source paths, the shadow
//! catches anything the approximation missed on real executions.
//!
//! Lock identity is the name, not the address, so a pool of structurally
//! identical locks (e.g. the per-slot queue mutexes) is one node in the
//! graph; re-acquiring the *same* name never records a self-edge (slot
//! locks of one queue are never nested).
//!
//! Poisoning: [`Mutex::lock`] panics on a poisoned lock instead of
//! returning `Result`. A poisoned serve lock means another thread
//! panicked mid-update — propagating the panic is exactly what every
//! call site did with `.expect(...)` before, and the unwrapped guard
//! keeps the hot paths free of `unwrap`/`expect` (the `hot-path-unwrap`
//! analyzer rule).

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

#[cfg(loom)]
use loom::sync::Mutex as RawMutex;
#[cfg(loom)]
use loom::sync::MutexGuard as RawGuard;

#[cfg(not(loom))]
use std::sync::Mutex as RawMutex;
#[cfg(not(loom))]
use std::sync::MutexGuard as RawGuard;

/// A named mutex: `std::sync::Mutex` (or the loom shim) plus membership
/// in the debug-build lock-order shadow. See the module docs.
pub(crate) struct Mutex<T> {
    name: &'static str,
    inner: RawMutex<T>,
}

impl<T> Mutex<T> {
    /// New unlocked mutex named `name`. The name is the lock's identity
    /// in the order graph and in cycle panics; give every distinct lock
    /// *role* its own name and share one name across a homogeneous pool.
    pub(crate) fn new(name: &'static str, value: T) -> Self {
        Self {
            name,
            inner: RawMutex::new(value),
        }
    }

    /// Acquire, recording the acquisition edge in the debug shadow.
    ///
    /// # Panics
    /// Panics if the lock is poisoned (a thread panicked while holding
    /// it — the panic is propagated, matching the previous call sites'
    /// `.expect`) or if this acquisition closes a cycle in the global
    /// lock-order graph (a deadlock-in-waiting; the panic names both
    /// locks and the established path).
    pub(crate) fn lock(&self) -> MutexGuard<'_, T> {
        order::on_acquire(self.name);
        match self.inner.lock() {
            Ok(g) => MutexGuard {
                name: self.name,
                inner: g,
            },
            Err(poisoned) => {
                order::on_release(self.name);
                drop(poisoned);
                panic!("serve lock '{}' poisoned", self.name)
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex")
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard returned by [`Mutex::lock`]; pops the lock from the holder's
/// shadow stack on drop.
#[derive(Debug)]
pub(crate) struct MutexGuard<'a, T> {
    name: &'static str,
    inner: RawGuard<'a, T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.name);
    }
}

/// One idle beat of a dispatcher that found every queue empty: a short
/// real sleep in production, a scheduler yield under loom (where
/// sleeping has no meaning and the model checker owns time).
#[cfg(not(loom))]
pub(crate) fn idle_wait() {
    std::thread::sleep(std::time::Duration::from_micros(20));
}

#[cfg(loom)]
pub(crate) fn idle_wait() {
    loom::thread::yield_now();
}

/// The lock-order shadow. Compiled to no-ops in release builds and
/// under loom (where the model checker owns scheduling); in debug
/// builds it maintains a global order graph and a per-thread stack of
/// held lock names.
#[cfg(all(debug_assertions, not(loom)))]
mod order {
    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::sync::{Mutex, OnceLock};

    /// Directed acquired-before edges: `graph[a]` holds every lock
    /// acquired at least once while `a` was held.
    type Graph = HashMap<&'static str, HashSet<&'static str>>;

    fn graph() -> &'static Mutex<Graph> {
        static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(|| Mutex::new(HashMap::new()))
    }

    thread_local! {
        /// Names of the locks this thread currently holds, in
        /// acquisition order.
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    /// Depth-first path from `from` to `to` along recorded edges, used
    /// both as the cycle test and to render the offending chain.
    fn path(g: &Graph, from: &'static str, to: &'static str) -> Option<Vec<&'static str>> {
        let mut stack = vec![vec![from]];
        let mut seen = HashSet::new();
        while let Some(p) = stack.pop() {
            let last = *p.last().expect("non-empty path");
            if last == to {
                return Some(p);
            }
            if !seen.insert(last) {
                continue;
            }
            if let Some(next) = g.get(last) {
                for &n in next {
                    let mut q = p.clone();
                    q.push(n);
                    stack.push(q);
                }
            }
        }
        None
    }

    pub(super) fn on_acquire(name: &'static str) {
        let held: Vec<&'static str> = HELD.with(|h| h.borrow().clone());
        if !held.is_empty() {
            let mut cycle: Option<String> = None;
            {
                let mut g = graph().lock().expect("lock-order graph");
                for &h in &held {
                    if h == name {
                        continue;
                    }
                    // Adding h -> name: a cycle exists iff name already
                    // reaches h. Record the message, release the graph
                    // lock, then panic — a poisoned graph would break
                    // every other test in the process.
                    if let Some(p) = path(&g, name, h) {
                        cycle = Some(format!(
                            "lock-order cycle: acquiring '{name}' while holding '{h}', \
                             but the established order is {}",
                            p.join(" -> ")
                        ));
                        break;
                    }
                    g.entry(h).or_default().insert(name);
                }
            }
            if let Some(msg) = cycle {
                panic!("{msg}");
            }
        }
        HELD.with(|h| h.borrow_mut().push(name));
    }

    pub(super) fn on_release(name: &'static str) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(i) = held.iter().rposition(|&n| n == name) {
                held.remove(i);
            }
        });
    }
}

#[cfg(not(all(debug_assertions, not(loom))))]
mod order {
    pub(super) fn on_acquire(_name: &'static str) {}
    pub(super) fn on_release(_name: &'static str) {}
}

#[cfg(all(test, debug_assertions, not(loom)))]
mod tests {
    use super::Mutex;

    #[test]
    fn consistent_order_is_silent() {
        let a = Mutex::new("test.order.outer", 1);
        let b = Mutex::new("test.order.inner", 2);
        for _ in 0..3 {
            let ga = a.lock();
            let gb = b.lock();
            assert_eq!(*ga + *gb, 3);
        }
        // Same-name re-acquisition (a lock pool) records no self-edge.
        let p1 = Mutex::new("test.order.pool", 0);
        let p2 = Mutex::new("test.order.pool", 0);
        let g1 = p1.lock();
        let g2 = p2.lock();
        drop((g1, g2));
    }

    #[test]
    fn inverted_order_panics_naming_both_locks() {
        let a = Mutex::new("test.cycle.a", ());
        let b = Mutex::new("test.cycle.b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let caught = std::panic::catch_unwind(|| {
            let _gb = b.lock();
            let _ga = a.lock();
        })
        .expect_err("inverted acquisition must panic");
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("test.cycle.a"), "panic names lock a: {msg}");
        assert!(msg.contains("test.cycle.b"), "panic names lock b: {msg}");
        assert!(msg.contains("lock-order cycle"), "typed message: {msg}");
    }

    #[test]
    fn transitive_cycle_is_caught() {
        let a = Mutex::new("test.chain.a", ());
        let b = Mutex::new("test.chain.b", ());
        let c = Mutex::new("test.chain.c", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _gc = c.lock();
        }
        let caught = std::panic::catch_unwind(|| {
            let _gc = c.lock();
            let _ga = a.lock();
        });
        assert!(caught.is_err(), "a->b->c->a must be rejected");
    }
}
