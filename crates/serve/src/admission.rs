//! Admission control: per-tenant token buckets and the typed
//! load-shedding error.
//!
//! The service is multi-tenant; a tenant that floods the front door
//! must not starve everyone else. Each tenant owns a token bucket
//! (`rate` tokens/s refill, `burst` ceiling) consulted *before* the
//! submission queue, so rate-limited work is shed at the cheapest
//! possible point. Buckets take the current time as an argument, which
//! keeps them deterministic under test.
//!
//! Buckets are keyed by `(tenant, class)`: approximate-match traffic
//! ([`AdmissionClass::Approx`] — threshold, top-k, range) and online
//! writes ([`AdmissionClass::Write`] — insert, delete, update) budget
//! separately from exact-match traffic, so a burst of expensive
//! distance scans or a bulk-load cannot drain the tokens the same
//! tenant's exact lookups run on.

use crate::request::AdmissionClass;
use crate::sync::{AtomicBool, Mutex, Ordering};
use std::collections::HashMap;
use std::time::Instant;

/// Tenant identity. Plain integers keep the hot path allocation-free;
/// mapping API keys or names to ids is the caller's concern.
pub type TenantId = u32;

/// Why a submission was refused. Every variant is a *shed*, never a
/// failure of the service itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overloaded {
    /// The bounded submission queue is full (global backpressure).
    QueueFull,
    /// The tenant exhausted its token bucket (per-tenant backpressure).
    RateLimited {
        /// The tenant that was throttled.
        tenant: TenantId,
    },
    /// The service is draining and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull => write!(f, "submission queue full"),
            Self::RateLimited { tenant } => write!(f, "tenant {tenant} rate-limited"),
            Self::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

impl std::error::Error for Overloaded {}

/// Refill policy of one token bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatePolicy {
    /// Sustained rate (tokens per second).
    pub rate: f64,
    /// Bucket capacity (maximum burst).
    pub burst: f64,
}

impl RatePolicy {
    /// No throttling at all (the default for unknown tenants).
    #[must_use]
    pub fn unlimited() -> Self {
        Self {
            rate: f64::INFINITY,
            burst: f64::INFINITY,
        }
    }

    /// A finite sustained rate with the given burst ceiling.
    #[must_use]
    pub fn per_second(rate: f64, burst: f64) -> Self {
        Self { rate, burst }
    }
}

/// Classic token bucket with explicit time injection.
///
/// Refill credits whole tokens and banks the sub-token remainder in a
/// separate residue, so a stream of refills each worth a fraction of a
/// token converges on `rate · elapsed` instead of drifting: folding
/// tiny `dt · rate` increments straight into a large token balance
/// loses their low bits to float rounding, and across thousands of
/// sub-token refills the admitted count falls measurably short of the
/// configured rate.
#[derive(Debug)]
pub struct TokenBucket {
    policy: RatePolicy,
    tokens: f64,
    /// Accrued refill credit below one token, carried to the next
    /// refill. Always in `[0, 1)`; reset when the bucket clamps at
    /// `burst` (a full bucket banks nothing).
    frac: f64,
    last: Option<Instant>,
}

impl TokenBucket {
    /// A full bucket under `policy`.
    #[must_use]
    pub fn new(policy: RatePolicy) -> Self {
        Self {
            policy,
            tokens: policy.burst,
            frac: 0.0,
            last: None,
        }
    }

    /// Try to take one token at time `now`; `false` means throttled.
    pub fn try_take(&mut self, now: Instant) -> bool {
        if self.policy.rate.is_infinite() {
            return true;
        }
        if let Some(last) = self.last {
            let dt = now.saturating_duration_since(last).as_secs_f64();
            let credit = dt * self.policy.rate + self.frac;
            let whole = credit.floor();
            self.frac = credit - whole;
            self.tokens += whole;
            if self.tokens >= self.policy.burst {
                self.tokens = self.policy.burst;
                self.frac = 0.0;
            }
        }
        self.last = Some(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after the last refill), excluding
    /// the banked sub-token residue.
    #[must_use]
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

/// The service-wide admission controller: one bucket per
/// `(tenant, class)`, created lazily under that class's default
/// policy.
#[derive(Debug)]
pub struct Admission {
    default_policy: RatePolicy,
    approx_policy: RatePolicy,
    write_policy: RatePolicy,
    /// `true` while every tenant rides an unlimited default and no
    /// per-tenant policy exists — admission is then a single relaxed
    /// load instead of a mutex acquisition (the submit hot path).
    passthrough: AtomicBool,
    buckets: Mutex<HashMap<(TenantId, AdmissionClass), TokenBucket>>,
}

impl Admission {
    /// Controller whose unknown tenants get `default_policy` for exact
    /// traffic, `approx_policy` for approximate traffic, and
    /// `write_policy` for online writes.
    #[must_use]
    pub fn new(
        default_policy: RatePolicy,
        approx_policy: RatePolicy,
        write_policy: RatePolicy,
    ) -> Self {
        Self {
            default_policy,
            approx_policy,
            write_policy,
            passthrough: AtomicBool::new(
                default_policy.rate.is_infinite()
                    && approx_policy.rate.is_infinite()
                    && write_policy.rate.is_infinite(),
            ),
            buckets: Mutex::new("serve.admission.buckets", HashMap::new()),
        }
    }

    /// Install (or replace) a tenant's *exact-class* policy; the
    /// bucket restarts full. Approximate traffic is unaffected — use
    /// [`Self::set_class_policy`] for it.
    pub fn set_policy(&self, tenant: TenantId, policy: RatePolicy) {
        self.set_class_policy(tenant, AdmissionClass::Exact, policy);
    }

    /// Install (or replace) one `(tenant, class)` policy; the bucket
    /// restarts full.
    pub fn set_class_policy(&self, tenant: TenantId, class: AdmissionClass, policy: RatePolicy) {
        let mut buckets = self.buckets.lock();
        buckets.insert((tenant, class), TokenBucket::new(policy));
        // Any explicit policy (even an unlimited one) pins admission to
        // the bucket map; flip while still holding the lock so a racing
        // admit cannot see the flag before the bucket.
        self.passthrough.store(false, Ordering::Release); // ordering: passthrough-release
    }

    /// The default policy a class falls back to.
    fn default_for(&self, class: AdmissionClass) -> RatePolicy {
        match class {
            AdmissionClass::Exact => self.default_policy,
            AdmissionClass::Approx => self.approx_policy,
            AdmissionClass::Write => self.write_policy,
        }
    }

    /// Admit one `class` request from `tenant` at time `now`.
    ///
    /// # Errors
    /// [`Overloaded::RateLimited`] when the tenant's bucket for this
    /// class is dry.
    pub fn admit(
        &self,
        tenant: TenantId,
        class: AdmissionClass,
        now: Instant,
    ) -> Result<(), Overloaded> {
        // ordering: passthrough-acquire
        if self.passthrough.load(Ordering::Acquire) {
            return Ok(());
        }
        let mut buckets = self.buckets.lock();
        let bucket = buckets
            .entry((tenant, class))
            .or_insert_with(|| TokenBucket::new(self.default_for(class)));
        if bucket.try_take(now) {
            Ok(())
        } else {
            Err(Overloaded::RateLimited { tenant })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bucket_burst_then_refill() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(RatePolicy::per_second(10.0, 2.0));
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(!b.try_take(t0), "burst of 2 exhausted");
        // 100 ms at 10 tokens/s refills exactly one token.
        assert!(b.try_take(t0 + Duration::from_millis(100)));
        assert!(!b.try_take(t0 + Duration::from_millis(100)));
    }

    #[test]
    fn refill_clamps_at_burst() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(RatePolicy::per_second(1000.0, 3.0));
        assert!(b.try_take(t0));
        // A long idle period must not bank more than `burst` tokens.
        let later = t0 + Duration::from_secs(60);
        for _ in 0..3 {
            assert!(b.try_take(later));
        }
        assert!(!b.try_take(later));
    }

    #[test]
    fn sub_token_refills_carry_the_residue() {
        // 1000 refills of 1.7 ms at 10 tokens/s: each credits 0.017
        // tokens — far below one token — so an implementation that
        // floors or otherwise drops sub-token credit admits ~0, and
        // one that folds tiny increments into the float balance
        // drifts. The residue-carrying bucket must admit within ±1 of
        // rate · elapsed = 10 · 1.7 = 17.
        let t0 = Instant::now();
        let mut b = TokenBucket::new(RatePolicy::per_second(10.0, 1.0));
        assert!(b.try_take(t0), "drain the initial burst and arm `last`");
        let mut admitted: i64 = 0;
        let mut now = t0;
        for _ in 0..1000 {
            now += Duration::from_micros(1700);
            if b.try_take(now) {
                admitted += 1;
            }
        }
        let expected = 10.0 * (1000.0 * 1700e-6);
        assert!(
            (admitted - expected as i64).abs() <= 1,
            "admitted {admitted}, want {expected} ±1"
        );
    }

    #[test]
    fn residue_resets_when_clamped_at_burst() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(RatePolicy::per_second(10.0, 2.0));
        assert!(b.try_take(t0));
        // 130 ms banks 1.3 tokens: one whole plus 0.3 residue.
        assert!(b.try_take(t0 + Duration::from_millis(130)));
        // A long idle clamps at burst and must forget the residue: the
        // next 70 ms credits 0.7, not 0.7 + 0.3.
        let idle = t0 + Duration::from_secs(10);
        assert!(b.try_take(idle));
        assert!(b.try_take(idle));
        assert!(!b.try_take(idle));
        assert!(
            !b.try_take(idle + Duration::from_millis(70)),
            "residue banked before the clamp must not survive it"
        );
        assert!(b.try_take(idle + Duration::from_millis(140)));
    }

    #[test]
    fn unlimited_never_throttles() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(RatePolicy::unlimited());
        for _ in 0..10_000 {
            assert!(b.try_take(t0));
        }
    }

    #[test]
    fn admission_isolates_tenants() {
        let t0 = Instant::now();
        let adm = Admission::new(
            RatePolicy::unlimited(),
            RatePolicy::unlimited(),
            RatePolicy::unlimited(),
        );
        adm.set_policy(7, RatePolicy::per_second(1.0, 1.0));
        assert!(adm.admit(7, AdmissionClass::Exact, t0).is_ok());
        assert_eq!(
            adm.admit(7, AdmissionClass::Exact, t0),
            Err(Overloaded::RateLimited { tenant: 7 })
        );
        // Other tenants ride the unlimited default.
        for _ in 0..100 {
            assert!(adm.admit(8, AdmissionClass::Exact, t0).is_ok());
        }
    }

    #[test]
    fn classes_budget_independently() {
        let t0 = Instant::now();
        let adm = Admission::new(
            RatePolicy::unlimited(),
            RatePolicy::unlimited(),
            RatePolicy::unlimited(),
        );
        adm.set_class_policy(5, AdmissionClass::Approx, RatePolicy::per_second(0.0, 2.0));
        // Approximate traffic drains its own bucket...
        assert!(adm.admit(5, AdmissionClass::Approx, t0).is_ok());
        assert!(adm.admit(5, AdmissionClass::Approx, t0).is_ok());
        assert_eq!(
            adm.admit(5, AdmissionClass::Approx, t0),
            Err(Overloaded::RateLimited { tenant: 5 })
        );
        // ...while the same tenant's exact traffic is untouched.
        for _ in 0..50 {
            assert!(adm.admit(5, AdmissionClass::Exact, t0).is_ok());
        }
        // And vice versa: a dry exact bucket spares the approx lane.
        adm.set_class_policy(6, AdmissionClass::Exact, RatePolicy::per_second(0.0, 1.0));
        assert!(adm.admit(6, AdmissionClass::Exact, t0).is_ok());
        assert!(adm.admit(6, AdmissionClass::Exact, t0).is_err());
        assert!(adm.admit(6, AdmissionClass::Approx, t0).is_ok());
    }

    #[test]
    fn passthrough_disengages_on_first_policy() {
        let t0 = Instant::now();
        let adm = Admission::new(
            RatePolicy::unlimited(),
            RatePolicy::unlimited(),
            RatePolicy::unlimited(),
        );
        // Fast path: no buckets exist yet, nothing is created.
        assert!(adm.admit(3, AdmissionClass::Exact, t0).is_ok());
        assert!(adm.buckets.lock().is_empty());
        // Installing any policy pins admission to the bucket map.
        adm.set_policy(3, RatePolicy::per_second(1.0, 1.0));
        assert!(adm.admit(3, AdmissionClass::Exact, t0).is_ok());
        assert_eq!(
            adm.admit(3, AdmissionClass::Exact, t0),
            Err(Overloaded::RateLimited { tenant: 3 })
        );
        // A finite default never engages the fast path.
        let strict = Admission::new(
            RatePolicy::per_second(0.0, 1.0),
            RatePolicy::unlimited(),
            RatePolicy::unlimited(),
        );
        assert!(strict.admit(9, AdmissionClass::Exact, t0).is_ok());
        assert_eq!(
            strict.admit(9, AdmissionClass::Exact, t0),
            Err(Overloaded::RateLimited { tenant: 9 })
        );
        // A finite *approx* default likewise keeps the slow path on.
        let strict_approx = Admission::new(
            RatePolicy::unlimited(),
            RatePolicy::per_second(0.0, 1.0),
            RatePolicy::unlimited(),
        );
        assert!(strict_approx.admit(9, AdmissionClass::Approx, t0).is_ok());
        assert!(strict_approx.admit(9, AdmissionClass::Approx, t0).is_err());
        assert!(strict_approx.admit(9, AdmissionClass::Exact, t0).is_ok());
    }

    #[test]
    fn write_class_budgets_independently() {
        let t0 = Instant::now();
        let adm = Admission::new(
            RatePolicy::unlimited(),
            RatePolicy::unlimited(),
            RatePolicy::per_second(0.0, 1.0),
        );
        // The finite write default keeps the fast path off and dries
        // after one write...
        assert!(adm.admit(4, AdmissionClass::Write, t0).is_ok());
        assert_eq!(
            adm.admit(4, AdmissionClass::Write, t0),
            Err(Overloaded::RateLimited { tenant: 4 })
        );
        // ...while the same tenant's searches ride untouched budgets.
        for _ in 0..50 {
            assert!(adm.admit(4, AdmissionClass::Exact, t0).is_ok());
            assert!(adm.admit(4, AdmissionClass::Approx, t0).is_ok());
        }
    }

    #[test]
    fn overloaded_formats() {
        assert_eq!(Overloaded::QueueFull.to_string(), "submission queue full");
        assert!(Overloaded::RateLimited { tenant: 3 }
            .to_string()
            .contains("tenant 3"));
        assert!(Overloaded::ShuttingDown.to_string().contains("shutting"));
    }
}
