//! Tiered execution backends: the same batch plan, two engines.
//!
//! Every query batch runs through one of two tiers:
//!
//! * **Spice** — the reference tier: per-row scalar evaluation over the
//!   stored ternary words, exactly as the circuit would sequence it.
//!   Row-by-row, branchy, honest.
//! * **Behavioural** — the throughput tier: a word-parallel bit-sliced
//!   kernel ([`ferrotcam::BitSlices`]) that evaluates 64 rows per
//!   machine word with `(query ^ value) & care` over pre-transposed
//!   match planes. Same ternary semantics, orders of magnitude faster.
//!
//! Both tiers execute against a [`SnapView`] — the immutable per-shard
//! snapshot set a dispatcher captured for the batch — so online writes
//! landing mid-batch can never tear a word under a running search.
//! Each snapshot block already carries *both* representations (sliced
//! planes for the fast tier, row-major packed words the reference tier
//! walks scalar-fashion), so neither tier rebuilds anything per batch.
//!
//! Both tiers return identical [`SearchOutcome`]s (global ids, sorted)
//! and both charge the *same* modelled silicon schedule and the same
//! SPICE-calibrated energy — the fast tier changes how the answer is
//! computed, never what is attributed to it. That claim is not taken on
//! faith: the service's sampled audit lane replays a deterministic
//! fraction of accepted behavioural queries on the Spice tier against
//! the *same captured view* and compares match sets bit-for-bit and
//! energies within a pinned tolerance ([`audit_compare`]).

use crate::batch;
use crate::request::RequestKind;
use crate::shard::SnapView;
use ferrotcam::approx::{query_levels, threshold_search, top_k_chunked, word_windows};
use ferrotcam::{ApproxHit, PackedQuery, SearchOutcome};
use ferrotcam_arch::sched::ScheduleOutcome;
use ferrotcam_spice::parallel::par_map;

/// Which execution tier answers a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Reference tier: per-row boolean search (circuit-faithful order).
    Spice,
    /// Throughput tier: bit-parallel sliced kernel, SPICE-attributed.
    Behavioural,
}

impl BackendKind {
    /// Parse a CLI/config spelling (`spice`, `behav`, `behavioural`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "spice" => Some(Self::Spice),
            "behav" | "behavioural" | "behavioral" => Some(Self::Behavioural),
            _ => None,
        }
    }

    /// Short stable tag used in metric/curve ids (`spice` / `behav`).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Self::Spice => "spice",
            Self::Behavioural => "behav",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// One planned batch handed to an execution tier: parallel arrays,
/// one entry per job.
#[derive(Debug, Clone, Copy)]
pub struct BatchSpec<'a> {
    /// Packed queries (bit queries for exact/threshold/top-k; 2-bit
    /// level queries for range).
    pub queries: &'a [PackedQuery],
    /// What each query asks for.
    pub kinds: &'a [RequestKind],
    /// `None` fans the job out over every shard; `Some(s)` pins it.
    pub targets: &'a [Option<usize>],
    /// Per-job bank-time multiplier from the dispatcher's cost model.
    pub costs: &'a [f64],
}

/// One executed batch: per-job outcomes plus the modelled bank
/// schedule, in batch order.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Per-job merged outcome; matches are global slot ids, ascending.
    pub outcomes: Vec<SearchOutcome>,
    /// Per-job ranked hits for approximate kinds, best-first with ties
    /// toward the lowest global row; empty for exact and range jobs.
    pub hits: Vec<Vec<ApproxHit>>,
    /// Per-job modelled completion time on the bank pool (s).
    pub per_job_latency_s: Vec<f64>,
    /// The batch's bank schedule (utilization, makespan, waits).
    pub sched: ScheduleOutcome,
}

/// An execution tier: plans a batch onto the banks and runs it.
pub trait ExecBackend: Send + Sync + std::fmt::Debug {
    /// Which tier this is.
    fn kind(&self) -> BackendKind;

    /// The batch size this tier amortises best at (a hint — the
    /// dispatcher uses it when the configured `max_batch` is 0).
    fn preferred_batch(&self) -> usize;

    /// Execute one batch against a captured snapshot view. `jobs` is
    /// the worker-pool width, `t_bank` the modelled per-bank busy time
    /// (s) for a unit-cost query.
    fn execute(
        &self,
        view: &SnapView,
        spec: &BatchSpec<'_>,
        jobs: usize,
        t_bank: f64,
    ) -> ExecResult;
}

/// One job's answer on one shard: counters plus (for approximate
/// kinds) the shard-local ranked hits with *global* row ids.
#[derive(Debug, Clone)]
struct ShardAnswer {
    outcome: SearchOutcome,
    hits: Vec<ApproxHit>,
}

/// Merge-and-rank step after every shard answered: sorts matches
/// globally and applies the kind's final selection (top-k truncation
/// after the cross-shard merge, so the global ranking — not any one
/// shard's — decides).
fn finalize_job(kind: RequestKind, outcome: &mut SearchOutcome, hits: &mut Vec<ApproxHit>) {
    match kind {
        RequestKind::Exact | RequestKind::Range => outcome.matches.sort_unstable(),
        RequestKind::Threshold { .. } => {
            hits.sort_unstable();
            outcome.matches.sort_unstable();
        }
        RequestKind::TopK { k } => {
            hits.sort_unstable();
            hits.truncate(k);
            // Per-shard answers count every examined row as a step-1
            // miss; the kept winners move over to the match column.
            let examined = outcome.step1_misses;
            outcome.matches = hits.iter().map(|h| h.row).collect();
            outcome.matches.sort_unstable();
            outcome.step1_misses = examined - hits.len();
        }
        _ => unreachable!("write kinds never reach the search backends"),
    }
}

/// The reference (naive, circuit-order) answer for one job on one
/// shard: row-by-row distance / window evaluation over the stored
/// ternary words (reconstructed scalar-fashion from the packed rows,
/// never through the sliced planes the fast tier uses), with global
/// row ids.
///
/// # Panics
/// Panics on an out-of-range shard, a query-width mismatch, or a write
/// kind (writes never reach the search backends).
fn naive_shard_answer(
    view: &SnapView,
    s: usize,
    kind: RequestKind,
    query: &PackedQuery,
) -> ShardAnswer {
    let snap = view.shard(s);
    match kind {
        RequestKind::Exact => {
            // Row-serial two-step classification over the packed words
            // — same circuit order as before, independent of the
            // sliced-plane kernel.
            let mut outcome = SearchOutcome::empty();
            for (base, blk) in snap.blocks() {
                let mut o = blk.packed().search(query);
                for m in &mut o.matches {
                    *m = view.global_row(s, base + *m);
                }
                outcome.absorb(o);
            }
            ShardAnswer {
                outcome,
                hits: Vec::new(),
            }
        }
        RequestKind::Threshold { t } => {
            let bits = query.to_bits();
            let mut outcome = SearchOutcome::empty();
            let mut hits = Vec::new();
            for (base, blk) in snap.blocks() {
                for l in 0..blk.len() {
                    let word = blk.packed().row_word(l);
                    let d = u32::try_from(word.mismatch_count(&bits)).expect("distance fits u32");
                    if d <= t {
                        let g = view.global_row(s, base + l);
                        outcome.matches.push(g);
                        hits.push(ApproxHit {
                            row: g,
                            distance: d,
                        });
                    } else {
                        outcome.step1_misses += 1;
                    }
                }
            }
            ShardAnswer { outcome, hits }
        }
        RequestKind::TopK { k } => {
            let bits = query.to_bits();
            // Global ids preserve the shard-local (distance, row)
            // order, so the local selection is already globally fair.
            let mut hits = Vec::with_capacity(snap.rows());
            for (base, blk) in snap.blocks() {
                for l in 0..blk.len() {
                    let word = blk.packed().row_word(l);
                    hits.push(ApproxHit {
                        row: view.global_row(s, base + l),
                        distance: u32::try_from(word.mismatch_count(&bits))
                            .expect("distance fits u32"),
                    });
                }
            }
            hits.sort_unstable();
            hits.truncate(k);
            ShardAnswer {
                outcome: SearchOutcome {
                    matches: Vec::new(),
                    step1_misses: snap.rows(),
                    step2_misses: 0,
                },
                hits,
            }
        }
        RequestKind::Range => {
            let levels = query_levels(query);
            let mut outcome = SearchOutcome::empty();
            for (base, blk) in snap.blocks() {
                for l in 0..blk.len() {
                    let word = blk.packed().row_word(l);
                    let in_window = word_windows(&word)
                        .iter()
                        .zip(&levels)
                        .all(|(&(lo, hi), &q)| lo <= q && q <= hi);
                    if in_window {
                        outcome.matches.push(view.global_row(s, base + l));
                    } else {
                        outcome.step1_misses += 1;
                    }
                }
            }
            ShardAnswer {
                outcome,
                hits: Vec::new(),
            }
        }
        _ => unreachable!("write kinds never reach the search backends"),
    }
}

/// The full reference answer for one request: naive per-shard
/// evaluation over `target` (or a fan-out over every shard), merged
/// and finalized exactly like a served batch. The audit lane replays
/// sampled behavioural answers through this, against the same captured
/// view the fast tier answered from.
#[must_use]
pub fn reference_search(
    view: &SnapView,
    kind: RequestKind,
    query: &PackedQuery,
    target: Option<usize>,
) -> (SearchOutcome, Vec<ApproxHit>) {
    let mut outcome = SearchOutcome::empty();
    let mut hits = Vec::new();
    let shards: Vec<usize> = match target {
        Some(s) => vec![s],
        None => (0..view.shard_count()).collect(),
    };
    for s in shards {
        let ans = naive_shard_answer(view, s, kind, query);
        outcome.absorb(ans.outcome);
        hits.extend(ans.hits);
    }
    finalize_job(kind, &mut outcome, &mut hits);
    (outcome, hits)
}

/// Shared plan/execute/merge skeleton of both tiers: `search(s, j)`
/// answers job `j` on shard `s` with *global* match ids.
fn run_plan<F>(
    shards: usize,
    spec: &BatchSpec<'_>,
    jobs: usize,
    t_bank: f64,
    search: F,
) -> ExecResult
where
    F: Fn(usize, usize) -> ShardAnswer + Sync,
{
    let plan = batch::plan(spec.targets, shards);
    let per_shard: Vec<Vec<(usize, ShardAnswer)>> = par_map(&plan.per_shard, jobs, |s, list| {
        list.iter().map(|&j| (j, search(s, j))).collect()
    });
    let n = spec.targets.len();
    let mut outcomes: Vec<SearchOutcome> = (0..n).map(|_| SearchOutcome::empty()).collect();
    let mut hits: Vec<Vec<ApproxHit>> = (0..n).map(|_| Vec::new()).collect();
    for shard_results in per_shard {
        for (j, ans) in shard_results {
            outcomes[j].absorb(ans.outcome);
            hits[j].extend(ans.hits);
        }
    }
    for j in 0..n {
        finalize_job(spec.kinds[j], &mut outcomes[j], &mut hits[j]);
    }
    let (sched, per_job_latency_s) = plan.schedule_weighted(shards, t_bank, spec.costs);
    ExecResult {
        outcomes,
        hits,
        per_job_latency_s,
        sched,
    }
}

/// The reference tier: boolean per-row search on the behavioural
/// shards, in circuit order.
#[derive(Debug, Default, Clone, Copy)]
pub struct SpiceBackend;

impl ExecBackend for SpiceBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Spice
    }

    fn preferred_batch(&self) -> usize {
        64
    }

    fn execute(
        &self,
        view: &SnapView,
        spec: &BatchSpec<'_>,
        jobs: usize,
        t_bank: f64,
    ) -> ExecResult {
        run_plan(view.shard_count(), spec, jobs, t_bank, |s, j| {
            naive_shard_answer(view, s, spec.kinds[j], &spec.queries[j])
        })
    }
}

/// The throughput tier. Stateless: every snapshot block already holds
/// its bit-sliced match planes (word-parallel step-1 rejection with a
/// row-major step-2 verify of the survivors), the packed words the
/// popcount Hamming kernel scans, and (for even widths) the
/// lane-packed `[lo,hi]` window table — all maintained incrementally
/// by the copy-on-write shard snapshots, so nothing is transposed per
/// batch and writes never invalidate a tier-side cache.
#[derive(Debug, Default, Clone, Copy)]
pub struct BehaviouralBackend;

impl ExecBackend for BehaviouralBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Behavioural
    }

    fn preferred_batch(&self) -> usize {
        1024
    }

    fn execute(
        &self,
        view: &SnapView,
        spec: &BatchSpec<'_>,
        jobs: usize,
        t_bank: f64,
    ) -> ExecResult {
        run_plan(view.shard_count(), spec, jobs, t_bank, |s, j| {
            let q = &spec.queries[j];
            let snap = view.shard(s);
            match spec.kinds[j] {
                RequestKind::Exact => {
                    let mut out = SearchOutcome::empty();
                    for (base, blk) in snap.blocks() {
                        let mut o = blk.slices().search(q);
                        for m in &mut o.matches {
                            *m = view.global_row(s, base + *m);
                        }
                        out.absorb(o);
                    }
                    ShardAnswer {
                        outcome: out,
                        hits: Vec::new(),
                    }
                }
                RequestKind::Threshold { t } => {
                    let mut hits = Vec::new();
                    for (base, blk) in snap.blocks() {
                        let mut h = threshold_search(blk.packed(), q, t);
                        for hit in &mut h {
                            hit.row = view.global_row(s, base + hit.row);
                        }
                        hits.extend(h);
                    }
                    let mut outcome = SearchOutcome::empty();
                    outcome.matches = hits.iter().map(|h| h.row).collect();
                    outcome.step1_misses = snap.rows() - hits.len();
                    ShardAnswer { outcome, hits }
                }
                RequestKind::TopK { k } => {
                    // One selection across every block: the heap's
                    // distance bound carries from block to block, so
                    // the copy-on-write layout prunes as hard as a
                    // contiguous scan. Local rows scan ascending and
                    // global ids are monotone in them, so the
                    // (distance, row) tie order is preserved.
                    let mut hits =
                        top_k_chunked(snap.blocks().map(|(base, blk)| (base, blk.packed())), q, k);
                    for hit in &mut hits {
                        hit.row = view.global_row(s, hit.row);
                    }
                    ShardAnswer {
                        outcome: SearchOutcome {
                            matches: Vec::new(),
                            step1_misses: snap.rows(),
                            step2_misses: 0,
                        },
                        hits,
                    }
                }
                RequestKind::Range => {
                    let mut outcome = SearchOutcome::empty();
                    for (base, blk) in snap.blocks() {
                        let ranges = blk.ranges().expect("range queries need an even word width");
                        outcome.matches.extend(
                            ranges
                                .search(q)
                                .iter()
                                .map(|&l| view.global_row(s, base + l)),
                        );
                    }
                    outcome.step1_misses = snap.rows() - outcome.matches.len();
                    ShardAnswer {
                        outcome,
                        hits: Vec::new(),
                    }
                }
                _ => unreachable!("write kinds never reach the search backends"),
            }
        })
    }
}

/// The audit lane's verdict on one replayed query.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditVerdict {
    /// The match sets (or miss counters) disagreed — a correctness bug.
    pub match_divergence: bool,
    /// Energies agreed on the match set but differed beyond tolerance.
    pub energy_divergence: bool,
    /// Relative energy error `|fast − ref| / max(|ref|, ε)`.
    pub energy_rel: f64,
    /// Human-readable account of the first disagreement, if any.
    pub detail: Option<String>,
}

impl AuditVerdict {
    /// Whether the replay agreed on everything.
    #[must_use]
    pub fn clean(&self) -> bool {
        !self.match_divergence && !self.energy_divergence
    }
}

/// Replay comparison: the fast tier's outcome/energy against the
/// reference tier's, with `tolerance` as the relative energy bound.
/// Match sets, ranked hit lists, and both miss counters must be
/// *bit-identical* — the kernels compute the same search, so any drift
/// is a bug, not noise.
#[must_use]
pub fn audit_compare(
    fast: &SearchOutcome,
    fast_hits: &[ApproxHit],
    fast_energy: Option<f64>,
    reference: &SearchOutcome,
    ref_hits: &[ApproxHit],
    ref_energy: Option<f64>,
    tolerance: f64,
) -> AuditVerdict {
    if fast.matches != reference.matches
        || fast.step1_misses != reference.step1_misses
        || fast.step2_misses != reference.step2_misses
    {
        return AuditVerdict {
            match_divergence: true,
            energy_divergence: false,
            energy_rel: 0.0,
            detail: Some(format!(
                "match sets diverged: fast {}m/{}s1/{}s2 vs ref {}m/{}s1/{}s2",
                fast.matches.len(),
                fast.step1_misses,
                fast.step2_misses,
                reference.matches.len(),
                reference.step1_misses,
                reference.step2_misses,
            )),
        };
    }
    if fast_hits != ref_hits {
        return AuditVerdict {
            match_divergence: true,
            energy_divergence: false,
            energy_rel: 0.0,
            detail: Some(format!(
                "ranked hits diverged: fast {} hits vs ref {} hits",
                fast_hits.len(),
                ref_hits.len(),
            )),
        };
    }
    let energy_rel = match (fast_energy, ref_energy) {
        (Some(a), Some(b)) => (a - b).abs() / b.abs().max(1e-300),
        _ => 0.0,
    };
    if energy_rel > tolerance {
        return AuditVerdict {
            match_divergence: false,
            energy_divergence: true,
            energy_rel,
            detail: Some(format!(
                "energy diverged: fast {:.6e} J vs ref {:.6e} J (rel {energy_rel:.3e} > tol {tolerance:.1e})",
                fast_energy.unwrap_or(0.0),
                ref_energy.unwrap_or(0.0),
            )),
        };
    }
    AuditVerdict {
        match_divergence: false,
        energy_divergence: false,
        energy_rel,
        detail: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{LiveTable, ShardedTcam};
    use ferrotcam::TernaryWord;
    use rand::split_mix64;

    fn view(table: &ShardedTcam) -> SnapView {
        LiveTable::from_sharded(table).snapshot()
    }

    fn table(rows: u64, shards: usize, width: usize) -> ShardedTcam {
        let mut t = ShardedTcam::new(width, shards);
        let mut seed = 0xfeed_0000_0000_0000 ^ rows;
        for _ in 0..rows {
            let v = split_mix64(&mut seed);
            let mut w = TernaryWord::from_u64(v, width.min(64));
            if width > 64 {
                w = format!("{}{}", "X".repeat(width - 64), w)
                    .parse()
                    .expect("wide word");
            }
            // Sprinkle wildcards so step-2 actually fires.
            t.store(w);
        }
        t
    }

    fn rand_query(width: usize, seed: &mut u64) -> PackedQuery {
        let words: Vec<u64> = (0..width.div_ceil(64)).map(|_| split_mix64(seed)).collect();
        PackedQuery::from_words(width, &words)
    }

    #[test]
    fn kind_parses_and_tags() {
        assert_eq!(BackendKind::parse("spice"), Some(BackendKind::Spice));
        assert_eq!(BackendKind::parse("BEHAV"), Some(BackendKind::Behavioural));
        assert_eq!(
            BackendKind::parse("behavioural"),
            Some(BackendKind::Behavioural)
        );
        assert_eq!(BackendKind::parse("fast"), None);
        assert_eq!(BackendKind::Spice.tag(), "spice");
        assert_eq!(BackendKind::Behavioural.to_string(), "behav");
    }

    #[test]
    fn tiers_agree_on_fanout_and_partitioned_batches() {
        for width in [8usize, 64, 100] {
            let t = view(&table(200, 3, width));
            let behav = BehaviouralBackend;
            let spice = SpiceBackend;
            let mut seed = 0x1234_5678_9abc_def0 ^ width as u64;
            let queries: Vec<PackedQuery> = (0..24).map(|_| rand_query(width, &mut seed)).collect();
            let targets: Vec<Option<usize>> = (0..24)
                .map(|i| if i % 3 == 0 { None } else { Some(i % 3) })
                .collect();
            let kinds = vec![RequestKind::Exact; 24];
            let costs = vec![1.0; 24];
            let spec = BatchSpec {
                queries: &queries,
                kinds: &kinds,
                targets: &targets,
                costs: &costs,
            };
            let a = spice.execute(&t, &spec, 1, 1e-9);
            let b = behav.execute(&t, &spec, 1, 1e-9);
            for j in 0..queries.len() {
                assert_eq!(a.outcomes[j].matches, b.outcomes[j].matches, "job {j}");
                assert_eq!(a.outcomes[j].step1_misses, b.outcomes[j].step1_misses);
                assert_eq!(a.outcomes[j].step2_misses, b.outcomes[j].step2_misses);
                assert!((a.per_job_latency_s[j] - b.per_job_latency_s[j]).abs() < 1e-18);
            }
        }
    }

    #[test]
    fn tiers_agree_on_mixed_kind_batches() {
        // Every request kind, fan-out and pinned, on both even widths
        // (range mode needs an even width; random bit queries are valid
        // level queries too, since any 2-bit pattern is a level 0..=3).
        for width in [8usize, 64] {
            let t = view(&table(160, 4, width));
            let behav = BehaviouralBackend;
            let spice = SpiceBackend;
            let mut seed = 0xabcd_ef01_2345_6789 ^ width as u64;
            let n = 32;
            let queries: Vec<PackedQuery> = (0..n).map(|_| rand_query(width, &mut seed)).collect();
            let kinds: Vec<RequestKind> = (0..n)
                .map(|i| match i % 4 {
                    0 => RequestKind::Exact,
                    1 => RequestKind::Threshold { t: (i % 7) as u32 },
                    2 => RequestKind::TopK { k: 1 + i % 9 },
                    _ => RequestKind::Range,
                })
                .collect();
            let targets: Vec<Option<usize>> = (0..n)
                .map(|i| if i % 3 == 0 { None } else { Some(i % 4) })
                .collect();
            let costs = vec![1.0; n];
            let spec = BatchSpec {
                queries: &queries,
                kinds: &kinds,
                targets: &targets,
                costs: &costs,
            };
            let a = spice.execute(&t, &spec, 1, 1e-9);
            let b = behav.execute(&t, &spec, 1, 1e-9);
            for j in 0..n {
                assert_eq!(a.outcomes[j].matches, b.outcomes[j].matches, "job {j}");
                assert_eq!(
                    a.outcomes[j].step1_misses, b.outcomes[j].step1_misses,
                    "job {j}"
                );
                assert_eq!(a.outcomes[j].step2_misses, b.outcomes[j].step2_misses);
                assert_eq!(a.hits[j], b.hits[j], "job {j} hits");
                // And both tiers agree with the standalone reference.
                let (ref_out, ref_hits) = reference_search(&t, kinds[j], &queries[j], targets[j]);
                assert_eq!(a.outcomes[j].matches, ref_out.matches);
                assert_eq!(a.hits[j], ref_hits);
                // Top-k hit lists are capped and sorted best-first.
                if let RequestKind::TopK { k } = kinds[j] {
                    assert!(b.hits[j].len() <= k);
                    assert!(b.hits[j].windows(2).all(|w| w[0] < w[1]));
                }
            }
        }
    }

    #[test]
    fn weighted_costs_shift_the_batch_schedule() {
        let t = view(&table(64, 2, 16));
        let behav = BehaviouralBackend;
        let queries: Vec<PackedQuery> = {
            let mut seed = 7u64;
            (0..4).map(|_| rand_query(16, &mut seed)).collect()
        };
        let kinds = vec![RequestKind::Exact; 4];
        let targets = vec![Some(0), Some(0), Some(1), Some(1)];
        let unit = vec![1.0; 4];
        let heavy = vec![1.0, 4.0, 1.0, 1.0];
        let a = behav.execute(
            &t,
            &BatchSpec {
                queries: &queries,
                kinds: &kinds,
                targets: &targets,
                costs: &unit,
            },
            1,
            1e-9,
        );
        let b = behav.execute(
            &t,
            &BatchSpec {
                queries: &queries,
                kinds: &kinds,
                targets: &targets,
                costs: &heavy,
            },
            1,
            1e-9,
        );
        assert!(
            b.sched.makespan > a.sched.makespan,
            "cost 4 job stretches the bank"
        );
        assert_eq!(
            a.outcomes[0].matches, b.outcomes[0].matches,
            "costs never change answers"
        );
    }

    #[test]
    fn audit_compare_flags_divergences() {
        let base = SearchOutcome {
            matches: vec![1, 5],
            step1_misses: 10,
            step2_misses: 2,
        };
        let ok = audit_compare(
            &base,
            &[],
            Some(1e-12),
            &base.clone(),
            &[],
            Some(1e-12),
            1e-9,
        );
        assert!(ok.clean());
        assert_eq!(ok.energy_rel, 0.0);

        let mut wrong = base.clone();
        wrong.matches = vec![1];
        let v = audit_compare(&wrong, &[], Some(1e-12), &base, &[], Some(1e-12), 1e-9);
        assert!(v.match_divergence && !v.energy_divergence);
        assert!(v.detail.as_deref().unwrap().contains("match sets diverged"));

        // Hit lists are compared too: same counters, different ranking.
        let h1 = [
            ApproxHit {
                row: 1,
                distance: 0,
            },
            ApproxHit {
                row: 5,
                distance: 2,
            },
        ];
        let h2 = [
            ApproxHit {
                row: 1,
                distance: 0,
            },
            ApproxHit {
                row: 5,
                distance: 3,
            },
        ];
        let v = audit_compare(
            &base,
            &h1,
            Some(1e-12),
            &base.clone(),
            &h2,
            Some(1e-12),
            1e-9,
        );
        assert!(v.match_divergence);
        assert!(v
            .detail
            .as_deref()
            .unwrap()
            .contains("ranked hits diverged"));

        let v = audit_compare(
            &base,
            &[],
            Some(1.1e-12),
            &base.clone(),
            &[],
            Some(1e-12),
            1e-9,
        );
        assert!(!v.match_divergence && v.energy_divergence);
        assert!((v.energy_rel - 0.1).abs() < 1e-12);

        // Within tolerance: clean, but the rel error is still reported.
        let v = audit_compare(
            &base,
            &[],
            Some(1e-12 + 1e-25),
            &base.clone(),
            &[],
            Some(1e-12),
            1e-9,
        );
        assert!(v.clean());
        assert!(v.energy_rel > 0.0);
    }
}
