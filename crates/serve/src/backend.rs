//! Tiered execution backends: the same batch plan, two engines.
//!
//! Every query batch runs through one of two tiers:
//!
//! * **Spice** — the reference tier: per-row boolean two-step search on
//!   the behavioural shards ([`ShardedTcam::search_shard`]), exactly as
//!   the circuit would sequence it. Row-by-row, branchy, honest.
//! * **Behavioural** — the throughput tier: a word-parallel bit-sliced
//!   kernel ([`ferrotcam::BitSlices`]) that evaluates 64 rows per
//!   machine word with `(query ^ value) & care` over pre-transposed
//!   match planes. Same ternary semantics, orders of magnitude faster.
//!
//! Both tiers return identical [`SearchOutcome`]s (global ids, sorted)
//! and both charge the *same* modelled silicon schedule and the same
//! SPICE-calibrated energy — the fast tier changes how the answer is
//! computed, never what is attributed to it. That claim is not taken on
//! faith: the service's sampled audit lane replays a deterministic
//! fraction of accepted behavioural queries on the Spice tier and
//! compares match sets bit-for-bit and energies within a pinned
//! tolerance ([`audit_compare`]).

use crate::batch;
use crate::shard::ShardedTcam;
use ferrotcam::{BitSlices, PackedQuery, SearchOutcome};
use ferrotcam_arch::sched::ScheduleOutcome;
use ferrotcam_spice::parallel::par_map;

/// Which execution tier answers a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Reference tier: per-row boolean search (circuit-faithful order).
    Spice,
    /// Throughput tier: bit-parallel sliced kernel, SPICE-attributed.
    Behavioural,
}

impl BackendKind {
    /// Parse a CLI/config spelling (`spice`, `behav`, `behavioural`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "spice" => Some(Self::Spice),
            "behav" | "behavioural" | "behavioral" => Some(Self::Behavioural),
            _ => None,
        }
    }

    /// Short stable tag used in metric/curve ids (`spice` / `behav`).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Self::Spice => "spice",
            Self::Behavioural => "behav",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// One executed batch: per-job outcomes plus the modelled bank
/// schedule, in batch order.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Per-job merged outcome; matches are global slot ids, ascending.
    pub outcomes: Vec<SearchOutcome>,
    /// Per-job modelled completion time on the bank pool (s).
    pub per_job_latency_s: Vec<f64>,
    /// The batch's bank schedule (utilization, makespan, waits).
    pub sched: ScheduleOutcome,
}

/// An execution tier: plans a batch onto the banks and runs it.
pub trait ExecBackend: Send + Sync + std::fmt::Debug {
    /// Which tier this is.
    fn kind(&self) -> BackendKind;

    /// The batch size this tier amortises best at (a hint — the
    /// dispatcher uses it when the configured `max_batch` is 0).
    fn preferred_batch(&self) -> usize;

    /// Execute one batch. `queries[j]` visits every shard when
    /// `targets[j]` is `None`, else only `targets[j]`. `jobs` is the
    /// worker-pool width, `t_bank` the modelled per-bank busy time (s).
    fn execute(
        &self,
        table: &ShardedTcam,
        queries: &[PackedQuery],
        targets: &[Option<usize>],
        jobs: usize,
        t_bank: f64,
    ) -> ExecResult;
}

/// Shared plan/execute/merge skeleton of both tiers: `search(s, j)`
/// answers job `j` on shard `s` with *global* match ids.
fn run_plan<F>(
    shards: usize,
    targets: &[Option<usize>],
    jobs: usize,
    t_bank: f64,
    search: F,
) -> ExecResult
where
    F: Fn(usize, usize) -> SearchOutcome + Sync,
{
    let plan = batch::plan(targets, shards);
    let per_shard: Vec<Vec<(usize, SearchOutcome)>> = par_map(&plan.per_shard, jobs, |s, list| {
        list.iter().map(|&j| (j, search(s, j))).collect()
    });
    let mut outcomes: Vec<SearchOutcome> =
        (0..targets.len()).map(|_| SearchOutcome::empty()).collect();
    for shard_results in per_shard {
        for (j, out) in shard_results {
            outcomes[j].absorb(out);
        }
    }
    for out in &mut outcomes {
        out.matches.sort_unstable();
    }
    let (sched, per_job_latency_s) = plan.schedule(shards, t_bank);
    ExecResult {
        outcomes,
        per_job_latency_s,
        sched,
    }
}

/// The reference tier: boolean per-row search on the behavioural
/// shards, in circuit order.
#[derive(Debug, Default, Clone, Copy)]
pub struct SpiceBackend;

impl ExecBackend for SpiceBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Spice
    }

    fn preferred_batch(&self) -> usize {
        64
    }

    fn execute(
        &self,
        table: &ShardedTcam,
        queries: &[PackedQuery],
        targets: &[Option<usize>],
        jobs: usize,
        t_bank: f64,
    ) -> ExecResult {
        // Unpack once per job, not once per (job, shard) unit.
        let bits: Vec<Vec<bool>> = queries.iter().map(PackedQuery::to_bits).collect();
        run_plan(table.shard_count(), targets, jobs, t_bank, |s, j| {
            table.search_shard(s, &bits[j])
        })
    }
}

/// The throughput tier: one bit-sliced plane set per shard, built once
/// from the served table. Word-parallel step-1 rejection with a
/// row-major step-2 verify of the survivors.
#[derive(Debug)]
pub struct BehaviouralBackend {
    shards: Vec<BitSlices>,
}

impl BehaviouralBackend {
    /// Transpose every shard of `table` into match planes.
    #[must_use]
    pub fn build(table: &ShardedTcam) -> Self {
        Self {
            shards: (0..table.shard_count())
                .map(|s| BitSlices::from_tcam(table.shard(s)))
                .collect(),
        }
    }
}

impl ExecBackend for BehaviouralBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Behavioural
    }

    fn preferred_batch(&self) -> usize {
        1024
    }

    fn execute(
        &self,
        table: &ShardedTcam,
        queries: &[PackedQuery],
        targets: &[Option<usize>],
        jobs: usize,
        t_bank: f64,
    ) -> ExecResult {
        run_plan(table.shard_count(), targets, jobs, t_bank, |s, j| {
            let mut out = self.shards[s].search(&queries[j]);
            for m in &mut out.matches {
                *m = table.global_row(s, *m);
            }
            out
        })
    }
}

/// The audit lane's verdict on one replayed query.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditVerdict {
    /// The match sets (or miss counters) disagreed — a correctness bug.
    pub match_divergence: bool,
    /// Energies agreed on the match set but differed beyond tolerance.
    pub energy_divergence: bool,
    /// Relative energy error `|fast − ref| / max(|ref|, ε)`.
    pub energy_rel: f64,
    /// Human-readable account of the first disagreement, if any.
    pub detail: Option<String>,
}

impl AuditVerdict {
    /// Whether the replay agreed on everything.
    #[must_use]
    pub fn clean(&self) -> bool {
        !self.match_divergence && !self.energy_divergence
    }
}

/// Replay comparison: the fast tier's outcome/energy against the
/// reference tier's, with `tolerance` as the relative energy bound.
/// Match sets and both miss counters must be *bit-identical* — the
/// kernel computes the same search, so any drift is a bug, not noise.
#[must_use]
pub fn audit_compare(
    fast: &SearchOutcome,
    fast_energy: Option<f64>,
    reference: &SearchOutcome,
    ref_energy: Option<f64>,
    tolerance: f64,
) -> AuditVerdict {
    if fast.matches != reference.matches
        || fast.step1_misses != reference.step1_misses
        || fast.step2_misses != reference.step2_misses
    {
        return AuditVerdict {
            match_divergence: true,
            energy_divergence: false,
            energy_rel: 0.0,
            detail: Some(format!(
                "match sets diverged: fast {}m/{}s1/{}s2 vs ref {}m/{}s1/{}s2",
                fast.matches.len(),
                fast.step1_misses,
                fast.step2_misses,
                reference.matches.len(),
                reference.step1_misses,
                reference.step2_misses,
            )),
        };
    }
    let energy_rel = match (fast_energy, ref_energy) {
        (Some(a), Some(b)) => (a - b).abs() / b.abs().max(1e-300),
        _ => 0.0,
    };
    if energy_rel > tolerance {
        return AuditVerdict {
            match_divergence: false,
            energy_divergence: true,
            energy_rel,
            detail: Some(format!(
                "energy diverged: fast {:.6e} J vs ref {:.6e} J (rel {energy_rel:.3e} > tol {tolerance:.1e})",
                fast_energy.unwrap_or(0.0),
                ref_energy.unwrap_or(0.0),
            )),
        };
    }
    AuditVerdict {
        match_divergence: false,
        energy_divergence: false,
        energy_rel,
        detail: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrotcam::TernaryWord;
    use rand::split_mix64;

    fn table(rows: u64, shards: usize, width: usize) -> ShardedTcam {
        let mut t = ShardedTcam::new(width, shards);
        let mut seed = 0xfeed_0000_0000_0000 ^ rows;
        for _ in 0..rows {
            let v = split_mix64(&mut seed);
            let mut w = TernaryWord::from_u64(v, width.min(64));
            if width > 64 {
                w = format!("{}{}", "X".repeat(width - 64), w)
                    .parse()
                    .expect("wide word");
            }
            // Sprinkle wildcards so step-2 actually fires.
            t.store(w);
        }
        t
    }

    fn rand_query(width: usize, seed: &mut u64) -> PackedQuery {
        let words: Vec<u64> = (0..width.div_ceil(64)).map(|_| split_mix64(seed)).collect();
        PackedQuery::from_words(width, &words)
    }

    #[test]
    fn kind_parses_and_tags() {
        assert_eq!(BackendKind::parse("spice"), Some(BackendKind::Spice));
        assert_eq!(BackendKind::parse("BEHAV"), Some(BackendKind::Behavioural));
        assert_eq!(
            BackendKind::parse("behavioural"),
            Some(BackendKind::Behavioural)
        );
        assert_eq!(BackendKind::parse("fast"), None);
        assert_eq!(BackendKind::Spice.tag(), "spice");
        assert_eq!(BackendKind::Behavioural.to_string(), "behav");
    }

    #[test]
    fn tiers_agree_on_fanout_and_partitioned_batches() {
        for width in [8usize, 64, 100] {
            let t = table(200, 3, width);
            let behav = BehaviouralBackend::build(&t);
            let spice = SpiceBackend;
            let mut seed = 0x1234_5678_9abc_def0 ^ width as u64;
            let queries: Vec<PackedQuery> = (0..24).map(|_| rand_query(width, &mut seed)).collect();
            let targets: Vec<Option<usize>> = (0..24)
                .map(|i| if i % 3 == 0 { None } else { Some(i % 3) })
                .collect();
            let a = spice.execute(&t, &queries, &targets, 1, 1e-9);
            let b = behav.execute(&t, &queries, &targets, 1, 1e-9);
            for j in 0..queries.len() {
                assert_eq!(a.outcomes[j].matches, b.outcomes[j].matches, "job {j}");
                assert_eq!(a.outcomes[j].step1_misses, b.outcomes[j].step1_misses);
                assert_eq!(a.outcomes[j].step2_misses, b.outcomes[j].step2_misses);
                assert!((a.per_job_latency_s[j] - b.per_job_latency_s[j]).abs() < 1e-18);
            }
        }
    }

    #[test]
    fn audit_compare_flags_divergences() {
        let base = SearchOutcome {
            matches: vec![1, 5],
            step1_misses: 10,
            step2_misses: 2,
        };
        let ok = audit_compare(&base, Some(1e-12), &base.clone(), Some(1e-12), 1e-9);
        assert!(ok.clean());
        assert_eq!(ok.energy_rel, 0.0);

        let mut wrong = base.clone();
        wrong.matches = vec![1];
        let v = audit_compare(&wrong, Some(1e-12), &base, Some(1e-12), 1e-9);
        assert!(v.match_divergence && !v.energy_divergence);
        assert!(v.detail.as_deref().unwrap().contains("match sets diverged"));

        let v = audit_compare(&base, Some(1.1e-12), &base.clone(), Some(1e-12), 1e-9);
        assert!(!v.match_divergence && v.energy_divergence);
        assert!((v.energy_rel - 0.1).abs() < 1e-12);

        // Within tolerance: clean, but the rel error is still reported.
        let v = audit_compare(&base, Some(1e-12 + 1e-25), &base.clone(), Some(1e-12), 1e-9);
        assert!(v.clean());
        assert!(v.energy_rel > 0.0);
    }
}
