//! Ad-hoc microbenchmark of the behavioural backend's batch path and
//! the full service loop, per request kind. Not part of the bench
//! suite — run with `cargo run --release -p ferrotcam-serve --example
//! svcbench` when hunting serve-path regressions.

use ferrotcam::{Calibration, DesignKind, PackedQuery, TernaryWord};
use ferrotcam_serve::{
    BatchSpec, BehaviouralBackend, ExecBackend, LiveTable, RequestKind, ServiceConfig, ShardedTcam,
    TcamService,
};
use std::time::{Duration, Instant};

fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_query(state: &mut u64, width: usize) -> PackedQuery {
    let bits: Vec<bool> = (0..width).map(|_| split_mix64(state) & 1 == 1).collect();
    PackedQuery::from_bits(&bits)
}

fn build_table(rows: usize, width: usize, shards: usize) -> ShardedTcam {
    let mut t = ShardedTcam::new(width, shards);
    let mut state = 42u64;
    for _ in 0..rows {
        let q = random_query(&mut state, width);
        let shard = t.route_packed(&q);
        t.store_in(shard, TernaryWord::from_bits(&q.to_bits()));
    }
    t
}

fn bench_backend(table: &ShardedTcam, kind: RequestKind, routed: bool, tag: &str) {
    let backend = BehaviouralBackend;
    let view = LiveTable::from_sharded(table).snapshot();
    let mut state = 7u64;
    let n = 1024usize;
    let queries: Vec<PackedQuery> = (0..n)
        .map(|_| random_query(&mut state, table.width()))
        .collect();
    let targets: Vec<Option<usize>> = queries
        .iter()
        .map(|q| routed.then(|| table.route_packed(q)))
        .collect();
    let kinds = vec![kind; n];
    let costs = vec![1.0f64; n];
    let spec = BatchSpec {
        queries: &queries,
        kinds: &kinds,
        targets: &targets,
        costs: &costs,
    };
    let mut best = f64::INFINITY;
    for _ in 0..8 {
        let t0 = Instant::now();
        let r = backend.execute(&view, &spec, 1, 1e-9);
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(&r.outcomes);
        best = best.min(dt / n as f64 * 1e6);
    }
    println!("backend {tag:<22} {best:8.2} us/job");
}

/// Open loop paced exactly like serve-bench: Poisson arrivals at
/// `offered` qps with 200 us producer naps.
fn bench_service(table: ShardedTcam, kind: RequestKind, offered: f64, secs: f64, tag: &str) {
    let cfg = ServiceConfig {
        backend: ferrotcam_serve::BackendKind::Behavioural,
        queue_capacity: 16 * 1024,
        max_batch: 0,
        audit_period: 0,
        ..ServiceConfig::default()
    };
    let svc = TcamService::start(table, &cfg);
    let client = svc.client();
    let mut state = 11u64;
    let started = Instant::now();
    let horizon = Duration::from_secs_f64(secs);
    let mut next_arrival = 0.0f64;
    loop {
        let now = started.elapsed();
        if now >= horizon {
            break;
        }
        while next_arrival <= now.as_secs_f64() {
            let u = (split_mix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            next_arrival += -(1.0 - u).max(f64::MIN_POSITIVE).ln() / offered;
            let q = random_query(&mut state, client.width());
            let shard = Some(client.route_packed(&q));
            let _ = client.submit_noreply_kind(0, q, kind, shard);
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    let m = svc.drain();
    let dt = started.elapsed().as_secs_f64();
    println!(
        "service {tag:<22} {:8.0} qps  ({} completed, {} shed, {} batches)",
        m.completed as f64 / dt,
        m.completed,
        m.shed_queue_full,
        m.batch.batches
    );
}

fn main() {
    let (rows, width, shards) = (16384usize, 64usize, 4usize);
    let metrics = Calibration::paper_defaults(DesignKind::T15Dg).search_metrics(width);
    let table = build_table(rows, width, shards);
    for (tag, kind) in [
        ("exact", RequestKind::Exact),
        ("threshold t=2", RequestKind::Threshold { t: 2 }),
        ("topk k=8", RequestKind::TopK { k: 8 }),
        ("range", RequestKind::Range),
    ] {
        bench_backend(&table, kind, true, &format!("{tag} routed"));
        bench_backend(&table, kind, false, &format!("{tag} fanout"));
    }
    for (tag, kind) in [
        ("exact", RequestKind::Exact),
        ("threshold t=2", RequestKind::Threshold { t: 2 }),
        ("topk k=8", RequestKind::TopK { k: 8 }),
        ("range", RequestKind::Range),
    ] {
        let mut t = build_table(rows, width, shards);
        t.attach_metrics(metrics.clone());
        bench_service(t, kind, 600_000.0, 1.0, &format!("{tag} routed"));
    }
}
