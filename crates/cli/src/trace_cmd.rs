//! `ferrotcam trace` — run one instrumented row search and render the
//! observability output (human summary or NDJSON event stream).

use ferrotcam_spice::trace::{self, TraceLevel};

/// Run the `trace` subcommand.
///
/// Accepts optional `<design> <stored-word> <query-bits>` positionals
/// (default: a 4-bit 2DG row with a one-bit mismatch) plus `--summary`
/// (default) or `--full` to pick the trace level, `--ndjson` to emit
/// the raw event stream, and `--out FILE` to write it to a file.
///
/// # Errors
/// Human-readable messages for bad arguments, simulation failures, or
/// an unwritable `--out` path.
pub fn run(args: &[String]) -> Result<(), String> {
    let mut positional = Vec::new();
    let mut ndjson = false;
    let mut level_flag = None;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ndjson" => ndjson = true,
            "--full" => level_flag = Some(TraceLevel::Full),
            "--summary" => level_flag = Some(TraceLevel::Summary),
            "--out" => {
                out_path = Some(
                    it.next()
                        .ok_or_else(|| "--out needs a file path".to_string())?
                        .clone(),
                );
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown trace flag {other:?}"));
            }
            other => positional.push(other.to_string()),
        }
    }

    let (design, stored, query) = match positional.len() {
        0 => ("2dg".to_string(), "0101".to_string(), "0111".to_string()),
        3 => (
            positional[0].clone(),
            positional[1].clone(),
            positional[2].clone(),
        ),
        _ => {
            return Err(
                "usage: ferrotcam trace [<design> <stored-word> <query-bits>] \
                 [--summary|--full] [--ndjson] [--out FILE]"
                    .into(),
            );
        }
    };
    let design = crate::commands::parse_design(&design)?;
    let stored = crate::commands::parse_word(&stored)?;
    let query = crate::commands::parse_query(&query, stored.len())?;
    if design.is_two_step() && stored.len() % 2 != 0 {
        return Err("1.5T designs pair cells: use an even word length".into());
    }

    // Flags win over FERROTCAM_TRACE; default is summary so the command
    // always produces output even with tracing disabled in the env.
    let level = level_flag.unwrap_or_else(|| {
        std::env::var("FERROTCAM_TRACE")
            .ok()
            .and_then(|s| TraceLevel::parse(&s))
            .filter(|&l| l != TraceLevel::Off)
            .unwrap_or(TraceLevel::Summary)
    });
    trace::set_level(level);
    trace::reset();

    let mut sim = crate::commands::build(design, &stored, &query)?;
    let run = sim.run().map_err(|e| format!("transient failed: {e}"))?;
    let stats = run.trace.stats();

    if ndjson {
        let events = trace::take_events();
        let body = trace::render_ndjson(&events);
        match out_path {
            Some(path) => {
                if let Some(dir) = std::path::Path::new(&path).parent() {
                    if !dir.as_os_str().is_empty() {
                        std::fs::create_dir_all(dir)
                            .map_err(|e| format!("creating {}: {e}", dir.display()))?;
                    }
                }
                std::fs::write(&path, &body).map_err(|e| format!("writing {path}: {e}"))?;
                println!(
                    "wrote {} event(s) to {path} ({} accepted / {} rejected step(s) in SimStats)",
                    events.len(),
                    stats.accepted_steps,
                    stats.rejected_steps
                );
            }
            None => crate::commands::write_stdout(&body)?,
        }
    } else {
        let summary = trace::summary();
        println!(
            "{} row search: stored {stored}, level {level:?}",
            design.name()
        );
        print!("{}", summary.render());
        println!(
            "simstats cross-check: {} accepted / {} rejected step(s), {} newton iter(s)",
            stats.accepted_steps, stats.rejected_steps, stats.newton_iters
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_args(args: &[&str]) -> Result<(), String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&v)
    }

    #[test]
    fn summary_and_ndjson_paths_work() {
        run_args(&[]).unwrap();
        let dir = std::env::temp_dir().join("ferrotcam-trace-cmd-test");
        let path = dir.join("t.ndjson");
        run_args(&["--full", "--ndjson", "--out", path.to_str().unwrap()]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.lines().count() > 0);
        for line in body.lines() {
            let v: serde_json::JsonValue = serde_json::from_str(line).unwrap();
            assert!(v.get("kind").is_some(), "line missing kind: {line}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_flags_rejected() {
        assert!(run_args(&["--bogus"]).is_err());
        assert!(run_args(&["--out"]).is_err());
        assert!(run_args(&["2dg", "01"]).is_err());
    }
}
