//! `ferrotcam analyze`: run the concurrency static analyzer over the
//! serve layer's sources, without compiling or executing them.
//!
//! The counterpart of `ferrotcam lint` one level up the stack: `lint`
//! audits the netlists the toolkit *generates*, `analyze` audits the
//! concurrent Rust that *serves* them. With `--deny` any deny-severity
//! diagnostic fails the command (the CI configuration), and `--json`
//! emits one machine-readable report. `--root` overrides workspace
//! discovery, which otherwise walks up from the current directory to
//! the first ancestor holding the checked-in registry.

use ferrotcam_analysis::{analyze_workspace, REGISTRY_PATH};
use std::path::PathBuf;

/// Walk up from the current directory to the first ancestor that
/// contains the analysis registry — the workspace root.
fn discover_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| format!("reading current dir: {e}"))?;
    for dir in start.ancestors() {
        if dir.join(REGISTRY_PATH).is_file() {
            return Ok(dir.to_path_buf());
        }
    }
    Err(format!(
        "no `{REGISTRY_PATH}` found in {} or any ancestor; run from the \
         workspace or pass --root <dir>",
        start.display()
    ))
}

/// Run the analyze command. See module docs for the flags.
///
/// # Errors
/// Bad flags, an unreadable source tree or registry, and (with
/// `--deny`) any deny-severity diagnostic.
pub fn run(args: &[String]) -> Result<(), String> {
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--root" => {
                let dir = it
                    .next()
                    .ok_or_else(|| "--root requires a directory argument".to_string())?;
                root = Some(PathBuf::from(dir));
            }
            other => {
                return Err(format!(
                    "unknown analyze flag {other:?} (expected --deny, --json, --root <dir>)"
                ))
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => discover_root()?,
    };
    let report = analyze_workspace(&root)?;
    if json {
        let mut body = report.to_json();
        body.push('\n');
        crate::commands::write_stdout(&body)?;
    } else {
        crate::commands::write_stdout(&report.render_human())?;
    }
    if deny && report.num_deny() > 0 {
        return Err(format!(
            "analyze --deny: {} deny-severity diagnostic(s)",
            report.num_deny()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The workspace root, two levels above this crate's manifest.
    fn root_flag() -> Vec<String> {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..");
        vec!["--root".to_string(), root.display().to_string()]
    }

    #[test]
    fn workspace_is_clean_under_deny() {
        let mut args = root_flag();
        args.push("--deny".to_string());
        run(&args).expect("serve sources must analyze clean");
    }

    #[test]
    fn json_mode_runs_clean() {
        let mut args = root_flag();
        args.push("--json".to_string());
        args.push("--deny".to_string());
        run(&args).expect("json analyze");
    }

    #[test]
    fn unknown_flag_is_rejected() {
        assert!(run(&["--bogus".to_string()]).is_err());
    }

    #[test]
    fn missing_root_argument_is_rejected() {
        assert!(run(&["--root".to_string()]).is_err());
    }

    #[test]
    fn bad_root_is_a_registry_error() {
        let err = run(&[
            "--root".to_string(),
            "/nonexistent-ferrotcam-root".to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("registry"), "unexpected error: {err}");
    }
}
