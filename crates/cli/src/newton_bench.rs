//! `ferrotcam bench` — Newton hot-path benchmark for the transient
//! engine.
//!
//! Runs the Fig. 7 search experiment (one 64-bit 1.5T1DG row, two-step
//! search) under pinned solver configurations and reports wall-clock
//! per transient:
//!
//! * `bypass=off, ordering=natural` — the pre-optimisation baseline;
//! * `bypass=safe, ordering=amd` — the production default;
//! * `bypass=aggressive, ordering=amd` — caches persisted across steps.
//!
//! Results land in `BENCH_newton.json` (results dir: `$FERROTCAM_RESULTS`
//! or `./results`), in the criterion-style `results` format understood
//! by `compare_runs --bench`. With `--smoke` the acceptance invariants
//! become hard failures: the safe-bypass waveforms must agree with the
//! baseline to 1e-6 V on every probed node, and `SimStats.bypass_hits`
//! must be non-zero (a silent bypass regression fails CI, not just a
//! slow one).

use ferrotcam::cell::DesignKind;
use ferrotcam::SearchSim;
use ferrotcam_spice::{BypassPolicy, NewtonOpts, Ordering, SimStats, Trace};
use serde::Serialize;
use std::fmt::Write as _;
use std::time::Instant;

/// One timed configuration in the `BENCH_newton.json` artefact.
#[derive(Debug, Serialize)]
struct BenchEntry {
    id: String,
    /// Wall-clock nanoseconds for one full search transient (median of
    /// the repetitions).
    ns_per_iter: f64,
    samples: usize,
    /// Newton iterations per transient — the work the wall-clock buys.
    throughput: Option<u64>,
}

/// The `BENCH_newton.json` artefact (`compare_runs --bench` shape).
#[derive(Debug, Serialize)]
struct NewtonBenchFile {
    target: &'static str,
    results: Vec<BenchEntry>,
}

struct Opts {
    smoke: bool,
    bits: usize,
    reps: usize,
    design: DesignKind,
}

fn parse_opts(
    args: &[String],
    parse_design: impl Fn(&str) -> Result<DesignKind, String>,
) -> Result<Opts, String> {
    let mut o = Opts {
        smoke: false,
        bits: 64,
        reps: 3,
        design: DesignKind::T15Dg,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{a} needs {what}"))
        };
        match a.as_str() {
            "--smoke" => {
                o.smoke = true;
                o.reps = 1;
            }
            "--bits" => {
                o.bits = next("a word length")?
                    .parse()
                    .map_err(|e| format!("--bits: {e}"))?
            }
            "--reps" => {
                o.reps = next("a count")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?
            }
            "--design" => o.design = parse_design(next("a design")?)?,
            other => return Err(format!("unknown bench flag {other:?}")),
        }
    }
    if o.bits == 0 || o.reps == 0 {
        return Err("--bits and --reps must be positive".into());
    }
    if o.design.is_two_step() && !o.bits.is_multiple_of(2) {
        return Err("1.5T designs pair cells: use an even word length".into());
    }
    Ok(o)
}

/// Build the Fig. 7 search row: an alternating stored word with a
/// single-bit mismatch in the query, so both the discharge path and the
/// two-step machinery are exercised.
fn build_sim(opts: &Opts, newton: NewtonOpts) -> Result<SearchSim, String> {
    let stored: String = (0..opts.bits)
        .map(|i| if i % 2 == 0 { '0' } else { '1' })
        .collect();
    let stored = crate::commands::parse_word(&stored)?;
    let mut query: Vec<bool> = (0..opts.bits).map(|i| i % 2 != 0).collect();
    query[opts.bits - 1] = !query[opts.bits - 1];
    let mut sim = crate::commands::build(opts.design, &stored, &query)?;
    sim.newton = newton;
    Ok(sim)
}

/// One pinned solver configuration.
fn config(bypass: BypassPolicy, ordering: Ordering) -> NewtonOpts {
    NewtonOpts {
        bypass,
        ordering,
        ..NewtonOpts::default()
    }
}

/// Time `reps` fresh transients of one configuration; returns the
/// median wall-clock ns, the stats, and the last run's trace.
fn time_config(
    opts: &Opts,
    label: &str,
    newton: &NewtonOpts,
) -> Result<(f64, SimStats, Trace), String> {
    let mut times = Vec::with_capacity(opts.reps);
    let mut last = None;
    for _ in 0..opts.reps {
        // Rebuild per repetition: `commit` advances FeFET polarisation,
        // so a reused circuit would simulate a different trajectory.
        let mut sim = build_sim(opts, newton.clone())?;
        let started = Instant::now();
        let run = sim
            .run()
            .map_err(|e| format!("{label}: transient failed: {e}"))?;
        times.push(started.elapsed().as_secs_f64() * 1e9);
        last = Some(run.trace);
    }
    times.sort_by(f64::total_cmp);
    let median = times[times.len() / 2];
    let trace = last.expect("reps >= 1");
    let stats = trace.stats();
    println!(
        "  {label:<26} {:>9.2} ms/run   {:>6} iters   {:>6} hits / {} evals",
        median / 1e6,
        stats.newton_iters,
        stats.bypass_hits,
        stats.bypass_hits + stats.bypass_misses
    );
    Ok((median, stats, trace))
}

/// Maximum absolute deviation between two traces over every signal of
/// the baseline, sampled on the baseline time grid (the candidate is
/// interpolated, so accepted-step grids need not coincide).
fn max_waveform_deviation(base: &Trace, cand: &Trace) -> Result<f64, String> {
    let mut worst = 0.0f64;
    for name in base.signal_names() {
        let ys = base.signal(name).map_err(|e| e.to_string())?;
        for (&t, &y) in base.time().iter().zip(ys) {
            let yc = cand
                .value_at(name, t)
                .map_err(|e| format!("candidate trace lacks {name}: {e}"))?;
            worst = worst.max((y - yc).abs());
        }
    }
    Ok(worst)
}

/// Entry point, called from the command dispatcher.
pub fn run(
    args: &[String],
    parse_design: impl Fn(&str) -> Result<DesignKind, String>,
) -> Result<(), String> {
    let opts = parse_opts(args, parse_design)?;
    println!(
        "bench: {} search row, {} bits, {} rep(s) per config{}",
        opts.design.name(),
        opts.bits,
        opts.reps,
        if opts.smoke { " (smoke)" } else { "" }
    );

    let configs = [
        (
            "bypass_off_natural",
            config(BypassPolicy::Off, Ordering::Natural),
        ),
        ("bypass_safe_amd", config(BypassPolicy::Safe, Ordering::Amd)),
        (
            "bypass_aggressive_amd",
            config(BypassPolicy::Aggressive, Ordering::Amd),
        ),
    ];
    let mut results = Vec::new();
    let mut runs = Vec::new();
    for (name, newton) in &configs {
        let (ns, stats, trace) = time_config(&opts, name, newton)?;
        results.push(BenchEntry {
            id: format!("fig7_search{}_{name}", opts.bits),
            ns_per_iter: ns,
            samples: opts.reps,
            throughput: Some(stats.newton_iters),
        });
        runs.push((name, ns, stats, trace));
    }

    let speedup = runs[0].1 / runs[1].1;
    println!("  speedup (safe+amd over off+natural): {speedup:.2}x");

    // --- Artefact ----------------------------------------------------------
    let file = NewtonBenchFile {
        target: "newton",
        results,
    };
    let dir = std::env::var("FERROTCAM_RESULTS").unwrap_or_else(|_| "results".into());
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {dir}: {e}"))?;
    let path = std::path::Path::new(&dir).join("BENCH_newton.json");
    let json = serde_json::to_string_pretty(&file).expect("serialise bench file");
    std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
    println!("wrote {}", path.display());

    // --- Acceptance invariants --------------------------------------------
    let mut report = String::new();
    let (_, _, off_stats, off_trace) = &runs[0];
    if off_stats.bypass_hits != 0 {
        let _ = writeln!(
            report,
            "bypass=off recorded {} hit(s)",
            off_stats.bypass_hits
        );
    }
    for (name, _, stats, trace) in &runs[1..] {
        if stats.bypass_hits == 0 {
            let _ = writeln!(
                report,
                "{name}: SimStats.bypass_hits == 0 (bypass never engaged)"
            );
        }
        let dev = max_waveform_deviation(off_trace, trace)?;
        println!("  {name:<26} max |ΔV| vs baseline = {dev:.3e} V");
        if dev > 1e-6 {
            let _ = writeln!(
                report,
                "{name}: waveforms deviate {dev:.3e} V from bypass=off (> 1e-6)"
            );
        }
    }
    if report.is_empty() {
        println!("bench invariants hold: bypass engaged, waveforms within 1e-6 V of baseline");
        Ok(())
    } else if opts.smoke {
        Err(format!("bench smoke failed:\n{report}"))
    } else {
        println!("warning (non-smoke run, not fatal):\n{report}");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_args(args: &[&str]) -> Result<(), String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&v, crate::commands::parse_design)
    }

    #[test]
    fn smoke_run_small_word() {
        let dir = std::env::temp_dir().join("ferrotcam-newton-bench-test");
        std::env::set_var("FERROTCAM_RESULTS", dir.to_str().unwrap());
        run_args(&["--smoke", "--bits", "4"]).unwrap();
        let body = std::fs::read_to_string(dir.join("BENCH_newton.json")).unwrap();
        assert!(body.contains("\"target\": \"newton\""));
        assert!(body.contains("fig7_search4_bypass_safe_amd"));
        std::env::remove_var("FERROTCAM_RESULTS");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_flags_rejected() {
        assert!(run_args(&["--bogus"]).is_err());
        assert!(run_args(&["--bits"]).is_err());
        assert!(run_args(&["--bits", "0"]).is_err());
        assert!(run_args(&["--bits", "3"]).is_err()); // odd on a 1.5T design
    }
}
