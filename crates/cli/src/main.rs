//! `ferrotcam` — command-line interface to the ferroTCAM toolkit.
//!
//! ```text
//! ferrotcam search <design> <stored-word> <query-bits>
//! ferrotcam characterize <design> [word-len]
//! ferrotcam margins <design>
//! ferrotcam idvg <sg|dg> [--csv]
//! ferrotcam export <design> <stored-word> <query-bits>
//! ferrotcam designs
//! ferrotcam analyze [--deny] [--json] [--root <dir>]
//! ferrotcam trace [<design> <stored-word> <query-bits>] [--ndjson]
//! ferrotcam bench [--smoke] [--bits N] [--reps N] [--design <d>]
//! ferrotcam serve-bench [--smoke] [--backend spice|behav|both] [--shards 1,2,4]
//! ```

use std::process::ExitCode;

mod analyze;
mod commands;
mod lint;
mod newton_bench;
mod serve_bench;
mod trace_cmd;

fn main() -> ExitCode {
    // Piping into `head` closes stdout early; exit quietly instead of
    // panicking on the resulting broken pipe (standard CLI behaviour).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info.to_string();
        if msg.contains("failed printing to stdout") && msg.contains("Broken pipe") {
            std::process::exit(0);
        }
        default_hook(info);
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            // A broken pipe means the consumer went away mid-stream
            // (e.g. `| head`): the output is truncated, so fail — but
            // usage text would only be noise at this point.
            if !e.starts_with("broken pipe") {
                eprintln!();
                eprintln!("{}", commands::USAGE);
            }
            ExitCode::FAILURE
        }
    }
}
