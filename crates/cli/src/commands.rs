//! CLI command implementations.

use ferrotcam::cell::{DesignKind, DesignParams, RowParasitics, SearchTiming};
use ferrotcam::fom::{characterize_search, characterize_write};
use ferrotcam::margins::nominal_margins;
use ferrotcam::{build_search_row, TernaryWord};
use ferrotcam_device::calib;
use ferrotcam_device::extract::{subthreshold_slope, vth_constant_current};
use ferrotcam_device::fefet::{Fefet, VthState};
use ferrotcam_eval::parasitics::row_parasitics;
use ferrotcam_eval::tech::tech_14nm;
use ferrotcam_spice::NodeId;
use std::fmt::Write as _;

/// Usage text shown on errors and `help`.
pub const USAGE: &str = "\
ferroTCAM toolkit

USAGE:
  ferrotcam designs
      List the five TCAM designs.
  ferrotcam search <design> <stored-word> <query-bits>
      Circuit-simulate one row search. Word digits: 0, 1, X;
      query bits: 0/1 (same width).
  ferrotcam characterize <design> [word-len]
      Measure search latency and energy (default 16 cells).
  ferrotcam write <design>
      Measure per-cell write energy for '0', '1' and 'X'.
  ferrotcam margins <design>
      DC divider margins of a 1.5T design.
  ferrotcam idvg <sg|dg> [--csv]
      Id-Vg sweep of the calibrated FeFET in all three states.
  ferrotcam export <design> <stored-word> <query-bits>
      Print the row netlist as SPICE.
  ferrotcam table <file> <query-bits>
      Load a table file (one ternary word per line, # comments) and
      search it; prints matching rows in priority order.
  ferrotcam lint [--all] [--deny] [--json]
      Run the ERC static analyzer over every generated netlist (one
      search row per design; --all adds 1.5T divider cells, full
      arrays and write arrays). --deny fails on any error-severity
      diagnostic; --json emits machine-readable reports.
  ferrotcam analyze [--deny] [--json] [--root <dir>]
      Run the concurrency static analyzer over the serving layer's
      sources: sync-facade enforcement, the atomic-ordering registry,
      lock-order auditing, and hot-path hygiene. --deny fails on any
      deny-severity diagnostic; --json emits a machine-readable
      report; --root overrides workspace discovery.
  ferrotcam trace [<design> <stored-word> <query-bits>]
                  [--summary|--full] [--ndjson] [--out FILE]
      Run one row-search transient with tracing enabled and render
      the observability output: span timings plus step accept/reject
      counters (--summary, default), or the per-step event stream as
      newline-delimited JSON (--ndjson; --full adds per-step events).
      Defaults to a 4-bit 2DG row with a one-bit mismatch.
  ferrotcam bench [--smoke] [--bits N] [--reps N] [--design <d>]
      Benchmark the Newton hot path: one Fig. 7 search transient
      (default 64-bit 1.5T1DG row) timed under bypass=off/natural,
      bypass=safe/amd and bypass=aggressive/amd. Writes
      BENCH_newton.json to $FERROTCAM_RESULTS (default ./results).
      With --smoke the invariants are hard failures: safe waveforms
      within 1e-6 V of the baseline and a non-zero bypass-hit count.
  ferrotcam serve-bench [--smoke] [--backend spice|behav|both]
                        [--workload exact|approx|both]
                        [--shards 1,2,4] [--rows N] [--width N]
                        [--secs S] [--seed N] [--audit-period N]
                        [--characterize <design>]
      Load-test the serving layer per execution tier: closed-loop
      shard sweep, open-loop overload, energy audit, and (behavioural
      tier) the sampled Spice audit lane. --workload approx sweeps the
      approximate-match kinds instead (threshold, top-k, range: one
      closed point per kind plus the behavioural tier's open-loop
      sustained-rate gate); both runs the exact sweep then the
      approximate one. Energy attribution is calibrated from the SPICE
      datasheets in the results directory; --characterize runs live
      SPICE instead. Writes BENCH_serve.json (curve ids tagged
      _spice/_behav, approximate points _approx) to $FERROTCAM_RESULTS
      (default ./results). With --smoke the run is bounded to a few
      seconds, the workload defaults to both, and the invariants —
      including a clean audit lane and the approximate kinds' 100k qps
      open-loop floor — become hard failures.

DESIGNS: 2sg | 2dg | 1.5t1sg | 1.5t1dg | cmos (aliases accepted)";

/// A CLI-level error: message shown to the user.
type CliResult = Result<(), String>;

/// Write a machine-readable body to stdout without panicking: piping
/// into `head` closes the pipe early, and the resulting
/// [`std::io::ErrorKind::BrokenPipe`] must surface as a clean non-zero
/// exit, not a panic (`println!` aborts the process on write failure).
pub(crate) fn write_stdout(body: &str) -> Result<(), String> {
    use std::io::Write as _;
    let mut out = std::io::stdout().lock();
    out.write_all(body.as_bytes())
        .and_then(|()| out.flush())
        .map_err(|e| {
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                "broken pipe: stdout closed before all output was written".to_string()
            } else {
                format!("writing to stdout: {e}")
            }
        })
}

/// Dispatch a command line.
///
/// # Errors
/// Returns a human-readable message for unknown commands or bad
/// arguments; simulator failures are formatted in context.
pub fn dispatch(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("designs") => designs(),
        Some("search") => search(&args[1..]),
        Some("characterize") => characterize(&args[1..]),
        Some("write") => write_energy(&args[1..]),
        Some("margins") => margins(&args[1..]),
        Some("idvg") => idvg(&args[1..]),
        Some("export") => export(&args[1..]),
        Some("table") => table_lookup(&args[1..]),
        Some("lint") => crate::lint::run(&args[1..]),
        Some("analyze") => crate::analyze::run(&args[1..]),
        Some("trace") => crate::trace_cmd::run(&args[1..]),
        Some("bench") => crate::newton_bench::run(&args[1..], parse_design),
        Some("serve-bench") => crate::serve_bench::run(&args[1..], parse_design),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}")),
    }
}

pub(crate) fn parse_design(s: &str) -> Result<DesignKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "2sg" | "2sg-fefet" | "sg2" => Ok(DesignKind::Sg2),
        "2dg" | "2dg-fefet" | "dg2" => Ok(DesignKind::Dg2),
        "1.5t1sg" | "15t1sg" | "t15sg" | "1.5t1sg-fe" => Ok(DesignKind::T15Sg),
        "1.5t1dg" | "15t1dg" | "t15dg" | "1.5t1dg-fe" => Ok(DesignKind::T15Dg),
        "cmos" | "16t" | "cmos16t" => Ok(DesignKind::Cmos16t),
        other => Err(format!(
            "unknown design {other:?} (try `ferrotcam designs`)"
        )),
    }
}

pub(crate) fn parse_word(s: &str) -> Result<TernaryWord, String> {
    s.parse::<TernaryWord>().map_err(|e| e.to_string())
}

pub(crate) fn parse_query(s: &str, width: usize) -> Result<Vec<bool>, String> {
    let q: Result<Vec<bool>, String> = s
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("query bits are 0/1, got {other:?}")),
        })
        .collect();
    let q = q?;
    if q.len() != width {
        return Err(format!(
            "query width {} does not match stored width {width}",
            q.len()
        ));
    }
    Ok(q)
}

fn designs() -> CliResult {
    println!("available designs:");
    for kind in DesignKind::ALL {
        let steps = if kind.is_two_step() {
            "2-step search"
        } else {
            "1-step search"
        };
        let dev = match kind {
            DesignKind::Cmos16t => "16 transistors".to_string(),
            k => format!(
                "{} FeFET(s)/cell, {}",
                DesignParams::preset(k).fefets_per_cell(),
                if k.is_dg() {
                    "double-gate"
                } else {
                    "single-gate"
                }
            ),
        };
        println!("  {:<12} {dev}, {steps}", kind.name());
    }
    Ok(())
}

pub(crate) fn build(
    design: DesignKind,
    stored: &TernaryWord,
    query: &[bool],
) -> Result<ferrotcam::SearchSim, String> {
    let params = DesignParams::preset(design);
    build_search_row(
        &params,
        stored,
        query,
        SearchTiming::default(),
        RowParasitics::default(),
        design.is_two_step(),
    )
    .map_err(|e| format!("building the row failed: {e}"))
}

fn search(args: &[String]) -> CliResult {
    let [design, stored, query] = args else {
        return Err("usage: ferrotcam search <design> <stored-word> <query-bits>".into());
    };
    let design = parse_design(design)?;
    let stored = parse_word(stored)?;
    let query = parse_query(query, stored.len())?;
    if design.is_two_step() && stored.len() % 2 != 0 {
        return Err("1.5T designs pair cells: use an even word length".into());
    }
    let mut sim = build(design, &stored, &query)?;
    let run = sim.run().map_err(|e| format!("transient failed: {e}"))?;
    let matched = run.matched().map_err(|e| e.to_string())?;
    println!(
        "{}: stored {stored}, query {} -> {}",
        design.name(),
        query
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect::<String>(),
        if matched { "MATCH" } else { "MISS" }
    );
    if let Some(lat) = run.latency().map_err(|e| e.to_string())? {
        println!("  SA fired {:.0} ps after search start", lat * 1e12);
    }
    println!("  energy: {:.3} fJ", run.total_energy() * 1e15);
    let stats = run.trace.stats();
    println!(
        "  solver: {} Newton iters; {} full factor(s) + {} refactor(s); {} rejected step(s)",
        stats.newton_iters, stats.full_factors, stats.refactors, stats.rejected_steps
    );
    let evals = stats.bypass_hits + stats.bypass_misses;
    if evals > 0 {
        println!(
            "  bypass: {} hit(s) / {} device eval(s) ({:.0}% skipped)",
            stats.bypass_hits,
            evals,
            100.0 * stats.bypass_hits as f64 / evals as f64
        );
    }
    // Sanity: the logic-level verdict must agree.
    let expect = stored.matches_query(&query);
    if matched != expect {
        return Err("circuit and logic verdicts disagree (calibration issue?)".into());
    }
    Ok(())
}

fn characterize(args: &[String]) -> CliResult {
    let design = parse_design(
        args.first()
            .ok_or("usage: ferrotcam characterize <design> [word-len]")?,
    )?;
    let n: usize = args
        .get(1)
        .map(|s| s.parse().map_err(|_| format!("bad word length {s:?}")))
        .transpose()?
        .unwrap_or(16);
    let tech = tech_14nm();
    let m = characterize_search(design, n, row_parasitics(design, &tech))
        .map_err(|e| format!("characterisation failed: {e}"))?;
    println!("{} at {n}-bit words:", design.name());
    println!("  1-step latency : {:.0} ps", m.latency_1step * 1e12);
    if let Some(l2) = m.latency_2step {
        println!("  2-step latency : {:.0} ps", l2 * 1e12);
    }
    println!(
        "  energy, step-1 terminated : {:.3} fJ/cell",
        m.energy_1step_per_cell() * 1e15
    );
    if let Some(e2) = m.energy_2step_per_cell() {
        println!("  energy, full search       : {:.3} fJ/cell", e2 * 1e15);
    }
    println!(
        "  energy @90% miss rate     : {:.3} fJ/cell",
        m.energy_avg_per_cell(0.9) * 1e15
    );
    Ok(())
}

fn write_energy(args: &[String]) -> CliResult {
    let design = parse_design(args.first().ok_or("usage: ferrotcam write <design>")?)?;
    if design == DesignKind::Cmos16t {
        return Err("the CMOS baseline has no FeFET write path (paper: N.A.)".into());
    }
    let w = characterize_write(design, 1e-18).map_err(|e| format!("write sim failed: {e}"))?;
    println!("{} write energy per cell:", design.name());
    println!("  '0' : {:.3} fJ", w.energy_write0 * 1e15);
    println!("  '1' : {:.3} fJ", w.energy_write1 * 1e15);
    println!("  'X' : {:.3} fJ", w.energy_write_x * 1e15);
    println!(
        "  avg : {:.3} fJ (half '0' / half '1')",
        w.energy_avg() * 1e15
    );
    Ok(())
}

fn margins(args: &[String]) -> CliResult {
    let design = parse_design(args.first().ok_or("usage: ferrotcam margins <design>")?)?;
    if !design.is_t15() {
        return Err("margins analysis applies to the 1.5T designs".into());
    }
    let m = nominal_margins(design).map_err(|e| format!("margin solve failed: {e}"))?;
    println!("{} static divider margins:", design.name());
    println!(
        "  discharge (mismatch drive over TML Vth) : {:+.0} mV",
        m.discharge * 1e3
    );
    println!(
        "  hold (match/'X' below TML Vth)          : {:+.0} mV",
        m.hold * 1e3
    );
    println!(
        "  functional: {}",
        if m.functional() { "yes" } else { "NO" }
    );
    Ok(())
}

fn idvg(args: &[String]) -> CliResult {
    let flavour = args
        .first()
        .ok_or("usage: ferrotcam idvg <sg|dg> [--csv]")?;
    let csv = args.iter().any(|a| a == "--csv");
    let (params, bg_read, range) = match flavour.as_str() {
        "sg" => (calib::sg_fefet_14nm(), false, (-1.0, 3.0)),
        "dg" => (calib::dg_fefet_14nm(), true, (-2.0, 4.0)),
        other => return Err(format!("flavour is sg or dg, got {other:?}")),
    };
    let g = NodeId::GROUND;
    let mut dev = Fefet::new("probe", g, g, g, g, params);
    let mut out = String::new();
    let mut curves = Vec::new();
    for state in [VthState::Lvt, VthState::Mvt, VthState::Hvt] {
        dev.program(state);
        let sweep = if bg_read {
            dev.sweep_bg(range, 81, 0.1, 300.0)
        } else {
            dev.sweep_fg(range, 81, 0.1, 300.0)
        };
        curves.push((state, sweep));
    }
    if csv {
        let _ = writeln!(out, "vg,id_lvt,id_mvt,id_hvt");
        for i in 0..81 {
            let _ = writeln!(
                out,
                "{:.4},{:.4e},{:.4e},{:.4e}",
                curves[0].1[i].0, curves[0].1[i].1, curves[1].1[i].1, curves[2].1[i].1
            );
        }
        print!("{out}");
    } else {
        for (state, sweep) in &curves {
            let vth = vth_constant_current(sweep, 1e-7);
            let ss = subthreshold_slope(sweep, 1e-9, 1e-7);
            println!(
                "{state:?}: Vth = {}  SS = {}",
                vth.map_or("n/a".into(), |v| format!("{v:.2} V")),
                ss.map_or("n/a".into(), |s| format!("{:.0} mV/dec", s * 1e3)),
            );
        }
    }
    Ok(())
}

fn export(args: &[String]) -> CliResult {
    let [design, stored, query] = args else {
        return Err("usage: ferrotcam export <design> <stored-word> <query-bits>".into());
    };
    let design = parse_design(design)?;
    let stored = parse_word(stored)?;
    let query = parse_query(query, stored.len())?;
    let sim = build(design, &stored, &query)?;
    println!(
        "{}",
        sim.circuit
            .to_spice(&format!("{} row: stored {stored}", design.name()))
    );
    Ok(())
}

fn table_lookup(args: &[String]) -> CliResult {
    let [path, query] = args else {
        return Err("usage: ferrotcam table <file> <query-bits>".into());
    };
    let tcam =
        ferrotcam::table_io::load_table(std::path::Path::new(path)).map_err(|e| e.to_string())?;
    let q = parse_query(query, tcam.width())?;
    let outcome = tcam.search(&q);
    println!(
        "{} rows, {} match(es), step-1 miss rate {:.0}%",
        tcam.len(),
        outcome.matches.len(),
        outcome.step1_miss_rate() * 100.0
    );
    for &row in &outcome.matches {
        println!("  row {row}: {}", tcam.row(row).expect("row exists"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> CliResult {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        dispatch(&v)
    }

    #[test]
    fn design_aliases_parse() {
        assert_eq!(parse_design("2sg").unwrap(), DesignKind::Sg2);
        assert_eq!(parse_design("1.5T1DG").unwrap(), DesignKind::T15Dg);
        assert_eq!(parse_design("CMOS").unwrap(), DesignKind::Cmos16t);
        assert!(parse_design("zz").is_err());
    }

    #[test]
    fn query_validation() {
        assert!(parse_query("0101", 4).is_ok());
        assert!(parse_query("01", 4).is_err());
        assert!(parse_query("01x1", 4).is_err());
    }

    #[test]
    fn designs_and_help_run() {
        run(&["designs"]).unwrap();
        run(&["help"]).unwrap();
        assert!(run(&["bogus"]).is_err());
    }

    #[test]
    fn search_command_end_to_end() {
        run(&["search", "1.5t1dg", "01", "01"]).unwrap();
        run(&["search", "2sg", "10", "01"]).unwrap();
        assert!(run(&["search", "1.5t1dg", "011", "011"]).is_err()); // odd width
    }

    #[test]
    fn margins_command() {
        run(&["margins", "1.5t1dg"]).unwrap();
        assert!(run(&["margins", "2sg"]).is_err());
    }

    #[test]
    fn export_contains_netlist() {
        run(&["export", "cmos", "1", "1"]).unwrap();
    }

    #[test]
    fn table_command_roundtrip() {
        let dir = std::env::temp_dir().join("ferrotcam-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.tcam");
        std::fs::write(&path, "10X1\n0000\n").unwrap();
        run(&["table", path.to_str().unwrap(), "1011"]).unwrap();
        assert!(run(&["table", path.to_str().unwrap(), "10"]).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn idvg_both_flavours() {
        run(&["idvg", "sg"]).unwrap();
        run(&["idvg", "dg", "--csv"]).unwrap();
        assert!(run(&["idvg", "xx"]).is_err());
    }
}
