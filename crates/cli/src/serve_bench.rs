//! `ferrotcam serve-bench` — closed-loop + open-loop load generator
//! for the serving layer, per execution tier.
//!
//! Builds a key-partitioned random table, starts a [`TcamService`]
//! per (backend, configuration), and measures:
//!
//! 1. **closed loop** — client threads submit-and-wait as fast as the
//!    service answers, sweeping the shard count to show throughput
//!    scaling;
//! 2. **open loop** — a deterministic SplitMix64 exponential arrival
//!    process offers load beyond capacity through the fire-and-forget
//!    packed path, showing bounded-queue shedding and (on the
//!    behavioural tier) the bit-parallel kernel's sustained rate;
//! 3. **energy audit** — every response's energy attribution is
//!    checked against the standalone `core::fom` figure for the same
//!    query;
//! 4. **audit lane** — behavioural runs report the sampled
//!    Spice-replay lane: queries replayed, divergences, worst energy
//!    error.
//!
//! With `--workload approx` (or `both`; smoke runs default to `both`)
//! the sweep also drives the approximate-match kinds — Hamming
//! threshold, top-k, and FeCAM-style range — one closed-loop point per
//! kind per tier plus a behavioural open-loop overload point per kind,
//! written as `closed_approx_*` / `open_approx_*` curves. Threshold
//! curves carry the sense-model's calibrated misclassification
//! probability (`miscls`), which `compare_runs --bench` gates on.
//!
//! With `--workload mixed` (also part of `both`) the open loop offers a
//! live read/write mix — 90% key-routed exact searches, 8% updates, 1%
//! inserts, 1% deletes — against both tiers, exercising the
//! copy-on-write snapshot path under churn. Writes are priced by the
//! calibrated 3-step program; the behavioural tier's audit lane replays
//! sampled searches against the same captured snapshot, so any torn
//! word a write exposed would surface as a divergence. Smoke runs gate
//! on a divergence-free lane and on the behavioural tier sustaining
//! ≥ 100k searches/s at the reference shape under the 10% write mix.
//!
//! Energy/latency attribution is calibrated from the SPICE datasheets
//! in the results directory (`table4.json`, `fig7_*.csv`, Fig. 4 miss
//! curves) via [`Calibration::load`]; `--characterize` runs a live
//! SPICE characterisation instead. Results land in `BENCH_serve.json`
//! (results dir: `$FERROTCAM_RESULTS` or `./results`), in the
//! throughput-curve format understood by `compare_runs --bench`, with
//! every curve id suffixed by its backend tag (`_spice` / `_behav`).
//! With `--smoke` the run is bounded to a few seconds and the
//! acceptance invariants (monotone scaling, shedding under overload,
//! energy match within 1e-9, audit lane sampled and clean) become
//! hard failures.

use ferrotcam::fom::SearchMetrics;
use ferrotcam::{Calibration, DesignKind, PackedQuery, RowWriteMetrics, SenseModel, TernaryWord};
use ferrotcam_eval::parasitics::row_parasitics;
use ferrotcam_eval::tech::tech_14nm;
use ferrotcam_serve::{
    BackendKind, Overloaded, RequestKind, ServiceConfig, ServiceMetrics, ShardedTcam, TcamService,
};
use rand::split_mix64;
use serde::Serialize;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One point on the throughput-latency curve.
#[derive(Debug, Clone, Serialize)]
struct CurvePoint {
    id: String,
    mode: &'static str,
    backend: String,
    shards: usize,
    rows: usize,
    offered_qps: Option<f64>,
    achieved_qps: f64,
    /// Latency percentiles are absent when the run completed nothing
    /// inside the measured window (an empty histogram has no quantile).
    #[serde(skip_serializing_if = "Option::is_none")]
    p50_ns: Option<f64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    p95_ns: Option<f64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    p99_ns: Option<f64>,
    shed: u64,
    max_queue_depth: usize,
    step1_early_termination_rate: f64,
    energy_per_query_fj: f64,
    /// Calibrated per-boundary-row misclassification probability of the
    /// sense-time threshold this curve ran at (approximate threshold
    /// workloads only).
    #[serde(skip_serializing_if = "Option::is_none")]
    miscls: Option<f64>,
    /// Completed write (insert/update/delete) rate, mixed workload only.
    #[serde(skip_serializing_if = "Option::is_none")]
    write_qps: Option<f64>,
}

/// Render an optional nanosecond percentile in microseconds for the
/// console (NaN marks an empty histogram).
fn us(v: Option<f64>) -> f64 {
    v.map_or(f64::NAN, |ns| ns / 1e3)
}

/// The `BENCH_serve.json` artefact.
#[derive(Debug, Serialize)]
struct ServeBenchFile {
    target: &'static str,
    curves: Vec<CurvePoint>,
}

/// Which request mix the bench drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    /// Exact-match only (the classic sweep).
    Exact,
    /// Approximate kinds only: threshold, top-k, range.
    Approx,
    /// Live read/write mix: 90% routed searches, 10% online writes.
    Mixed,
    /// Every mix, back to back.
    Both,
}

impl Workload {
    fn includes_exact(self) -> bool {
        matches!(self, Self::Exact | Self::Both)
    }

    fn includes_approx(self) -> bool {
        matches!(self, Self::Approx | Self::Both)
    }

    fn includes_mixed(self) -> bool {
        matches!(self, Self::Mixed | Self::Both)
    }
}

/// Parsed command-line options.
struct Opts {
    smoke: bool,
    rows: usize,
    width: usize,
    shards: Vec<usize>,
    secs: f64,
    seed: u64,
    characterize: Option<DesignKind>,
    backends: Vec<BackendKind>,
    audit_period: u64,
    workload: Workload,
}

fn parse_opts(
    args: &[String],
    parse_design: impl Fn(&str) -> Result<DesignKind, String>,
) -> Result<Opts, String> {
    let mut o = Opts {
        smoke: false,
        rows: 16384,
        width: 64,
        shards: vec![1, 2, 4],
        secs: 1.5,
        seed: 42,
        characterize: None,
        backends: vec![BackendKind::Spice, BackendKind::Behavioural],
        audit_period: 10_000,
        workload: Workload::Exact,
    };
    let mut explicit_workload = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{a} needs {what}"))
        };
        match a.as_str() {
            "--smoke" => {
                o.smoke = true;
                o.secs = 0.4;
                // Smoke must exercise the audit lane, so sample densely.
                o.audit_period = 500;
            }
            "--rows" => {
                o.rows = next("a count")?
                    .parse()
                    .map_err(|e| format!("--rows: {e}"))?
            }
            "--width" => {
                o.width = next("a width")?
                    .parse()
                    .map_err(|e| format!("--width: {e}"))?
            }
            "--secs" => {
                o.secs = next("seconds")?
                    .parse()
                    .map_err(|e| format!("--secs: {e}"))?
            }
            "--seed" => {
                o.seed = next("a seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--audit-period" => {
                o.audit_period = next("a period")?
                    .parse()
                    .map_err(|e| format!("--audit-period: {e}"))?
            }
            "--shards" => {
                o.shards = next("a list like 1,2,4")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("--shards: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
                if o.shards.is_empty() || o.shards.contains(&0) {
                    return Err("--shards needs positive counts".into());
                }
            }
            "--backend" => {
                let v = next("spice|behav|both")?;
                o.backends = match v {
                    "both" => vec![BackendKind::Spice, BackendKind::Behavioural],
                    other => vec![BackendKind::parse(other)
                        .ok_or_else(|| format!("--backend: unknown tier {other:?}"))?],
                };
            }
            "--characterize" => o.characterize = Some(parse_design(next("a design")?)?),
            "--workload" => {
                explicit_workload = Some(match next("exact|approx|mixed|both")? {
                    "exact" => Workload::Exact,
                    "approx" => Workload::Approx,
                    "mixed" => Workload::Mixed,
                    "both" => Workload::Both,
                    other => return Err(format!("--workload: unknown mix {other:?}")),
                });
            }
            other => return Err(format!("unknown serve-bench flag {other:?}")),
        }
    }
    if o.width == 0 || o.rows == 0 {
        return Err("--rows and --width must be positive".into());
    }
    // A smoke run must cover the approximate-match path too (the CI
    // gate asserts its audit lane stays clean); explicit --workload
    // still wins.
    o.workload = explicit_workload.unwrap_or(if o.smoke { Workload::Both } else { o.workload });
    if o.workload.includes_approx() && !o.width.is_multiple_of(2) {
        return Err("--workload approx needs an even --width (range cells pair digits)".into());
    }
    Ok(o)
}

/// One random packed query (and nothing else) off the SplitMix64
/// stream — the open-loop hot path, no per-bit work.
fn random_packed(state: &mut u64, width: usize) -> PackedQuery {
    let mut words = [0u64; 8];
    let n = width.div_ceil(64).min(8);
    for w in words.iter_mut().take(n) {
        *w = split_mix64(state);
    }
    PackedQuery::from_words(width, &words[..n.max(1)])
}

fn random_query(state: &mut u64, width: usize) -> Vec<bool> {
    random_packed(state, width).to_bits()
}

/// Build a key-partitioned table: every stored word lives on the
/// shard its own bit-pattern hashes to, so routed queries find their
/// keys while scanning only `rows / shards` rows.
fn build_table(opts: &Opts, shards: usize, metrics: &SearchMetrics) -> ShardedTcam {
    let mut t = ShardedTcam::new(opts.width, shards);
    let mut state = opts.seed;
    for _ in 0..opts.rows {
        let q = random_packed(&mut state, opts.width);
        let shard = t.route_packed(&q);
        t.store_in(shard, TernaryWord::from_bits(&q.to_bits()));
    }
    t.attach_metrics(metrics.clone());
    t
}

/// Per-backend service configuration: the behavioural tier runs with
/// a deeper queue and its preferred (larger) batch so the kernel's
/// per-query cost, not dispatch overhead, sets the rate.
fn service_config(backend: BackendKind, opts: &Opts) -> ServiceConfig {
    let base = ServiceConfig {
        backend,
        audit_period: opts.audit_period,
        ..ServiceConfig::default()
    };
    match backend {
        BackendKind::Spice => base,
        BackendKind::Behavioural => ServiceConfig {
            queue_capacity: 16 * 1024,
            max_batch: 0, // backend preferred (1024)
            ..base
        },
    }
}

/// Where a curve point was measured: tier, table shape, and the final
/// service metrics of that run.
struct PointCtx<'a> {
    backend: BackendKind,
    shards: usize,
    rows: usize,
    m: &'a ServiceMetrics,
}

fn curve_point(
    id: String,
    mode: &'static str,
    offered_qps: Option<f64>,
    achieved_qps: f64,
    ctx: &PointCtx<'_>,
) -> CurvePoint {
    let m = ctx.m;
    let shed = m.shed_queue_full + m.shed_rate_limited + m.shed_shutting_down;
    CurvePoint {
        id,
        mode,
        backend: ctx.backend.tag().into(),
        shards: ctx.shards,
        rows: ctx.rows,
        offered_qps,
        achieved_qps,
        p50_ns: m.wall_latency_ns.p50,
        p95_ns: m.wall_latency_ns.p95,
        p99_ns: m.wall_latency_ns.p99,
        shed,
        max_queue_depth: m.max_queue_depth,
        step1_early_termination_rate: m.step1_early_termination_rate,
        energy_per_query_fj: if m.completed == 0 {
            0.0
        } else {
            m.energy_total_j / m.completed as f64 * 1e15
        },
        miscls: None,
        write_qps: None,
    }
}

/// Closed loop: `clients` threads submit-and-wait until the deadline.
/// Exact queries are key-routed to their shard; approximate kinds fan
/// out over every bank (a distance / window search has no home shard).
/// Returns (achieved qps, final metrics).
fn closed_loop(
    table: ShardedTcam,
    opts: &Opts,
    backend: BackendKind,
    kind: RequestKind,
    clients: usize,
    secs: f64,
) -> (f64, ServiceMetrics) {
    let svc = TcamService::start(table, &service_config(backend, opts));
    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(secs);
    let completions: u64 = std::thread::scope(|scope| {
        (0..clients)
            .map(|c| {
                let client = svc.client();
                let width = opts.width;
                let mut state = opts.seed ^ (0x9E37 + c as u64);
                scope.spawn(move || {
                    let mut done = 0u64;
                    while Instant::now() < deadline {
                        let q = random_packed(&mut state, width);
                        let submitted = match kind {
                            RequestKind::Exact => client.submit_packed_routed(c as u32, q),
                            _ => client.submit_kind(c as u32, q, kind, None),
                        };
                        match submitted {
                            Ok(ticket) => {
                                let _ = ticket.wait();
                                done += 1;
                            }
                            Err(_) => std::thread::yield_now(),
                        }
                    }
                    done
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .sum()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let metrics = svc.drain();
    (completions as f64 / elapsed, metrics)
}

/// Open loop: offer `offered_qps` with SplitMix64 exponential
/// inter-arrivals for `secs` through the fire-and-forget packed path,
/// never waiting for responses. The achieved rate counts the full
/// elapsed time *including the drain*, so every completed query was
/// genuinely executed inside the measured window.
fn open_loop(
    table: ShardedTcam,
    opts: &Opts,
    backend: BackendKind,
    kind: RequestKind,
    offered_qps: f64,
    secs: f64,
) -> (f64, ServiceMetrics) {
    let cfg = ServiceConfig {
        queue_capacity: match backend {
            BackendKind::Spice => 256,
            BackendKind::Behavioural => 16 * 1024,
        },
        ..service_config(backend, opts)
    };
    let svc = TcamService::start(table, &cfg);
    let client = svc.client();
    let mut state = opts.seed ^ 0xDEAD_BEEF;
    let started = Instant::now();
    let horizon = Duration::from_secs_f64(secs);
    let mut next_arrival = 0.0f64; // seconds since start
    loop {
        let now = started.elapsed();
        if now >= horizon {
            break;
        }
        // Submit every arrival that is due by now.
        while next_arrival <= now.as_secs_f64() {
            // Exponential inter-arrival: -ln(U)/λ, U ∈ (0, 1].
            let u = (split_mix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            next_arrival += -(1.0 - u).max(f64::MIN_POSITIVE).ln() / offered_qps;
            let q = random_packed(&mut state, opts.width);
            // Route every kind, as a sharded deployment would under
            // overload: per-query work is one shard's rows, and the
            // fan-out (whole-table) form is covered by the closed
            // loop's latency points.
            let shard = Some(client.route_packed(&q));
            match client.submit_noreply_kind(0, q, kind, shard) {
                Ok(()) => {}
                Err(Overloaded::QueueFull) => {} // counted by the service
                Err(e) => panic!("unexpected shed: {e}"),
            }
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    let metrics = svc.drain();
    let elapsed = started.elapsed().as_secs_f64();
    (metrics.completed as f64 / elapsed, metrics)
}

/// Audit energy attribution against the standalone `core::fom` figure.
/// Returns the worst relative deviation observed.
fn energy_audit(
    table: ShardedTcam,
    opts: &Opts,
    backend: BackendKind,
    metrics: &SearchMetrics,
) -> f64 {
    let svc = TcamService::start(table, &service_config(backend, opts));
    let client = svc.client();
    let mut state = opts.seed ^ 0xA0D1;
    let mut worst = 0.0f64;
    for _ in 0..64 {
        let q = random_query(&mut state, opts.width);
        let resp = client
            .submit_routed(0, q)
            .expect("idle service")
            .wait()
            .expect("no deadline configured");
        let total = resp.matches.len() + resp.step1_misses + resp.step2_misses;
        if total == 0 {
            continue;
        }
        let miss_rate = resp.step1_misses as f64 / total as f64;
        let standalone = total as f64 * metrics.energy_avg(miss_rate);
        let served = resp.energy_j.expect("metrics attached");
        let rel = (served - standalone).abs() / standalone.abs().max(1e-30);
        worst = worst.max(rel);
    }
    drop(svc);
    worst
}

/// Everything one backend's sweep produced, for the invariant checks.
struct BackendRun {
    backend: BackendKind,
    capacities: Vec<f64>,
    open_achieved: f64,
    open_offered: f64,
    open_metrics: ServiceMetrics,
    open_queue_bound: usize,
    energy_worst_rel: f64,
}

fn run_backend(
    opts: &Opts,
    backend: BackendKind,
    metrics: &SearchMetrics,
    curves: &mut Vec<CurvePoint>,
) -> BackendRun {
    let tag = backend.tag();

    // --- Phase 1: closed-loop shard sweep --------------------------------
    let mut capacities = Vec::new();
    for &shards in &opts.shards {
        let table = build_table(opts, shards, metrics);
        let (qps, m) = closed_loop(table, opts, backend, RequestKind::Exact, 2, opts.secs);
        println!(
            "  [{tag}] closed  shards={shards:<2} {qps:>10.0} qps   p50 {:>8.1} us   p99 {:>8.1} us",
            us(m.wall_latency_ns.p50),
            us(m.wall_latency_ns.p99)
        );
        capacities.push(qps);
        curves.push(curve_point(
            format!("closed_shards{shards}_{tag}"),
            "closed",
            None,
            qps,
            &PointCtx {
                backend,
                shards,
                rows: opts.rows,
                m: &m,
            },
        ));
    }

    // --- Phase 2: open-loop overload --------------------------------------
    let &max_shards = opts.shards.iter().max().expect("non-empty");
    let capacity = capacities
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .max(1.0);
    // The behavioural tier's closed-loop rate is round-trip-bound, not
    // kernel-bound; offer past the 1 Mqps target so the open loop
    // measures the dispatcher, not the arrival process. Don't offer
    // much past capacity though — on a shared core every shed
    // submission steals cycles from the dispatcher being measured.
    let offered = match backend {
        BackendKind::Spice => capacity * 3.0,
        BackendKind::Behavioural => (capacity * 3.0).max(1.8e6),
    };
    let table = build_table(opts, max_shards, metrics);
    let queue_bound = match backend {
        BackendKind::Spice => 256,
        BackendKind::Behavioural => 16 * 1024,
    };
    let (achieved, m_over) = open_loop(
        table,
        opts,
        backend,
        RequestKind::Exact,
        offered,
        opts.secs.max(0.5),
    );
    let shed_total = m_over.shed_queue_full + m_over.shed_rate_limited + m_over.shed_shutting_down;
    println!(
        "  [{tag}] open    shards={max_shards:<2} offered {offered:>9.0} qps -> {achieved:>9.0} qps, shed {shed_total}, max queue depth {}",
        m_over.max_queue_depth
    );
    curves.push(curve_point(
        format!("open_overload_shards{max_shards}_{tag}"),
        "open",
        Some(offered),
        achieved,
        &PointCtx {
            backend,
            shards: max_shards,
            rows: opts.rows,
            m: &m_over,
        },
    ));

    // --- Phase 3: energy audit --------------------------------------------
    let table = build_table(opts, max_shards, metrics);
    let energy_worst_rel = energy_audit(table, opts, backend, metrics);
    println!("  [{tag}] energy  worst |served - fom| / fom = {energy_worst_rel:.3e}");

    if backend == BackendKind::Behavioural {
        println!(
            "  [{tag}] audit   {} sampled, {} match / {} energy divergences, worst rel {:.3e}",
            m_over.audit_sampled,
            m_over.audit_match_divergences,
            m_over.audit_energy_divergences,
            m_over.audit_worst_energy_rel
        );
    }

    BackendRun {
        backend,
        capacities,
        open_achieved: achieved,
        open_offered: offered,
        open_metrics: m_over,
        open_queue_bound: queue_bound,
        energy_worst_rel,
    }
}

/// The approximate-match request mix the bench sweeps: one threshold,
/// one top-k, one range point per tier.
const APPROX_KINDS: [(&str, RequestKind); 3] = [
    ("threshold", RequestKind::Threshold { t: 2 }),
    ("topk", RequestKind::TopK { k: 8 }),
    ("range", RequestKind::Range),
];

/// Everything one backend's approximate sweep produced.
struct ApproxRun {
    backend: BackendKind,
    /// `(kind tag, closed qps, open qps if measured, final open/closed
    /// metrics)` per approximate kind.
    per_kind: Vec<(&'static str, f64, Option<f64>, ServiceMetrics)>,
}

/// Sweep the approximate kinds on one tier: a closed-loop point per
/// kind at the largest shard count, plus (behavioural tier only) an
/// open-loop overload point — the sustained-rate acceptance gate.
fn run_approx_backend(
    opts: &Opts,
    backend: BackendKind,
    metrics: &SearchMetrics,
    curves: &mut Vec<CurvePoint>,
) -> ApproxRun {
    let tag = backend.tag();
    let &shards = opts.shards.iter().max().expect("non-empty");
    let sense = SenseModel::analytic(metrics.latency_1step);
    let mut per_kind = Vec::new();
    for (ktag, kind) in APPROX_KINDS {
        let table = build_table(opts, shards, metrics);
        let (closed_qps, m_closed) = closed_loop(table, opts, backend, kind, 2, opts.secs);
        println!(
            "  [{tag}] approx  {ktag:<9} closed {closed_qps:>9.0} qps   p99 {:>8.1} us",
            us(m_closed.wall_latency_ns.p99)
        );
        let mut point = curve_point(
            format!("closed_approx_{ktag}_shards{shards}_{tag}"),
            "closed",
            None,
            closed_qps,
            &PointCtx {
                backend,
                shards,
                rows: opts.rows,
                m: &m_closed,
            },
        );
        if let RequestKind::Threshold { t } = kind {
            point.miscls = Some(sense.misclassification(t).p_error());
        }
        curves.push(point);

        // Open-loop overload only on the throughput tier: the naive
        // reference tier is row-serial and would just measure shedding.
        let (open_qps, m_final) = if backend == BackendKind::Behavioural {
            let offered = (closed_qps * 3.0).max(6e5);
            let table = build_table(opts, shards, metrics);
            let (achieved, m_open) =
                open_loop(table, opts, backend, kind, offered, opts.secs.max(0.5));
            println!(
                "  [{tag}] approx  {ktag:<9} open   offered {offered:>9.0} qps -> {achieved:>9.0} qps, audit {} sampled / {} divergent",
                m_open.audit_sampled,
                m_open.audit_match_divergences + m_open.audit_energy_divergences
            );
            let mut point = curve_point(
                format!("open_approx_{ktag}_shards{shards}_{tag}"),
                "open",
                Some(offered),
                achieved,
                &PointCtx {
                    backend,
                    shards,
                    rows: opts.rows,
                    m: &m_open,
                },
            );
            if let RequestKind::Threshold { t } = kind {
                point.miscls = Some(sense.misclassification(t).p_error());
            }
            curves.push(point);
            (Some(achieved), m_open)
        } else {
            (None, m_closed)
        };
        per_kind.push((ktag, closed_qps, open_qps, m_final));
    }
    ApproxRun { backend, per_kind }
}

/// Check one backend's approximate-sweep invariants.
fn check_approx_backend(opts: &Opts, run: &ApproxRun, report: &mut String) {
    let tag = run.backend.tag();
    for (ktag, closed_qps, open_qps, m) in &run.per_kind {
        if m.completed == 0 || *closed_qps <= 0.0 {
            let _ = writeln!(report, "[{tag}] approx {ktag}: no queries completed");
        }
        if run.backend == BackendKind::Behavioural {
            if m.audit_sampled == 0 && opts.audit_period > 0 {
                let _ = writeln!(report, "[{tag}] approx {ktag}: audit lane sampled nothing");
            }
            if m.audit_match_divergences > 0 || m.audit_energy_divergences > 0 {
                let _ = writeln!(
                    report,
                    "[{tag}] approx {ktag}: audit divergence ({} match, {} energy)",
                    m.audit_match_divergences, m.audit_energy_divergences
                );
            }
            // The sustained-rate acceptance gate at the reference shape.
            if let Some(open) = open_qps {
                if opts.rows >= 16384 && *open < 1e5 {
                    let _ = writeln!(
                        report,
                        "[{tag}] approx {ktag}: open loop sustained only {open:.0} qps (< 100k at {} rows)",
                        opts.rows
                    );
                }
            }
        }
    }
}

/// Everything one backend's mixed read/write sweep produced.
struct MixedRun {
    backend: BackendKind,
    search_qps: f64,
    write_qps: f64,
    m: ServiceMetrics,
}

/// Open-loop mixed read/write point at the largest shard count: 90%
/// key-routed exact searches, 8% updates, 1% inserts, 1% deletes, all
/// fire-and-forget. Writes address rows by a locally tracked
/// (approximate) table size — a stale index past the end is an
/// `OutOfRange` no-op ack, exactly what a racing real client produces —
/// and are priced by the calibrated 3-step program.
fn run_mixed_backend(
    opts: &Opts,
    backend: BackendKind,
    metrics: &SearchMetrics,
    write_metrics: RowWriteMetrics,
    curves: &mut Vec<CurvePoint>,
) -> MixedRun {
    let tag = backend.tag();
    let &shards = opts.shards.iter().max().expect("non-empty");
    let mut table = build_table(opts, shards, metrics);
    table.attach_write_metrics(write_metrics);
    // Offer enough that the behavioural tier proves its search floor
    // under churn; the row-serial reference tier gets a load it sheds
    // most of (its point documents bounded shedding, not rate).
    let offered = match backend {
        BackendKind::Spice => 30_000.0,
        BackendKind::Behavioural => 1.2e6,
    };
    let cfg = ServiceConfig {
        queue_capacity: match backend {
            BackendKind::Spice => 256,
            BackendKind::Behavioural => 16 * 1024,
        },
        ..service_config(backend, opts)
    };
    let svc = TcamService::start(table, &cfg);
    let client = svc.client();
    let mut state = opts.seed ^ 0x3317_ED00;
    let mut approx_rows = opts.rows;
    let started = Instant::now();
    let horizon = Duration::from_secs_f64(opts.secs.max(0.5));
    let mut next_arrival = 0.0f64;
    loop {
        let now = started.elapsed();
        if now >= horizon {
            break;
        }
        while next_arrival <= now.as_secs_f64() {
            let u = (split_mix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            next_arrival += -(1.0 - u).max(f64::MIN_POSITIVE).ln() / offered;
            let pick = split_mix64(&mut state) % 100;
            let res = if pick < 90 {
                let q = random_packed(&mut state, opts.width);
                let shard = Some(client.route_packed(&q));
                client.submit_noreply_kind(0, q, RequestKind::Exact, shard)
            } else if pick < 98 {
                let row = split_mix64(&mut state) as usize % approx_rows.max(1);
                let bits = random_packed(&mut state, opts.width).to_bits();
                client.submit_update_noreply(1, row, TernaryWord::from_bits(&bits))
            } else if pick < 99 {
                let bits = random_packed(&mut state, opts.width).to_bits();
                let r = client.submit_insert_noreply(1, TernaryWord::from_bits(&bits));
                if r.is_ok() {
                    approx_rows += 1;
                }
                r
            } else {
                let row = split_mix64(&mut state) as usize % approx_rows.max(1);
                let r = client.submit_delete_noreply(1, row);
                if r.is_ok() {
                    approx_rows = approx_rows.saturating_sub(1).max(1);
                }
                r
            };
            match res {
                Ok(()) | Err(Overloaded::QueueFull) => {}
                Err(e) => panic!("unexpected shed: {e}"),
            }
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    let m = svc.drain();
    let elapsed = started.elapsed().as_secs_f64();
    let search_qps = m.completed_by_kind.exact as f64 / elapsed;
    let writes =
        m.completed_by_kind.insert + m.completed_by_kind.delete + m.completed_by_kind.update;
    let write_qps = writes as f64 / elapsed;
    println!(
        "  [{tag}] mixed   shards={shards:<2} offered {offered:>9.0} qps -> {search_qps:>9.0} searches/s + {write_qps:>7.0} writes/s, audit {} sampled / {} divergent",
        m.audit_sampled,
        m.audit_match_divergences + m.audit_energy_divergences
    );
    let mut point = curve_point(
        format!("mixed_open_shards{shards}_{tag}"),
        "open",
        Some(offered),
        search_qps,
        &PointCtx {
            backend,
            shards,
            rows: opts.rows,
            m: &m,
        },
    );
    point.write_qps = Some(write_qps);
    curves.push(point);
    MixedRun {
        backend,
        search_qps,
        write_qps,
        m,
    }
}

/// Check one backend's mixed-sweep invariants: writes landed, the
/// audit lane — which replays sampled searches against the very
/// snapshot the kernel answered from — saw zero divergences (the
/// torn-word gate), and the behavioural tier held the reference-shape
/// search floor under the 10% write mix.
fn check_mixed_backend(opts: &Opts, run: &MixedRun, report: &mut String) {
    let tag = run.backend.tag();
    let m = &run.m;
    if m.completed_by_kind.exact == 0 {
        let _ = writeln!(report, "[{tag}] mixed: no searches completed");
    }
    if run.write_qps <= 0.0 {
        let _ = writeln!(report, "[{tag}] mixed: no writes completed");
    }
    if run.backend == BackendKind::Behavioural {
        if m.audit_sampled == 0 && opts.audit_period > 0 {
            let _ = writeln!(
                report,
                "[{tag}] mixed: audit lane sampled nothing under writes"
            );
        }
        if m.audit_match_divergences > 0 || m.audit_energy_divergences > 0 {
            let _ = writeln!(
                report,
                "[{tag}] mixed: torn-word gate tripped — {} match / {} energy audit divergences under live writes",
                m.audit_match_divergences, m.audit_energy_divergences
            );
        }
        if opts.rows >= 16384 && run.search_qps < 1e5 {
            let _ = writeln!(
                report,
                "[{tag}] mixed: searches sustained only {:.0}/s (< 100k at {} rows under 10% writes)",
                run.search_qps, opts.rows
            );
        }
    }
}

/// Check one backend's invariants, appending failures to `report`.
fn check_backend(run: &BackendRun, report: &mut String) {
    let tag = run.backend.tag();
    let caps = &run.capacities;
    // The behavioural closed loop is round-trip bound, so its curve is
    // flat and noisy; allow more jitter before calling it a regression.
    let tolerance = match run.backend {
        BackendKind::Spice => 0.9,
        BackendKind::Behavioural => 0.7,
    };
    for w in caps.windows(2) {
        if w[1] < w[0] * tolerance {
            let _ = writeln!(
                report,
                "[{tag}] throughput regressed across shard sweep: {caps:?}"
            );
            break;
        }
    }
    // The Spice tier is kernel-bound, so extra shards must buy real
    // throughput. The behavioural tier's closed loop is round-trip
    // bound (the kernel answers in well under the channel cost), so it
    // only has to hold steady.
    if run.backend == BackendKind::Spice && caps.len() > 1 && caps[caps.len() - 1] <= caps[0] {
        let _ = writeln!(report, "[{tag}] no scaling across shard sweep: {caps:?}");
    }
    let shed = run.open_metrics.shed_queue_full
        + run.open_metrics.shed_rate_limited
        + run.open_metrics.shed_shutting_down;
    if shed == 0 {
        let _ = writeln!(
            report,
            "[{tag}] overload at {:.0} qps shed nothing",
            run.open_offered
        );
    }
    if run.open_metrics.max_queue_depth > run.open_queue_bound {
        let _ = writeln!(
            report,
            "[{tag}] queue grew past its bound: {} > {}",
            run.open_metrics.max_queue_depth, run.open_queue_bound
        );
    }
    if run.energy_worst_rel >= 1e-9 {
        let _ = writeln!(
            report,
            "[{tag}] energy attribution deviates from core::fom by {:.3e} (>= 1e-9)",
            run.energy_worst_rel
        );
    }
    if run.backend == BackendKind::Behavioural {
        let m = &run.open_metrics;
        if m.audit_sampled == 0 {
            let _ = writeln!(report, "[{tag}] audit lane sampled nothing under load");
        }
        if m.audit_match_divergences > 0 || m.audit_energy_divergences > 0 {
            let _ = writeln!(
                report,
                "[{tag}] audit lane divergence: {} match, {} energy (worst rel {:.3e})",
                m.audit_match_divergences, m.audit_energy_divergences, m.audit_worst_energy_rel
            );
        }
        if m.audit_worst_energy_rel > 1e-9 {
            let _ = writeln!(
                report,
                "[{tag}] audit energy error {:.3e} beyond pinned 1e-9",
                m.audit_worst_energy_rel
            );
        }
    }
}

/// Entry point, called from the command dispatcher.
pub fn run(
    args: &[String],
    parse_design: impl Fn(&str) -> Result<DesignKind, String>,
) -> Result<(), String> {
    let opts = parse_opts(args, parse_design)?;
    let dir = std::env::var("FERROTCAM_RESULTS").unwrap_or_else(|_| "results".into());
    let (metrics, write_metrics) = match opts.characterize {
        Some(design) => {
            println!(
                "characterising {} at {} cells (SPICE)...",
                design.name(),
                opts.width
            );
            let tech = tech_14nm();
            let m = ferrotcam::fom::characterize_search(
                design,
                opts.width,
                row_parasitics(design, &tech),
            )
            .map_err(|e| format!("characterisation failed: {e}"))?;
            // The search characterisation does not produce write-path
            // figures; price writes from the paper's program staircase.
            let wm = Calibration::paper_defaults(design).write_metrics(opts.width);
            (m, wm)
        }
        None => {
            let calib = Calibration::load(std::path::Path::new(&dir), DesignKind::T15Dg);
            if calib.sources.is_empty() {
                println!("calibration: no datasheets under {dir}/, using paper defaults");
            } else {
                println!("calibration ({}):", calib.design.name());
                for s in &calib.sources {
                    println!("  - {s}");
                }
            }
            (
                calib.search_metrics(opts.width),
                calib.write_metrics(opts.width),
            )
        }
    };
    println!(
        "serve-bench: {} rows x {} digits, shards {:?}, backends {:?}, workload {:?}, {:.1}s per point{}",
        opts.rows,
        opts.width,
        opts.shards,
        opts.backends.iter().map(|b| b.tag()).collect::<Vec<_>>(),
        opts.workload,
        opts.secs,
        if opts.smoke { " (smoke)" } else { "" }
    );

    let mut curves = Vec::new();
    let runs: Vec<BackendRun> = if opts.workload.includes_exact() {
        opts.backends
            .iter()
            .map(|&b| run_backend(&opts, b, &metrics, &mut curves))
            .collect()
    } else {
        Vec::new()
    };
    let approx_runs: Vec<ApproxRun> = if opts.workload.includes_approx() {
        opts.backends
            .iter()
            .map(|&b| run_approx_backend(&opts, b, &metrics, &mut curves))
            .collect()
    } else {
        Vec::new()
    };
    let mixed_runs: Vec<MixedRun> = if opts.workload.includes_mixed() {
        opts.backends
            .iter()
            .map(|&b| run_mixed_backend(&opts, b, &metrics, write_metrics, &mut curves))
            .collect()
    } else {
        Vec::new()
    };

    // --- Artefact ----------------------------------------------------------
    let file = ServeBenchFile {
        target: "serve",
        curves,
    };
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {dir}: {e}"))?;
    let path = std::path::Path::new(&dir).join("BENCH_serve.json");
    let json = serde_json::to_string_pretty(&file).expect("serialise bench file");
    std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
    println!("wrote {}", path.display());

    // --- Acceptance invariants --------------------------------------------
    let mut report = String::new();
    for run in &runs {
        check_backend(run, &mut report);
    }
    for run in &approx_runs {
        check_approx_backend(&opts, run, &mut report);
    }
    for run in &mixed_runs {
        check_mixed_backend(&opts, run, &mut report);
    }
    // The whole point of the tiered backend: under open-loop load the
    // bit-parallel tier must decisively outrun the reference tier.
    let spice_open = runs
        .iter()
        .find(|r| r.backend == BackendKind::Spice)
        .map(|r| r.open_achieved);
    let behav_open = runs
        .iter()
        .find(|r| r.backend == BackendKind::Behavioural)
        .map(|r| r.open_achieved);
    if let (Some(s), Some(b)) = (spice_open, behav_open) {
        println!("  behav/spice open-loop speedup: {:.1}x", b / s.max(1.0));
        if b < s * 2.0 {
            let _ = writeln!(
                report,
                "behavioural open loop ({b:.0} qps) is not ahead of spice ({s:.0} qps)"
            );
        }
    }
    if report.is_empty() {
        println!("serve-bench invariants hold: monotone scaling, bounded shedding, energy-true accounting, audit lane clean");
        Ok(())
    } else if opts.smoke {
        Err(format!("serve-bench smoke failed:\n{report}"))
    } else {
        println!("warning (non-smoke run, not fatal):\n{report}");
        Ok(())
    }
}
