//! `ferrotcam serve-bench` — closed-loop + open-loop load generator
//! for the serving layer.
//!
//! Builds a key-partitioned random table, starts a [`TcamService`]
//! per configuration, and measures:
//!
//! 1. **closed loop** — client threads submit-and-wait as fast as the
//!    service answers, sweeping the shard count to show throughput
//!    scaling;
//! 2. **open loop** — a deterministic SplitMix64 exponential arrival
//!    process offers load far beyond capacity to show bounded-queue
//!    load shedding;
//! 3. **energy audit** — every response's energy attribution is
//!    checked against the standalone `core::fom` figure for the same
//!    query.
//!
//! Results land in `BENCH_serve.json` (results dir: `$FERROTCAM_RESULTS`
//! or `./results`), in the throughput-curve format understood by
//! `compare_runs --bench`. With `--smoke` the run is bounded to a few
//! seconds and the acceptance invariants (monotone scaling, shedding
//! under overload, energy match within 1e-9) become hard failures.

use ferrotcam::fom::SearchMetrics;
use ferrotcam::{DesignKind, TernaryWord};
use ferrotcam_eval::parasitics::row_parasitics;
use ferrotcam_eval::tech::tech_14nm;
use ferrotcam_serve::{Overloaded, ServiceConfig, ServiceMetrics, ShardedTcam, TcamService};
use rand::split_mix64;
use serde::Serialize;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One point on the throughput-latency curve.
#[derive(Debug, Clone, Serialize)]
struct CurvePoint {
    id: String,
    mode: &'static str,
    shards: usize,
    rows: usize,
    offered_qps: Option<f64>,
    achieved_qps: f64,
    p50_ns: f64,
    p95_ns: f64,
    p99_ns: f64,
    shed: u64,
    max_queue_depth: usize,
    step1_early_termination_rate: f64,
    energy_per_query_fj: f64,
}

/// The `BENCH_serve.json` artefact.
#[derive(Debug, Serialize)]
struct ServeBenchFile {
    target: &'static str,
    curves: Vec<CurvePoint>,
}

/// Parsed command-line options.
struct Opts {
    smoke: bool,
    rows: usize,
    width: usize,
    shards: Vec<usize>,
    secs: f64,
    seed: u64,
    characterize: Option<DesignKind>,
}

fn parse_opts(
    args: &[String],
    parse_design: impl Fn(&str) -> Result<DesignKind, String>,
) -> Result<Opts, String> {
    let mut o = Opts {
        smoke: false,
        rows: 16384,
        width: 64,
        shards: vec![1, 2, 4],
        secs: 1.5,
        seed: 42,
        characterize: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{a} needs {what}"))
        };
        match a.as_str() {
            "--smoke" => {
                o.smoke = true;
                o.secs = 0.4;
            }
            "--rows" => {
                o.rows = next("a count")?
                    .parse()
                    .map_err(|e| format!("--rows: {e}"))?
            }
            "--width" => {
                o.width = next("a width")?
                    .parse()
                    .map_err(|e| format!("--width: {e}"))?
            }
            "--secs" => {
                o.secs = next("seconds")?
                    .parse()
                    .map_err(|e| format!("--secs: {e}"))?
            }
            "--seed" => {
                o.seed = next("a seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--shards" => {
                o.shards = next("a list like 1,2,4")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("--shards: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
                if o.shards.is_empty() || o.shards.contains(&0) {
                    return Err("--shards needs positive counts".into());
                }
            }
            "--characterize" => o.characterize = Some(parse_design(next("a design")?)?),
            other => return Err(format!("unknown serve-bench flag {other:?}")),
        }
    }
    if o.width == 0 || o.rows == 0 {
        return Err("--rows and --width must be positive".into());
    }
    Ok(o)
}

/// Table IV figures for the 1.5T1DG-Fe design at 64-bit words, scaled
/// from the paper's per-cell numbers — the default energy model when
/// a live SPICE characterisation is not requested.
fn paper_metrics(width: usize) -> SearchMetrics {
    SearchMetrics {
        design: DesignKind::T15Dg,
        word_len: width,
        latency_1step: 231e-12,
        latency_2step: Some(481e-12),
        energy_1step: 0.13e-15 * width as f64,
        energy_2step: Some(0.21e-15 * width as f64),
    }
}

fn random_query(state: &mut u64, width: usize) -> Vec<bool> {
    let mut bits = Vec::with_capacity(width);
    let mut word = 0u64;
    for i in 0..width {
        if i % 64 == 0 {
            word = split_mix64(state);
        }
        bits.push((word >> (i % 64)) & 1 == 1);
    }
    bits
}

/// Build a key-partitioned table: every stored word lives on the
/// shard its own bit-pattern hashes to, so routed queries find their
/// keys while scanning only `rows / shards` rows.
fn build_table(opts: &Opts, shards: usize, metrics: &SearchMetrics) -> ShardedTcam {
    let mut t = ShardedTcam::new(opts.width, shards);
    let mut state = opts.seed;
    for _ in 0..opts.rows {
        let bits = random_query(&mut state, opts.width);
        let shard = t.route(&bits);
        t.store_in(shard, TernaryWord::from_bits(&bits));
    }
    t.attach_metrics(metrics.clone());
    t
}

fn curve_point(
    id: String,
    mode: &'static str,
    shards: usize,
    rows: usize,
    offered_qps: Option<f64>,
    achieved_qps: f64,
    m: &ServiceMetrics,
) -> CurvePoint {
    let shed = m.shed_queue_full + m.shed_rate_limited + m.shed_shutting_down;
    CurvePoint {
        id,
        mode,
        shards,
        rows,
        offered_qps,
        achieved_qps,
        p50_ns: m.wall_latency_ns.p50,
        p95_ns: m.wall_latency_ns.p95,
        p99_ns: m.wall_latency_ns.p99,
        shed,
        max_queue_depth: m.max_queue_depth,
        step1_early_termination_rate: m.step1_early_termination_rate,
        energy_per_query_fj: if m.completed == 0 {
            0.0
        } else {
            m.energy_total_j / m.completed as f64 * 1e15
        },
    }
}

/// Closed loop: `clients` threads submit-and-wait until the deadline.
/// Returns (achieved qps, final metrics).
fn closed_loop(
    table: ShardedTcam,
    opts: &Opts,
    clients: usize,
    secs: f64,
) -> (f64, ServiceMetrics) {
    let svc = TcamService::start(table, &ServiceConfig::default());
    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(secs);
    let completions: u64 = std::thread::scope(|scope| {
        (0..clients)
            .map(|c| {
                let client = svc.client();
                let width = opts.width;
                let mut state = opts.seed ^ (0x9E37 + c as u64);
                scope.spawn(move || {
                    let mut done = 0u64;
                    while Instant::now() < deadline {
                        let q = random_query(&mut state, width);
                        match client.submit_routed(c as u32, q) {
                            Ok(ticket) => {
                                let _ = ticket.wait();
                                done += 1;
                            }
                            Err(_) => std::thread::yield_now(),
                        }
                    }
                    done
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .sum()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let metrics = svc.drain();
    (completions as f64 / elapsed, metrics)
}

/// Open loop: offer `offered_qps` with SplitMix64 exponential
/// inter-arrivals for `secs`, never waiting for responses.
fn open_loop(table: ShardedTcam, opts: &Opts, offered_qps: f64, secs: f64) -> ServiceMetrics {
    let cfg = ServiceConfig {
        queue_capacity: 256,
        ..ServiceConfig::default()
    };
    let svc = TcamService::start(table, &cfg);
    let client = svc.client();
    let mut state = opts.seed ^ 0xDEAD_BEEF;
    let started = Instant::now();
    let horizon = Duration::from_secs_f64(secs);
    let mut next_arrival = 0.0f64; // seconds since start
    let mut tickets = Vec::new();
    loop {
        let now = started.elapsed();
        if now >= horizon {
            break;
        }
        // Submit every arrival that is due by now.
        while next_arrival <= now.as_secs_f64() {
            // Exponential inter-arrival: -ln(U)/λ, U ∈ (0, 1].
            let u = (split_mix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            next_arrival += -(1.0 - u).max(f64::MIN_POSITIVE).ln() / offered_qps;
            let q = random_query(&mut state, opts.width);
            match client.submit_routed(0, q) {
                Ok(t) => tickets.push(t),
                Err(Overloaded::QueueFull) => {} // counted by the service
                Err(e) => panic!("unexpected shed: {e}"),
            }
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    drop(tickets); // responses were recorded by the service metrics
    svc.drain()
}

/// Audit energy attribution against the standalone `core::fom` figure.
/// Returns the worst relative deviation observed.
fn energy_audit(table: ShardedTcam, opts: &Opts, metrics: &SearchMetrics) -> f64 {
    let svc = TcamService::start(table, &ServiceConfig::default());
    let client = svc.client();
    let mut state = opts.seed ^ 0xA0D1;
    let mut worst = 0.0f64;
    for _ in 0..64 {
        let q = random_query(&mut state, opts.width);
        let resp = client.submit_routed(0, q).expect("idle service").wait();
        let total = resp.matches.len() + resp.step1_misses + resp.step2_misses;
        if total == 0 {
            continue;
        }
        let miss_rate = resp.step1_misses as f64 / total as f64;
        let standalone = total as f64 * metrics.energy_avg(miss_rate);
        let served = resp.energy_j.expect("metrics attached");
        let rel = (served - standalone).abs() / standalone.abs().max(1e-30);
        worst = worst.max(rel);
    }
    drop(svc);
    worst
}

/// Entry point, called from the command dispatcher.
pub fn run(
    args: &[String],
    parse_design: impl Fn(&str) -> Result<DesignKind, String>,
) -> Result<(), String> {
    let opts = parse_opts(args, parse_design)?;
    let metrics = match opts.characterize {
        Some(design) => {
            println!(
                "characterising {} at {} cells (SPICE)...",
                design.name(),
                opts.width
            );
            let tech = tech_14nm();
            ferrotcam::fom::characterize_search(design, opts.width, row_parasitics(design, &tech))
                .map_err(|e| format!("characterisation failed: {e}"))?
        }
        None => paper_metrics(opts.width),
    };
    println!(
        "serve-bench: {} rows x {} digits, shards {:?}, {:.1}s per point{}",
        opts.rows,
        opts.width,
        opts.shards,
        opts.secs,
        if opts.smoke { " (smoke)" } else { "" }
    );

    let mut curves = Vec::new();

    // --- Phase 1: closed-loop shard sweep --------------------------------
    let mut capacities = Vec::new();
    for &shards in &opts.shards {
        let table = build_table(&opts, shards, &metrics);
        let (qps, m) = closed_loop(table, &opts, 2, opts.secs);
        println!(
            "  closed  shards={shards:<2} {qps:>10.0} qps   p50 {:>8.1} us   p99 {:>8.1} us",
            m.wall_latency_ns.p50 / 1e3,
            m.wall_latency_ns.p99 / 1e3
        );
        capacities.push(qps);
        curves.push(curve_point(
            format!("closed_shards{shards}"),
            "closed",
            shards,
            opts.rows,
            None,
            qps,
            &m,
        ));
    }

    // --- Phase 2: open-loop overload --------------------------------------
    let &max_shards = opts.shards.iter().max().expect("non-empty");
    let capacity = capacities
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .max(1.0);
    let offered = capacity * 3.0;
    let table = build_table(&opts, max_shards, &metrics);
    let m_over = open_loop(table, &opts, offered, opts.secs.max(0.5));
    let achieved = m_over.completed as f64 / opts.secs.max(0.5);
    let shed_total = m_over.shed_queue_full + m_over.shed_rate_limited + m_over.shed_shutting_down;
    println!(
        "  open    shards={max_shards:<2} offered {offered:>8.0} qps -> {achieved:>8.0} qps, shed {shed_total}, max queue depth {}",
        m_over.max_queue_depth
    );
    curves.push(curve_point(
        format!("open_overload_shards{max_shards}"),
        "open",
        max_shards,
        opts.rows,
        Some(offered),
        achieved,
        &m_over,
    ));

    // --- Phase 3: energy audit --------------------------------------------
    let table = build_table(&opts, max_shards, &metrics);
    let worst_rel = energy_audit(table, &opts, &metrics);
    println!("  energy  worst |served - fom| / fom = {worst_rel:.3e}");

    // --- Artefact ----------------------------------------------------------
    let file = ServeBenchFile {
        target: "serve",
        curves,
    };
    let dir = std::env::var("FERROTCAM_RESULTS").unwrap_or_else(|_| "results".into());
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {dir}: {e}"))?;
    let path = std::path::Path::new(&dir).join("BENCH_serve.json");
    let json = serde_json::to_string_pretty(&file).expect("serialise bench file");
    std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
    println!("wrote {}", path.display());

    // --- Acceptance invariants --------------------------------------------
    let mut report = String::new();
    for w in capacities.windows(2) {
        if w[1] < w[0] * 0.9 {
            let _ = writeln!(
                report,
                "throughput not monotone across shard sweep: {capacities:?}"
            );
            break;
        }
    }
    if capacities.len() > 1 && capacities[capacities.len() - 1] <= capacities[0] {
        let _ = writeln!(
            report,
            "no scaling from {} to {} shards: {capacities:?}",
            opts.shards[0], max_shards
        );
    }
    if shed_total == 0 {
        let _ = writeln!(report, "overload at {offered:.0} qps shed nothing");
    }
    if m_over.max_queue_depth > 256 {
        let _ = writeln!(
            report,
            "queue grew past its bound: {}",
            m_over.max_queue_depth
        );
    }
    if worst_rel >= 1e-9 {
        let _ = writeln!(
            report,
            "energy attribution deviates from core::fom by {worst_rel:.3e} (>= 1e-9)"
        );
    }
    if report.is_empty() {
        println!("serve-bench invariants hold: monotone scaling, bounded shedding, energy-true accounting");
        Ok(())
    } else if opts.smoke {
        Err(format!("serve-bench smoke failed:\n{report}"))
    } else {
        println!("warning (non-smoke run, not fatal):\n{report}");
        Ok(())
    }
}
