//! `ferrotcam lint`: run the ERC static analyzer over every netlist the
//! toolkit generates, without simulating any of them.
//!
//! The default corpus is one search row per design; `--all` widens it to
//! the 1.5T divider cells, full M×N arrays and 3-step write arrays. With
//! `--deny` any error-severity diagnostic fails the command (the CI
//! configuration), and `--json` emits one JSON report per netlist.

use ferrotcam::cell::{DesignKind, DesignParams, RowParasitics, SearchTiming};
use ferrotcam::margins::build_divider_circuit;
use ferrotcam::{build_array_write, build_full_array, build_search_row, TernaryWord};
use ferrotcam_device::fefet::VthState;
use ferrotcam_spice::erc;
use ferrotcam_spice::Circuit;
use std::fmt::Write as _;

/// One generated netlist with its provenance label.
struct Entry {
    label: String,
    circuit: Circuit,
}

fn word(s: &str) -> TernaryWord {
    s.parse().expect("literal ternary word")
}

/// Representative stored word / query per design: both matching and
/// mismatching cells, plus an 'X' so every stored state appears.
fn row_entry(kind: DesignKind) -> Result<Entry, String> {
    let params = DesignParams::preset(kind);
    let stored = word("01X0");
    let query = [false, true, true, true];
    let sim = build_search_row(
        &params,
        &stored,
        &query,
        SearchTiming::default(),
        RowParasitics::default(),
        kind.is_two_step(),
    )
    .map_err(|e| format!("{}-row: build failed: {e}", kind.name()))?;
    Ok(Entry {
        label: format!("{}-row", kind.name()),
        circuit: sim.circuit,
    })
}

/// Build the lint corpus. `all` adds divider cells, full arrays and
/// write arrays for the 1.5T designs on top of the per-design rows.
fn corpus(all: bool) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for kind in DesignKind::ALL {
        entries.push(row_entry(kind)?);
    }
    if !all {
        return Ok(entries);
    }
    for kind in [DesignKind::T15Sg, DesignKind::T15Dg] {
        let params = DesignParams::preset(kind);
        for state in [VthState::Lvt, VthState::Mvt, VthState::Hvt] {
            for query in [false, true] {
                let (ckt, _) = build_divider_circuit(&params, params.fefet(), state, query)
                    .map_err(|e| format!("{}-divider: build failed: {e}", kind.name()))?;
                entries.push(Entry {
                    label: format!("{}-divider-{state:?}-q{}", kind.name(), u8::from(query)),
                    circuit: ckt,
                });
            }
        }
        let rows = [word("01X0"), word("1010"), word("XXXX")];
        let query = [false, true, true, false];
        let arr = build_full_array(
            &params,
            &rows,
            &query,
            &SearchTiming::default(),
            &RowParasitics::default(),
            true,
        )
        .map_err(|e| format!("{}-array: build failed: {e}", kind.name()))?;
        entries.push(Entry {
            label: format!("{}-array-3x4", kind.name()),
            circuit: arr.circuit,
        });
        let initial = [word("1111"), word("0000"), word("XX00")];
        let wckt = build_array_write(&params, &initial, 1, &word("01X1"))
            .map_err(|e| format!("{}-write-array: build failed: {e}", kind.name()))?;
        entries.push(Entry {
            label: format!("{}-write-array-3x4", kind.name()),
            circuit: wckt,
        });
    }
    Ok(entries)
}

/// Run the lint command. See module docs for the flags.
///
/// # Errors
/// Bad flags, netlist construction failures, and (with `--deny`) any
/// error-severity ERC diagnostic.
pub fn run(args: &[String]) -> Result<(), String> {
    let mut all = false;
    let mut deny = false;
    let mut json = false;
    for a in args {
        match a.as_str() {
            "--all" => all = true,
            "--deny" => deny = true,
            "--json" => json = true,
            other => {
                return Err(format!(
                    "unknown lint flag {other:?} (expected --all, --deny, --json)"
                ))
            }
        }
    }

    let entries = corpus(all)?;
    let mut total_errors = 0usize;
    let mut total_warnings = 0usize;
    let mut first_json = true;
    // JSON output goes through a checked stdout write at the end: the
    // machine-readable mode must exit non-zero (not panic) when the
    // consumer closes the pipe early.
    let mut json_body = String::new();
    if json {
        json_body.push_str("[\n");
    }
    for e in &entries {
        let report = match erc::check(&e.circuit) {
            Ok(r) => r,
            Err(err) => return Err(format!("{}: {err}", e.label)),
        };
        total_errors += report.num_errors();
        total_warnings += report.num_warnings();
        if json {
            let sep = if first_json { "" } else { "," };
            first_json = false;
            let _ = writeln!(
                json_body,
                "{sep}{{\"netlist\":\"{}\",\"report\":{}}}",
                e.label,
                report.to_json()
            );
        } else {
            let verdict = if report.has_errors() {
                "FAIL"
            } else if report.is_clean() {
                "ok"
            } else {
                "warn"
            };
            println!(
                "{verdict:<5} {:<28} {} node(s), {} device/element(s)",
                e.label,
                e.circuit.num_nodes() - 1,
                e.circuit.elements().len() + e.circuit.devices().len()
            );
            for d in report.diagnostics() {
                println!("      {d}");
            }
        }
    }
    if json {
        json_body.push_str("]\n");
        crate::commands::write_stdout(&json_body)?;
    } else {
        println!(
            "linted {} netlist(s): {total_errors} error(s), {total_warnings} warning(s)",
            entries.len()
        );
    }
    if deny && total_errors > 0 {
        return Err(format!(
            "lint --deny: {total_errors} error-severity diagnostic(s)"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_corpus_is_clean_under_deny() {
        run(&["--deny".to_string()]).expect("row netlists must lint clean");
    }

    #[test]
    fn full_corpus_is_clean_under_deny() {
        run(&["--all".to_string(), "--deny".to_string()])
            .expect("all generated netlists must lint clean");
    }

    #[test]
    fn json_mode_emits_a_report_per_netlist() {
        run(&["--json".to_string()]).expect("json lint");
    }

    #[test]
    fn unknown_flag_is_rejected() {
        assert!(run(&["--bogus".to_string()]).is_err());
    }
}
