//! Circuit grounding of the approximate-match sense model: ML
//! discharge time must fall monotonically with the mismatch count
//! (nominal and under V_TH Monte-Carlo), the fitted [`SenseModel`]
//! must order thresholds accordingly, and the FeCAM range cell must
//! DC-classify query levels against its programmed window.

use ferrotcam::calib::SenseModel;
use ferrotcam::cell::{DesignKind, DesignParams};
use ferrotcam::sense::{characterize_sense, range_cell_high, range_transition, render_sense_csv};

const WORD_LEN: usize = 8;
const MAX_MISMATCH: usize = 4;

#[test]
fn discharge_time_is_monotone_and_fits_a_sense_model() {
    let params = DesignParams::preset(DesignKind::T15Dg);
    // Nominal plus two Monte-Carlo draws folded into one curve; the
    // per-run monotonicity is what makes the fold meaningful.
    let points = characterize_sense(&params, WORD_LEN, MAX_MISMATCH, &[11, 47]).expect("transient");
    assert_eq!(
        points.len(),
        MAX_MISMATCH,
        "every mismatch count 1..={MAX_MISMATCH} must discharge in all runs: {points:?}"
    );
    for w in points.windows(2) {
        assert!(
            w[1].mean_s < w[0].mean_s,
            "more pull-down paths must discharge faster: {points:?}"
        );
    }
    // `from_points` re-checks monotonicity/positivity; a Some here is
    // the contract the serving layer relies on.
    let model = SenseModel::from_points(points.clone()).expect("monotone curve");
    // Larger thresholds sense earlier (lower latency).
    for t in 0..MAX_MISMATCH as u32 - 1 {
        assert!(model.sense_time(t + 1) < model.sense_time(t), "t = {t}");
    }
    // The rendered CSV round-trips through the calibration parser.
    let csv = render_sense_csv(&points);
    assert!(csv.lines().count() == MAX_MISMATCH + 1);
}

#[test]
fn range_cell_classifies_queries_against_its_window() {
    let params = DesignParams::preset(DesignKind::T15Dg);
    let vdd = params.vdd;
    let vt = range_transition(&params)
        .expect("dc solve")
        .expect("cell switches within [0, vdd]");
    assert!(vt > 0.0 && vt < vdd, "transition at {vt} V");

    // Program a window [0.25, 0.75]·vdd around mid-rail: the upper
    // bound shifts the query-gated FeFET, the lower bound the
    // complement-gated one.
    let window = |lo: f64, hi: f64| (hi - vt, vdd - vt - lo);
    let (dhi, dlo) = window(0.25 * vdd, 0.75 * vdd);
    let high = |vq: f64| range_cell_high(&params, dhi, dlo, vq).expect("dc solve");
    assert!(high(0.50 * vdd), "mid-rail query is inside the window");
    assert!(!high(0.05 * vdd), "low query undershoots the lower bound");
    assert!(!high(0.95 * vdd), "high query exceeds the upper bound");

    // Narrow the window to [0.25, 0.35]·vdd: the mid-rail query that
    // matched above must now be rejected — range match is genuinely
    // window-dependent, not a ternary don't-care in disguise.
    let (dhi2, dlo2) = window(0.25 * vdd, 0.35 * vdd);
    assert!(!range_cell_high(&params, dhi2, dlo2, 0.50 * vdd).expect("dc solve"));
    assert!(range_cell_high(&params, dhi2, dlo2, 0.30 * vdd).expect("dc solve"));
}
